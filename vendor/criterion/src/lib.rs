//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of criterion 0.x the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::throughput`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model (simpler than upstream, same spirit): each bench is
//! warmed up for ~100 ms to calibrate the per-iteration cost, then timed
//! over enough iterations to fill the measurement window; the harness
//! reports mean ns/iteration and, when a throughput was declared,
//! elements or bytes per second. There are no saved baselines, HTML
//! reports, or statistical regression tests.
//!
//! Environment knobs: `CRITERION_QUICK=1` shrinks the warm-up and
//! measurement windows ~20× for smoke runs (CI uses this).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Declared work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters_done: u64,
}

impl Bencher {
    /// Measure `f`, recording the mean wall-clock cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: count how many calls fit the window.
        let start = Instant::now();
        let mut calls: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(f());
            calls += 1;
        }
        let per_call = self.warm_up.as_nanos() as f64 / calls.max(1) as f64;
        // Measurement: batches sized to ~1/10 of the window each.
        let batch = ((self.measure.as_nanos() as f64 / 10.0 / per_call).ceil() as u64).max(1);
        let mut total_ns = 0.0;
        let mut total_iters: u64 = 0;
        let window = Instant::now();
        while window.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_ns += t0.elapsed().as_nanos() as f64;
            total_iters += batch;
        }
        self.mean_ns = total_ns / total_iters.max(1) as f64;
        self.iters_done = total_iters;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// The benchmark harness.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        if quick {
            Self {
                warm_up: Duration::from_millis(5),
                measure: Duration::from_millis(25),
            }
        } else {
            Self {
                warm_up: Duration::from_millis(100),
                measure: Duration::from_millis(500),
            }
        }
    }
}

impl Criterion {
    /// Override the warm-up window.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Override the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            mean_ns: 0.0,
            iters_done: 0,
        };
        f(&mut b);
        let mut line = format!(
            "{name:<48} time: {:>12}/iter  ({} iters)",
            fmt_ns(b.mean_ns),
            b.iters_done
        );
        if let Some(t) = throughput {
            let per_iter_per_sec = 1e9 / b.mean_ns.max(f64::MIN_POSITIVE);
            let rate = match t {
                Throughput::Elements(n) => fmt_rate(per_iter_per_sec * n as f64, "elem"),
                Throughput::Bytes(n) => fmt_rate(per_iter_per_sec * n as f64, "B"),
            };
            line.push_str(&format!("  thrpt: {rate}"));
        }
        println!("{line}");
    }

    /// Benchmark a single function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per iteration for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.name);
        let throughput = self.throughput;
        self.criterion
            .run_one(&name, throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(&name, throughput, &mut f);
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Define a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    #[test]
    fn ids_and_formats() {
        assert_eq!(BenchmarkId::new("f", 8).name, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
        assert_eq!(fmt_ns(12.3), "12.30 ns");
        assert_eq!(fmt_ns(12_300.0), "12.300 µs");
        assert!(fmt_rate(2.5e6, "elem").contains("M"));
    }
}
