//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements — API-compatibly — the subset of `rand` 0.10 that the
//! workspace actually uses:
//!
//! * [`Rng`] — object-safe core trait (`next_u32`/`next_u64`/`fill_bytes`),
//! * [`RngExt`] — generic extension methods [`RngExt::random`] and
//!   [`RngExt::random_range`] (blanket-implemented for every [`Rng`]),
//! * [`SeedableRng`] — seeding, including [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — a seeded, deterministic generator
//!   (xoshiro256++ behind a SplitMix64 seed expander),
//! * [`seq::SliceRandom`] — Fisher–Yates [`seq::SliceRandom::shuffle`].
//!
//! Determinism: the stream for a given seed is stable across platforms
//! and releases of this workspace — tests and experiments bake in
//! seed-derived expectations, so the generator must never change
//! silently. (It is *not* the same stream as upstream `rand`'s `StdRng`;
//! nothing in the workspace depends on upstream streams.)

/// Object-safe random-number source.
///
/// Mirrors upstream `RngCore`, under the name the workspace bounds
/// generics with (`R: Rng + ?Sized`).
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample uniformly.
///
/// Generic over the output type `T` (rather than an associated type) so
/// integer literals in e.g. `rng.random_range(0..n)` infer their type
/// from the call site, matching upstream `rand`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics on an empty range, matching upstream behaviour.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against `start + u*(end-start)` rounding up to `end`.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::from_rng(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Unbiased integer in `[0, span)` by Lemire's multiply-shift method
/// with rejection of the biased low band.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // threshold = 2^64 mod span, the count of biased low leftovers.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return ((rng.next_u64() as i128).wrapping_add(start as i128)) as $t;
                }
                let off = uniform_u64(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generic convenience methods over any [`Rng`].
pub trait RngExt: Rng {
    /// Draw a uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw uniformly from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(0.0..1.0)`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Draw `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Not the upstream `StdRng` stream; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl Rng for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt as _};

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom as _;
    use super::{RngExt as _, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let k = rng.random_range(10u32..20);
            assert!((10..20).contains(&k));
            let j = rng.random_range(0usize..1);
            assert_eq!(j, 0);
        }
    }

    #[test]
    fn integer_ranges_are_unbiased_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        use super::Rng as _;
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
