//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest 1.x the workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! [`strategy::Strategy::prop_map`], range and tuple strategies,
//! [`strategy::Just`], [`prop_oneof!`], `prop::collection::vec`,
//! `prop::option::of`, [`prop_assert!`]/[`prop_assert_eq!`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated inputs
//!   verbatim (they are `Debug`-printed before the panic is propagated)
//!   but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   own module path + name (FNV-1a), so failures reproduce exactly on
//!   re-run without a persistence file.

/// Re-exported so the macros can name the RNG without requiring `rand`
/// in the caller's dependency list.
#[doc(hidden)]
pub use rand;

use rand::rngs::StdRng;

/// Strategies: how to generate random values of a type.
pub mod strategy {
    use super::StdRng;
    use rand::RngExt as _;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike upstream there is no value tree: `generate` draws a
    /// concrete value directly (no shrinking).
    pub trait Strategy {
        /// The type of the generated values.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut StdRng| self.generate(rng)))
        }
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among several strategies of one value type
    /// (the expansion of `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the (non-empty) list of alternatives.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeFull {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngExt as _;
    use std::fmt::Debug;

    /// Admissible element-count specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            Self {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngExt as _;
    use std::fmt::Debug;

    /// Strategy for `Option<S::Value>` (upstream's default: half `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy: `None` and `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Per-test configuration accepted by
    /// `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Assert inside a property test (no-shrink stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `#[test] fn name(x in strategy, ...)`
/// runs `cases` times with freshly generated inputs.
///
/// On failure the generated inputs are printed (`Debug`) and the
/// original panic is re-raised; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            // FNV-1a over the fully qualified test name: deterministic,
            // distinct per test.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                __seed = (__seed ^ u64::from(__b)).wrapping_mul(0x0100_0000_01b3);
            }
            let mut __rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                let __vals = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __desc = format!("{:?}", __vals);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ($($arg,)+) = __vals;
                        $body
                    }),
                );
                if let Err(__err) = __outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __desc
                    );
                    ::std::panic::resume_unwind(__err);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0.0f64..1.0, 5u64..6)) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert_eq!(b, 5);
        }

        #[test]
        fn mapped_and_oneof(
            v in prop::collection::vec(1u32..4, 2..5),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            opt in prop::option::of(0i32..3),
            doubled in (1u32..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
            prop_assert!(choice == 1 || choice == 2);
            if let Some(o) = opt {
                prop_assert!((0..3).contains(&o));
            }
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::proptest! {
                #![proptest_config(crate::test_runner::ProptestConfig::with_cases(8))]
                fn always_fails(_x in 0u32..2) { panic!("boom") }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
