//! End-to-end robustness scenarios for the fault-injection stack: the
//! analytic fault pricing must shrink admission and hold the glitch
//! budget under real injected faults, faulty runs must stay bit-identical
//! across worker counts and reruns, and the graceful-degradation ladder
//! must keep a degrading disk inside its budget where a ladder-less
//! control breaches it.

use mzd_core::GuaranteeModel;
use mzd_fault::{FaultConfig, FaultModel};
use mzd_server::{DegradeSettings, ServerConfig, SloSettings, VideoServer};
use mzd_sim::{estimate_p_late_par, RoundSimulator, SimConfig};
use mzd_workload::{ObjectSpec, SizeDistribution};
use std::sync::Mutex;

/// Serializes tests that pin the process-global worker count.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    mzd_par::set_jobs(jobs);
    let out = f();
    mzd_par::set_jobs(0);
    out
}

/// The §3.3 glitch guarantee the paper's reference configuration runs:
/// at most `g = 12` glitches in `m = 1200` rounds, i.e. a 1% per-round
/// glitch budget.
const GLITCH_BUDGET: f64 = 12.0 / 1200.0;

/// A paper-workload object long enough that streams never complete
/// during a test run (constant offered load).
fn endless_object(id: u64) -> ObjectSpec {
    let sizes = SizeDistribution::gamma(200_000.0, 100_000.0f64.powi(2)).expect("valid sizes");
    ObjectSpec::new(format!("obj-{id}"), sizes, 1 << 14)
        .expect("valid object")
        .with_content_id(id)
}

#[test]
fn fault_pricing_shrinks_admission_and_the_shrunken_load_holds_the_budget() {
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let (t, m, g, eps) = (1.0, 1_200, 12, 0.01);
    let n_clean = model.n_max_error(t, m, g, eps).expect("clean n_max");

    let fc = FaultConfig::parse("media=0.01").expect("valid spec");
    let n_faulted = model
        .with_faults(&FaultModel::from_config(&fc))
        .expect("valid fault model")
        .n_max_error(t, m, g, eps)
        .expect("faulted n_max");
    // A 1% media-error rate must cost at least one admitted stream.
    assert!(
        n_faulted < n_clean,
        "fault pricing did not shrink admission: {n_faulted} vs {n_clean}"
    );

    // And the fault-priced load, simulated with the faults actually
    // injected, stays within the glitch budget the guarantee promises.
    let cfg = SimConfig {
        faults: Some(fc),
        ..SimConfig::paper_reference().expect("reference sim")
    };
    let mut sim = RoundSimulator::new(cfg, 71).expect("valid sim");
    let rounds = 2_048u64;
    let mut glitches = 0u64;
    for _ in 0..rounds {
        glitches += sim.run_round(n_faulted).glitched_streams.len() as u64;
    }
    let rate = glitches as f64 / (rounds * u64::from(n_faulted)) as f64;
    assert!(
        rate <= GLITCH_BUDGET,
        "glitch rate {rate:.5} breaches the {GLITCH_BUDGET} budget at the fault-priced N = {n_faulted}"
    );
}

#[test]
fn faulty_runs_are_bit_identical_across_job_counts_and_reruns() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let cfg = SimConfig {
        faults: Some(FaultConfig::preset("flaky").expect("known preset")),
        ..SimConfig::paper_reference().expect("reference sim")
    };
    let run = || estimate_p_late_par(&cfg, 26, 400, 3, 99).expect("valid run");
    let reference = with_jobs(1, run);
    assert!(
        reference.p_late > 0.0,
        "the flaky preset must actually perturb the run"
    );
    for jobs in [1usize, 2, 8] {
        let est = with_jobs(jobs, run);
        assert_eq!(
            est.p_late.to_bits(),
            reference.p_late.to_bits(),
            "p_late differs at jobs = {jobs}"
        );
        assert_eq!(
            est.mean_service_time.to_bits(),
            reference.mean_service_time.to_bits(),
            "mean service time differs at jobs = {jobs}"
        );
        assert_eq!(
            est.max_service_time.to_bits(),
            reference.max_service_time.to_bits(),
            "max service time differs at jobs = {jobs}"
        );
        assert_eq!(est.late_rounds, reference.late_rounds, "jobs = {jobs}");
    }
}

/// Run a server against a degrading-disk ramp and return the per-served-
/// stream-round glitch rate over the degraded tail of the run.
fn ramp_glitch_rate(ladder: bool, seed: u64) -> f64 {
    let mut cfg = ServerConfig::paper_reference(1).expect("valid config");
    // A drive wearing out: from round 64 the media-error rate climbs
    // linearly to 15x its base 2% over 64 rounds, then stays there.
    cfg.faults = Some(FaultConfig::parse("media=0.02,scenario=ramp:64:64:15").expect("valid spec"));
    if ladder {
        cfg.degrade = Some(DegradeSettings {
            escalate_rounds: 4,
            recover_rounds: 512,
            shed_fraction: 0.5,
            ..DegradeSettings::default()
        });
    }
    let target = cfg.target;
    let mut server = VideoServer::new(cfg, seed).expect("valid server");
    server
        .enable_slo(SloSettings::for_target(target))
        .expect("slo enables");
    let mut handles = Vec::new();
    while let Ok(h) = server.open_stream(endless_object(handles.len() as u64 + 1)) {
        handles.push(h);
    }
    for h in &handles {
        server.set_degradable(*h, true).expect("known stream");
    }
    let (mut glitches, mut served_rounds) = (0u64, 0u64);
    for round in 0..512u64 {
        let report = server.run_round();
        // Measure the degraded steady state, after the ramp has peaked
        // and the ladder (when present) has had time to climb.
        if round >= 192 {
            glitches += report.glitched_streams.len() as u64;
            let shed = server
                .degrade_status()
                .map_or(0, |status| status.shed_streams);
            served_rounds += server.active_streams() as u64 - shed;
        }
    }
    assert!(served_rounds > 0);
    glitches as f64 / served_rounds as f64
}

#[test]
fn degradation_ladder_holds_the_budget_where_the_control_breaches_it() {
    let with_ladder = ramp_glitch_rate(true, 73);
    let control = ramp_glitch_rate(false, 73);
    assert!(
        control > GLITCH_BUDGET,
        "control must breach the budget for the scenario to mean anything, got {control:.5}"
    );
    assert!(
        with_ladder <= GLITCH_BUDGET,
        "ladder failed to hold the {GLITCH_BUDGET} budget: {with_ladder:.5} (control {control:.5})"
    );
}

#[test]
fn clean_run_never_sheds_over_two_thousand_rounds() {
    let mut cfg = ServerConfig::paper_reference(1).expect("valid config");
    // A configured-but-clean injector and an armed ladder: nothing may
    // fire over a long horizon.
    cfg.faults = Some(FaultConfig::default());
    cfg.degrade = Some(DegradeSettings::default());
    let target = cfg.target;
    let mut server = VideoServer::new(cfg, 74).expect("valid server");
    server
        .enable_slo(SloSettings::for_target(target))
        .expect("slo enables");
    let mut id = 0u64;
    while server
        .open_stream(endless_object({
            id += 1;
            id
        }))
        .is_ok()
    {}
    for _ in 0..2_048 {
        server.run_round();
    }
    let status = server.degrade_status().expect("ladder configured");
    assert_eq!(status.rung, 0, "clean run climbed the ladder");
    assert_eq!(status.escalations, 0);
    assert_eq!(status.shed_streams, 0);
}
