//! End-to-end scenarios for the observability stack: flight-recorder
//! bundles must be byte-identical across reruns and worker counts, the
//! recorded phase decomposition must reproduce the simulator's
//! [`mzd_server::DiskRoundSummary`] exactly, a chaos run must fire a
//! *triggered* (non-manual) dump, and the Prometheus exposition of the
//! global registry must be well-formed.

use mzd_fault::FaultConfig;
use mzd_server::{ServerConfig, SloSettings, VideoServer};
use mzd_slo::BurnConfig;
use mzd_workload::{ObjectSpec, SizeDistribution};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes tests that pin the process-global worker count.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn endless_object(id: u64) -> ObjectSpec {
    let sizes = SizeDistribution::gamma(200_000.0, 100_000.0f64.powi(2)).expect("valid sizes");
    ObjectSpec::new(format!("obj-{id}"), sizes, 1 << 14)
        .expect("valid object")
        .with_content_id(id)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mzd_prof_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run a 2-disk server with an attached recorder for `rounds` rounds and
/// dump manually at the end. Returns the report of the final round plus
/// the dump path.
fn run_recorded(dir: &Path, rounds: u64) -> (mzd_server::RoundReport, PathBuf) {
    let cfg = ServerConfig::paper_reference(2).expect("valid config");
    let mut server = VideoServer::new(cfg, 29).expect("valid server");
    let mut settings = mzd_prof::RecorderSettings::new(dir);
    settings.capacity = 16;
    settings.config_echo = vec![("seed".into(), "29".into()), ("disks".into(), "2".into())];
    server.attach_recorder(mzd_prof::Recorder::new(settings));
    for i in 0..40 {
        let _ = server.open_stream(endless_object(i));
    }
    let mut last = None;
    for _ in 0..rounds {
        last = Some(server.run_round());
    }
    let path = server
        .recorder()
        .expect("recorder attached")
        .trigger_dump(mzd_prof::DumpTrigger::Manual)
        .expect("dump writes")
        .expect("ring is non-empty");
    (last.expect("ran at least one round"), path)
}

fn bundle_bytes(path: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(path.join("rounds.jsonl")).expect("rounds.jsonl exists"),
        std::fs::read(path.join("MANIFEST.json")).expect("MANIFEST.json exists"),
    )
}

#[test]
fn bundles_are_byte_identical_across_reruns_and_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let base = temp_dir("identity");
    let mut dumps = Vec::new();
    for (tag, jobs) in [("a", 1usize), ("b", 1), ("c", 8)] {
        mzd_par::set_jobs(jobs);
        let dir = base.join(tag);
        std::fs::create_dir_all(&dir).unwrap();
        let (_, dump) = run_recorded(&dir, 24);
        dumps.push(bundle_bytes(&dump));
    }
    mzd_par::set_jobs(0);
    assert_eq!(
        dumps[0], dumps[1],
        "rerun with identical config produced a different bundle"
    );
    assert_eq!(
        dumps[0], dumps[2],
        "bundle differs between --jobs 1 and --jobs 8"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn recorded_phases_reproduce_the_simulator_decomposition() {
    let dir = temp_dir("decomp");
    let (final_report, dump) = run_recorded(&dir, 12);
    let bundle = mzd_prof::read_bundle(&dump).expect("bundle reads back");
    assert_eq!(bundle.schema, mzd_prof::BUNDLE_SCHEMA);
    assert_eq!(bundle.config_value("seed"), Some("29"));

    let last = bundle.rounds.last().expect("rounds retained");
    assert_eq!(last.round, final_report.round);
    assert_eq!(last.disks.len(), final_report.disks.len());
    for (rec, obs) in last.disks.iter().zip(&final_report.disks) {
        // The snapshot must carry the summary's numbers bit-for-bit —
        // it went through JSON, so exact equality is the contract the
        // shortest-roundtrip float formatting guarantees.
        assert_eq!(rec.requests, obs.requests);
        assert_eq!(rec.service_time, obs.service_time);
        assert_eq!(rec.seek_time, obs.seek_time);
        assert_eq!(rec.rotational_time, obs.rotational_time);
        assert_eq!(rec.transfer_time, obs.transfer_time);
        // And the phases must close the decomposition identity.
        let sum = rec.seek_time
            + rec.rotational_time
            + rec.transfer_time
            + rec.stall_time
            + rec.fault_time;
        let tol = 1e-9 * rec.service_time.max(1.0);
        assert!(
            (sum - rec.service_time).abs() <= tol,
            "phase sum {sum} != service {} on disk {}",
            rec.service_time,
            rec.disk
        );
    }
    // RNG stream positions: one run_round per disk per round, 0-based
    // round index in the report.
    assert!(last.rng_positions.iter().all(|&p| p == last.round + 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_run_fires_a_triggered_dump() {
    // A media-error burst at 25x makes sweeps overrun the round, so the
    // recorder must fire on its own (round overrun and, with the short
    // burn windows, possibly the SLO fast-burn alert first) — no manual
    // dump involved.
    let dir = temp_dir("chaos");
    let mut cfg = ServerConfig::paper_reference(1).expect("valid config");
    cfg.faults = Some(FaultConfig::parse("media=0.02,scenario=burst:8:64:25").expect("valid spec"));
    let target = cfg.target;
    let mut server = VideoServer::new(cfg, 97).expect("valid server");
    let mut settings = SloSettings::for_target(target);
    settings.burn = BurnConfig {
        fast_window: 16,
        slow_window: 64,
        long_window: 128,
        hysteresis: 16,
        ..settings.burn
    };
    settings.conformance = None;
    server.enable_slo(settings).expect("slo enables");
    server.attach_recorder(mzd_prof::Recorder::new(mzd_prof::RecorderSettings::new(
        &dir,
    )));
    for i in 0..28 {
        let _ = server.open_stream(endless_object(i));
    }
    for _ in 0..96 {
        server.run_round();
    }
    let dumps = server.recorder().expect("recorder attached").dumps();
    assert!(
        !dumps.is_empty(),
        "chaos burst produced no automatic postmortem dump"
    );
    for (trigger, dump) in &dumps {
        assert_ne!(
            *trigger,
            mzd_prof::DumpTrigger::Manual,
            "dump should be event-triggered"
        );
        let bundle = mzd_prof::read_bundle(dump).expect("bundle reads back");
        assert_ne!(bundle.trigger, "manual", "dump should be event-triggered");
        assert!(bundle.captured > 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prometheus_exposition_of_a_served_registry_is_well_formed() {
    // Server metrics live in the process-global registry; run enough
    // rounds that counters, gauges and histograms all carry samples.
    let cfg = ServerConfig::paper_reference(1).expect("valid config");
    let mut server = VideoServer::new(cfg, 5).expect("valid server");
    for i in 0..20 {
        let _ = server.open_stream(endless_object(i));
    }
    for _ in 0..8 {
        server.run_round();
    }
    let text = mzd_telemetry::prom::render(mzd_telemetry::global());

    // Structural checks an actual Prometheus scraper enforces.
    let mut seen_metric = false;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        seen_metric = true;
        let (name_part, value) = line.rsplit_once(' ').expect("`name value` sample line");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value in {line:?}"
        );
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.starts_with("mzd_") && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in {line:?}"
        );
    }
    assert!(seen_metric, "exposition carried no samples");

    // Histograms: cumulative buckets ending in +Inf that equals _count.
    assert!(text.contains("# TYPE mzd_sim_round_service_time histogram"));
    let inf_buckets = text
        .lines()
        .filter(|l| l.contains("_bucket{le=\"+Inf\"}"))
        .count();
    let counts = text
        .lines()
        .filter(|l| l.split(' ').next().is_some_and(|n| n.ends_with("_count")))
        .count();
    assert!(inf_buckets > 0, "histograms must expose a +Inf bucket");
    assert_eq!(
        inf_buckets, counts,
        "every histogram needs both a +Inf bucket and a _count"
    );
}
