//! The mzd-par determinism contract, checked end to end: every
//! parallelized scientific pipeline must produce bit-identical output
//! for any worker count. The tests drive the real pipelines — the cache
//! sweep grid, the drift-injection scenario, the Gil–Pelaez CDF
//! tabulation, and the cluster fleet round loop — at jobs ∈ {1, 2, 8}
//! and compare outputs exactly (`f64::to_bits`, not approximate
//! equality).
//!
//! `set_jobs` is process-global, so every test that pins it holds a
//! shared lock and restores the hardware default before releasing it.

use mzd_core::{GuaranteeModel, ServiceTimeCdf};
use mzd_sim::cache_sweep::{self, CacheSweepConfig};
use mzd_sim::{run_replicated_windows, DriftScenarioConfig, SimConfig};
use std::sync::Mutex;

/// Serializes tests that pin the process-global worker count.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the global pool pinned to `jobs` workers.
fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    mzd_par::set_jobs(jobs);
    let out = f();
    mzd_par::set_jobs(0);
    out
}

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn cache_sweep_grid_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let mut cfg = CacheSweepConfig::reference().unwrap();
    cfg.streams = 16;
    cfg.objects = 8;
    cfg.object_rounds = 40;
    cfg.rounds = 120;
    let run = || cache_sweep::sweep(&cfg, &[0.0, 80e6], &[0.3, 1.0], 23).unwrap();
    let reference = with_jobs(1, run);
    assert_eq!(reference.len(), 4);
    for jobs in JOB_COUNTS {
        let other = with_jobs(jobs, run);
        assert_eq!(reference, other, "jobs = {jobs}");
    }
}

#[test]
fn drift_scenario_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let cfg = DriftScenarioConfig::paper_default(300, Some(120));
    let run = || mzd_sim::run_drift_scenario(&cfg, 42).unwrap();
    let reference = with_jobs(1, run);
    for jobs in JOB_COUNTS {
        let r = with_jobs(jobs, run);
        assert_eq!(r.rounds, reference.rounds, "jobs = {jobs}");
        assert_eq!(r.drift_round, reference.drift_round, "jobs = {jobs}");
        assert_eq!(r.drifts_raised, reference.drifts_raised, "jobs = {jobs}");
        assert_eq!(r.late_rounds, reference.late_rounds, "jobs = {jobs}");
        assert_eq!(
            r.final_ks.to_bits(),
            reference.final_ks.to_bits(),
            "jobs = {jobs}"
        );
        assert_eq!(
            r.final_tail_exceedance.to_bits(),
            reference.final_tail_exceedance.to_bits(),
            "jobs = {jobs}"
        );
    }
}

#[test]
fn cdf_grid_is_bit_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let model = GuaranteeModel::paper_reference().unwrap();
    let grid = |jobs: usize| {
        with_jobs(jobs, || {
            ServiceTimeCdf::with_resolution(&model, 27, 257)
                .unwrap()
                .grid_values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>()
        })
    };
    let reference = grid(1);
    assert_eq!(reference.len(), 257);
    for jobs in JOB_COUNTS {
        assert_eq!(reference, grid(jobs), "jobs = {jobs}");
    }
}

#[test]
fn replicated_windows_are_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let cfg = SimConfig::paper_reference().unwrap();
    let run = || run_replicated_windows(&cfg, 27, 1000, 8, 7).unwrap();
    let reference = with_jobs(1, run);
    assert_eq!(reference.rounds, 1000);
    assert_eq!(reference.glitches_per_stream.len(), 8 * 27);
    for jobs in JOB_COUNTS {
        let other = with_jobs(jobs, run);
        assert_eq!(reference, other, "jobs = {jobs}");
    }
}

#[test]
fn cluster_fleet_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    // A 16-node fleet with a scripted mid-run node outage: the round
    // loop steps nodes in parallel (`par_map_owned`), so this pins the
    // whole dispatch/step/migrate cycle to the determinism contract.
    let run = || {
        let mut cfg = mzd_cluster::ClusterConfig::paper_reference(16, 2).unwrap();
        cfg.lease_rounds = 2;
        cfg.outages.push(mzd_cluster::NodeOutage {
            node: 5,
            start: 20,
            rounds: 30,
        });
        let mut fleet = mzd_cluster::Cluster::new(cfg, 4242).unwrap();
        let object = mzd_workload::ObjectSpec::new(
            "det",
            mzd_workload::SizeDistribution::paper_default(),
            40,
        )
        .unwrap();
        for _ in 0..400 {
            fleet.submit(object.clone()).unwrap();
        }
        let mut reports = Vec::new();
        for _ in 0..80 {
            reports.push(fleet.run_round());
        }
        (reports, fleet.status())
    };
    let reference = with_jobs(1, run);
    let (ref_reports, ref_status) = &reference;
    assert!(
        ref_reports.iter().any(|r| !r.migrations.is_empty()),
        "the outage must actually migrate streams"
    );
    assert!(ref_status.completed > 0);
    for jobs in JOB_COUNTS {
        let other = with_jobs(jobs, run);
        assert_eq!(reference, other, "jobs = {jobs}");
    }
}

#[test]
fn fleet_observability_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    // The observability plane rides the same round loop: stitched
    // trace JSON, node-labeled sketch exposition and the fleet-merged
    // bucket counts must come out byte-identical at any job count.
    let run = || {
        let mut cfg = mzd_cluster::ClusterConfig::paper_reference(3, 1).unwrap();
        cfg.lease_rounds = 2;
        cfg.outages.push(mzd_cluster::NodeOutage {
            node: 1,
            start: 4,
            rounds: 40,
        });
        let mut fleet = mzd_cluster::Cluster::new(cfg, 77).unwrap();
        fleet.enable_tracing().unwrap();
        let object = mzd_workload::ObjectSpec::new(
            "obs",
            mzd_workload::SizeDistribution::paper_default(),
            200,
        )
        .unwrap();
        for _ in 0..24 {
            fleet.submit(object.clone()).unwrap();
        }
        for _ in 0..12 {
            fleet.run_round();
        }
        (
            fleet.trace_chrome_json().expect("tracing enabled"),
            fleet.sketches().render_prom(),
            fleet
                .sketches()
                .merged(mzd_cluster::SKETCH_SERVICE_TIME)
                .bucket_counts()
                .to_vec(),
        )
    };
    let reference = with_jobs(1, run);
    assert!(reference.0.contains("fleet.requeue"), "outage must migrate");
    for jobs in JOB_COUNTS {
        let other = with_jobs(jobs, run);
        assert_eq!(reference.0, other.0, "trace JSON, jobs = {jobs}");
        assert_eq!(reference.1, other.1, "prom text, jobs = {jobs}");
        assert_eq!(reference.2, other.2, "bucket counts, jobs = {jobs}");
    }
}

#[test]
fn event_engine_rounds_are_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    // Event-engine anchors: fan a batch of independent event-core
    // simulators — clean and faulted, plain and traced rounds — across
    // the pool and fingerprint every outcome and event stream. The
    // fingerprints must be bit-identical at any job count.
    let run = || {
        let seeds: Vec<u64> = (0..12).map(|i| mzd_par::derive_seed(9000, i)).collect();
        mzd_par::par_map(&seeds, |&seed| {
            let mut cfg = SimConfig::paper_reference().unwrap();
            if seed % 3 == 0 {
                cfg.faults = Some(mzd_fault::FaultConfig::preset("zonefail").unwrap());
            }
            let mut sim = mzd_sim::RoundSimulator::new(cfg, seed).unwrap();
            let mut events: Vec<mzd_sim::Event> = Vec::new();
            let mut fingerprint: Vec<u64> = Vec::new();
            for round in 0..60u64 {
                let out = if round % 2 == 0 {
                    sim.run_round(27)
                } else {
                    sim.run_round_traced(27, &mut events)
                };
                fingerprint.push(out.service_time.to_bits());
                fingerprint.push(out.seek_time.to_bits());
                fingerprint.push(out.rotational_time.to_bits());
                fingerprint.push(out.transfer_time.to_bits());
                fingerprint.push(out.fault_time.to_bits());
                fingerprint.extend(out.glitched_streams.iter().map(|&g| u64::from(g)));
                if round % 2 != 0 {
                    fingerprint.push(events.len() as u64);
                    fingerprint.extend(events.iter().map(|e| e.time.to_bits()));
                }
            }
            fingerprint
        })
    };
    let reference = with_jobs(1, run);
    assert_eq!(reference.len(), 12);
    for jobs in JOB_COUNTS {
        let other = with_jobs(jobs, run);
        assert_eq!(reference, other, "jobs = {jobs}");
    }
}

#[test]
fn retry_budget_exhaustion_boundary_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    // A read whose first-retry cost lands *exactly* on the round-slack
    // budget: the injector's strict `>` comparison admits it — the
    // retry is charged in full and the read still fails at p_media = 1
    // — while any less slack denies the retry entirely. Both outcomes
    // are pure functions of the injector's private RNG stream, so they
    // must be bit-identical at any worker count.
    let cfg = mzd_fault::FaultConfig::parse("media=1.0, retries=4, backoff=0.01:2:1:0").unwrap();
    let (transfer, rotation, full_seek) = (0.01f64, 0.011f64, 0.02f64);
    // Mirror the injector's own arithmetic: reread = rotations·rotation
    // + transfer, first-retry cost = backoff(0) + reread.
    let exact = 0.01 + (1.0 * rotation + transfer);
    let run = || {
        let slacks = [exact, exact - 1e-12, 1.0, 0.0];
        mzd_par::par_map(&slacks, |&slack| {
            let mut inj = mzd_fault::FaultInjector::new(&cfg, 11);
            inj.begin_round();
            let p = inj.perturb_read(0, transfer, rotation, full_seek, slack);
            (
                p.failed,
                p.retry_time.to_bits(),
                p.extra_time.to_bits(),
                inj.counters().retries,
            )
        })
    };
    let reference = with_jobs(1, run);
    let on_budget = &reference[0];
    assert!(on_budget.0, "p_media = 1: the read must fail");
    assert_eq!(
        f64::from_bits(on_budget.1),
        exact,
        "the exactly-on-budget retry is taken and charged in full"
    );
    assert_eq!(on_budget.3, 1, "exactly one retry fits the exact budget");
    let under_budget = &reference[1];
    assert!(under_budget.0, "p_media = 1: the read must fail");
    assert_eq!(
        under_budget.1,
        0.0f64.to_bits(),
        "a hair less slack denies the retry outright"
    );
    assert_eq!(under_budget.3, 0, "no retry fits under the exact cost");
    for jobs in JOB_COUNTS {
        assert_eq!(reference, with_jobs(jobs, run), "jobs = {jobs}");
    }
}

#[test]
fn gray_fleet_health_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    // The graynode fleet anchor: creeping degradation plus the health
    // subsystem end to end — per-node suspicion, hedged dispatch during
    // probation, ejection migration, and the re-composed guarantee —
    // must come out byte-identical at any worker count.
    let run = || {
        let mut cfg = mzd_cluster::ClusterConfig::paper_reference(8, 1).unwrap();
        cfg.node.faults = Some(mzd_fault::FaultConfig::parse("gray=creep:10:60:2.5").unwrap());
        cfg.gray_node = 3;
        let mut fleet = mzd_cluster::Cluster::new(cfg, 4242).unwrap();
        fleet
            .enable_health(mzd_health::HealthConfig {
                warmup_rounds: 8,
                ..mzd_health::HealthConfig::default()
            })
            .unwrap();
        let object = mzd_workload::ObjectSpec::new(
            "gray",
            mzd_workload::SizeDistribution::paper_default(),
            400,
        )
        .unwrap();
        for _ in 0..fleet.guarantee().fleet_capacity {
            fleet.submit(object.clone()).unwrap();
        }
        let mut reports = Vec::new();
        for _ in 0..120 {
            reports.push(fleet.run_round());
        }
        let health = fleet.health_status().unwrap();
        (reports, fleet.status(), health)
    };
    let reference = with_jobs(1, run);
    assert!(
        reference.2.ejections >= 1,
        "the creeping gray node must be ejected"
    );
    assert!(
        reference.2.hedges_issued >= 1,
        "probation must hedge before ejection"
    );
    for jobs in JOB_COUNTS {
        assert_eq!(reference, with_jobs(jobs, run), "jobs = {jobs}");
    }
}

#[test]
fn admission_limits_are_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let model = GuaranteeModel::paper_reference().unwrap();
    let reference = with_jobs(1, || {
        (
            model.n_max_late(1.0, 0.01).unwrap(),
            model.n_max_error(1.0, 1200, 12, 0.01).unwrap(),
        )
    });
    // The paper's anchors: the parallel scan must preserve them exactly.
    assert_eq!(reference, (26, 28));
    for jobs in JOB_COUNTS {
        let other = with_jobs(jobs, || {
            (
                model.n_max_late(1.0, 0.01).unwrap(),
                model.n_max_error(1.0, 1200, 12, 0.01).unwrap(),
            )
        });
        assert_eq!(reference, other, "jobs = {jobs}");
    }
}
