//! End-to-end caching scenario: a Zipf-popular catalog read through a
//! fragment cache lets cache-aware admission sustain more concurrent
//! streams than the paper's cacheless `N_max` — without giving up the
//! per-stream glitch guarantee.
//!
//! The cacheless reference on one Quantum Viking 2.1 disk admits 28
//! streams (M = 1200, g = 12, ε = 1%). Here the same disk fronted by an
//! LRU cache a fraction of the catalog's size carries ≥ 35 streams
//! (1.25 × N_max) for 1600 rounds while the realized glitch rate stays
//! inside the 1% budget.

use mzd_cache::CachePolicy;
use mzd_server::{CacheSettings, ServerConfig, VideoServer};
use mzd_workload::{ObjectSpec, SizeDistribution, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OBJECTS: usize = 20;
const ROUNDS: u64 = 1600;
const TARGET_STREAMS: usize = 35; // 1.25 x the cacheless per-disk limit of 28

/// Stored catalog with staggered play-out lengths so completions (and
/// the re-draws replacing them) spread over time instead of arriving in
/// lockstep cohorts.
fn catalog() -> Vec<ObjectSpec> {
    (0..OBJECTS)
        .map(|i| {
            let rounds = 120 + 12 * u32::try_from(i).unwrap();
            ObjectSpec::new(
                format!("title-{i}"),
                SizeDistribution::paper_default(),
                rounds,
            )
            .expect("valid object")
            .with_content_id(i as u64 + 1)
        })
        .collect()
}

struct RunStats {
    base_limit: u32,
    effective_limit: u32,
    glitches: u64,
    stream_rounds: u64,
    /// Rounds (within the audited tail) that started with fewer than
    /// [`TARGET_STREAMS`] active streams.
    tail_rounds_below_target: u64,
    tail_rounds: u64,
    completed_over_budget: usize,
    completed: usize,
    hit_ratio: f64,
}

fn run_scenario(cache: Option<CacheSettings>, seed: u64) -> RunStats {
    let mut cfg = ServerConfig::paper_reference(1).expect("valid config");
    cfg.cache = cache;
    let mut server = VideoServer::new(cfg, seed).expect("valid server");
    let base_limit = server.admission().per_disk_limit();

    let titles = catalog();
    let zipf = Zipf::new(OBJECTS, 1.0).expect("valid zipf");
    let mut arrivals = StdRng::seed_from_u64(seed ^ 0xCA11_0F21);
    for _ in 0..TARGET_STREAMS {
        server.enqueue_stream(titles[zipf.sample(&mut arrivals)].clone());
    }

    let warmup = ROUNDS / 4;
    let mut glitches = 0u64;
    let mut stream_rounds = 0u64;
    let mut tail_rounds_below_target = 0u64;
    let mut tail_rounds = 0u64;
    for round in 0..ROUNDS {
        let active = server.active_streams() as u64;
        stream_rounds += active;
        if round >= warmup {
            tail_rounds += 1;
            if active < TARGET_STREAMS as u64 {
                tail_rounds_below_target += 1;
            }
        }
        let report = server.run_round();
        glitches += report.glitched_streams.len() as u64;
        // Constant offered load: each play-out completion is replaced by
        // a fresh Zipf draw (admitted from the wait queue next round).
        for _ in &report.completed_streams {
            server.enqueue_stream(titles[zipf.sample(&mut arrivals)].clone());
        }
    }

    let completed = server.completed_streams().to_vec();
    let completed_over_budget = completed
        .iter()
        .filter(|c| c.glitches * 100 > u64::from(c.rounds_played)) // > 1% of rounds
        .count();
    let hit_ratio = server
        .cache()
        .map_or(0.0, |c| c.stats().disk_avoidance_ratio());
    RunStats {
        base_limit,
        effective_limit: server.admission().effective_per_disk_limit(),
        glitches,
        stream_rounds,
        tail_rounds_below_target,
        tail_rounds,
        completed_over_budget,
        completed: completed.len(),
        hit_ratio,
    }
}

#[test]
fn cached_disk_sustains_a_quarter_more_streams_within_the_glitch_budget() {
    let stats = run_scenario(
        Some(CacheSettings {
            capacity_bytes: 2.4e8, // ~1200 fragments, a quarter of the ~0.9 GB catalog
            policy: CachePolicy::Lru,
            admission_safety: Some(0.2),
        }),
        9,
    );

    assert_eq!(stats.base_limit, 28, "paper's cacheless per-disk limit");
    assert!(
        stats.effective_limit >= TARGET_STREAMS as u32,
        "cache-aware admission must unlock >= {TARGET_STREAMS} streams, got {}",
        stats.effective_limit
    );
    // Sustained: after the warmup quarter (hit-ratio window filling,
    // queue draining), the target population is active in nearly every
    // round — brief dips happen only in the round after a completion,
    // before the replacement request is re-admitted.
    assert!(
        stats.tail_rounds_below_target <= stats.tail_rounds / 10,
        "below {TARGET_STREAMS} streams in {} of {} audited rounds",
        stats.tail_rounds_below_target,
        stats.tail_rounds
    );
    // The guarantee survives the over-admission: the aggregate glitch
    // rate stays inside the 1% budget of the quality target.
    let rate = stats.glitches as f64 / stats.stream_rounds as f64;
    assert!(
        rate < 0.01,
        "glitch rate {rate:.4} over budget ({} glitches in {} stream-rounds)",
        stats.glitches,
        stats.stream_rounds
    );
    // ... and per stream: plays that blew the 1% glitch budget are rare.
    assert!(
        stats.completed_over_budget * 20 <= stats.completed,
        "{} of {} completed streams exceeded the glitch budget",
        stats.completed_over_budget,
        stats.completed
    );
    assert!(
        stats.hit_ratio > 0.15,
        "cache absorbed only {:.3} of lookups",
        stats.hit_ratio
    );
}

#[test]
fn cacheless_server_cannot_reach_the_target_population() {
    // Control: the identical workload without a cache stays pinned at the
    // paper's N_max — every round of the tail runs below the target.
    let stats = run_scenario(None, 9);
    assert_eq!(stats.base_limit, 28);
    assert_eq!(stats.effective_limit, 28, "no cache, no inflation");
    assert_eq!(
        stats.tail_rounds_below_target, stats.tail_rounds,
        "a cacheless disk must never carry {TARGET_STREAMS} streams"
    );
    let rate = stats.glitches as f64 / stats.stream_rounds as f64;
    assert!(rate < 0.01, "control run over budget: {rate:.4}");
}
