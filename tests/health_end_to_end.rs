//! Gray-failure self-healing, end to end: a 16-node fleet with one
//! node creeping toward 2.5× service-time inflation, run for 2400
//! rounds at a constant offered load.
//!
//! With the health subsystem on, the detector probates the creeper
//! while its inflation is still mild, hedged dispatch covers the
//! probation window, ejection migrates its streams over the requeue
//! path, and the fleet guarantee is re-composed with the spare promoted
//! — so the composed per-stream glitch budget holds observationally
//! across every completed play-out. A health-disabled control with
//! byte-identical seeds lets the creeper keep its streams and breaches
//! the same budget. Both runs are byte-identical across reruns and
//! worker-pool widths.

use mzd_cluster::{Cluster, ClusterConfig, ClusterStatus, HealthStatus};
use mzd_workload::{ObjectSpec, SizeDistribution};
use std::sync::Mutex;

/// Serializes jobs-pinning tests (set_jobs is process-global).
static JOBS_LOCK: Mutex<()> = Mutex::new(());

const NODES: u32 = 16;
const ROUNDS: u64 = 2400;
const GRAY_NODE: u32 = 5;
/// Creep onset and ramp: inactive for 100 rounds, at the 2.5× peak
/// from round 500 on — most of the run is spent fully degraded.
const GRAY_SPEC: &str = "gray=creep:100:400:2.5";
/// Short play-outs so the run completes several generations of
/// streams; every completion is re-submitted to hold the load constant.
const OBJECT_ROUNDS: u32 = 400;

/// One full scenario run; everything returned is comparable bytes.
struct RunOutcome {
    status: ClusterStatus,
    health: Option<HealthStatus>,
    /// Per-round (glitched_streams, migrations, failed_nodes) fingerprint.
    fingerprint: Vec<(u64, usize, usize)>,
    /// (over-budget completions, total completions).
    over_budget: (usize, usize),
    /// Smallest re-composed capacity seen during the run (health only).
    min_effective: u64,
    /// The composed fleet capacity before any debit.
    full_capacity: u64,
}

fn run_scenario(health: bool) -> RunOutcome {
    let mut cfg = ClusterConfig::paper_reference(NODES, 1).expect("valid fleet config");
    cfg.node.faults = Some(mzd_fault::FaultConfig::parse(GRAY_SPEC).expect("valid gray spec"));
    cfg.gray_node = GRAY_NODE;
    let mut fleet = Cluster::new(cfg, 20_26).expect("valid fleet");
    if health {
        fleet
            .enable_health(mzd_health::HealthConfig::default())
            .expect("valid health config");
    }
    let guarantee = fleet.guarantee().clone();
    let object =
        ObjectSpec::new("e2e", SizeDistribution::paper_default(), OBJECT_ROUNDS).expect("valid");
    for _ in 0..guarantee.fleet_capacity {
        fleet.submit(object.clone()).expect("submit");
    }
    let mut fingerprint = Vec::with_capacity(ROUNDS as usize);
    let mut min_effective = guarantee.fleet_capacity;
    for _ in 0..ROUNDS {
        let report = fleet.run_round();
        fingerprint.push((
            report.glitched_streams,
            report.migrations.len(),
            report.failed_nodes.len(),
        ));
        // Constant offered load: every completed play-out re-draws one.
        for _ in 0..report.completed.len() {
            let _ = fleet.submit(object.clone());
        }
        if let Some(h) = fleet.health_status() {
            min_effective = min_effective.min(h.recomposed.effective_capacity);
        }
    }
    let completed = fleet.completed();
    let over = completed
        .iter()
        .filter(|c| c.glitches >= guarantee.g)
        .count();
    RunOutcome {
        over_budget: (over, completed.len()),
        status: fleet.status(),
        health: fleet.health_status(),
        fingerprint,
        min_effective,
        full_capacity: guarantee.fleet_capacity,
    }
}

#[test]
fn health_holds_the_composed_budget_where_the_control_breaches_it() {
    let _guard = JOBS_LOCK.lock().unwrap();
    mzd_par::set_jobs(1);
    let healed = run_scenario(true);
    let control = run_scenario(false);
    mzd_par::set_jobs(0);

    let epsilon = 0.01; // the composed guarantee's any-stream budget
    let (h_over, h_total) = healed.over_budget;
    let (c_over, c_total) = control.over_budget;
    assert!(h_total > 1_000, "enough completions to judge: {h_total}");
    assert!(c_total > 1_000, "enough completions to judge: {c_total}");

    // The healed fleet holds the budget observationally…
    let h_frac = h_over as f64 / h_total as f64;
    assert!(
        h_frac <= epsilon,
        "healed fleet breached: {h_over}/{h_total} over budget"
    );
    // …while the identically-seeded control breaches it wide.
    let c_frac = c_over as f64 / c_total as f64;
    assert!(
        c_frac > epsilon,
        "control unexpectedly held: {c_over}/{c_total} over budget"
    );

    // The mechanism must actually have engaged: ejection, hedging, and
    // a re-composed (debited) capacity — not a quiet lucky run. The
    // creeper never misses a lease (gray ≠ crash), so the control sees
    // no node failures at all: detection is the only defense.
    let h = healed.health.expect("health enabled");
    assert!(h.ejections >= 1, "no ejection fired: {h:?}");
    assert!(h.hedges_issued >= 1, "probation never hedged: {h:?}");
    assert!(
        healed.min_effective < healed.full_capacity,
        "re-composition never debited capacity: min {} of {}",
        healed.min_effective,
        healed.full_capacity
    );
    assert_eq!(
        healed
            .fingerprint
            .iter()
            .map(|(_, _, failed)| failed)
            .sum::<usize>(),
        0,
        "gray degradation must not trip the lease path"
    );
    assert!(control.health.is_none());
    assert_eq!(control.status.migrations, 0, "control must not migrate");
    assert!(
        healed.status.migrations > 0,
        "ejection must migrate the creeper's streams"
    );
}

#[test]
fn both_scenarios_are_byte_identical_across_reruns_and_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    for health in [true, false] {
        let reference = {
            mzd_par::set_jobs(1);
            let out = run_scenario(health);
            mzd_par::set_jobs(0);
            out
        };
        for jobs in [1usize, 2, 8] {
            mzd_par::set_jobs(jobs);
            let other = run_scenario(health);
            mzd_par::set_jobs(0);
            assert_eq!(
                reference.fingerprint, other.fingerprint,
                "health={health} jobs={jobs}"
            );
            assert_eq!(
                reference.status, other.status,
                "health={health} jobs={jobs}"
            );
            assert_eq!(
                reference.health, other.health,
                "health={health} jobs={jobs}"
            );
            assert_eq!(
                reference.over_budget, other.over_budget,
                "health={health} jobs={jobs}"
            );
            assert_eq!(
                reference.min_effective, other.min_effective,
                "health={health} jobs={jobs}"
            );
        }
    }
}
