//! Property-based tests over the cross-crate invariants of the model:
//! conservativeness, monotonicity and probability-law sanity under
//! randomized disks, workloads and parameters.

use mzd_core::{glitch, GuaranteeModel, ZoneHandling};
use mzd_disk::{Disk, SeekCurve, ZoneModel};
use proptest::prelude::*;

/// A strategy over plausible disks: 1000–20000 cylinders, 1–40 zones,
/// 4–15 ms revolutions, 20–200 KB track capacities with ≤ 3x zoning.
fn arb_disk() -> impl Strategy<Value = Disk> {
    (
        1_000u32..20_000,
        1usize..40,
        4e-3..15e-3,
        20_000.0f64..100_000.0,
        1.0f64..3.0,
    )
        .prop_map(|(cyl, z, rot, c_min, spread)| {
            let c_max = if z == 1 { c_min } else { c_min * spread };
            let zones = ZoneModel::linear(z, c_min, c_max).expect("valid zones");
            let threshold = f64::from(cyl) / 5.0;
            let seek = SeekCurve::paper_form(1.5e-3, 1.2e-4, 3.5e-3, 2.0e-6, threshold)
                .expect("valid curve");
            Disk::new(cyl.max(z as u32), rot, seek, zones).expect("valid disk")
        })
}

/// Plausible fragment workloads: 20 KB–1 MB mean, cv in [0.1, 1.5].
fn arb_workload() -> impl Strategy<Value = (f64, f64)> {
    (20_000.0f64..1_000_000.0, 0.1f64..1.5).prop_map(|(mean, cv)| {
        let sd = mean * cv;
        (mean, sd * sd)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn p_late_is_a_probability_and_monotone_in_n(
        disk in arb_disk(),
        (mean, var) in arb_workload(),
        t in 0.25f64..4.0,
    ) {
        let model = GuaranteeModel::new(disk, mean, var, ZoneHandling::Discrete)
            .expect("valid model");
        let mut prev = 0.0;
        for n in (1..=40u32).step_by(4) {
            let p = model.p_late_bound(n, t).expect("valid t");
            prop_assert!((0.0..=1.0).contains(&p), "p_late({n}) = {p}");
            prop_assert!(p >= prev - 1e-9, "p_late not monotone at n = {n}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn p_late_is_monotone_decreasing_in_t(
        disk in arb_disk(),
        (mean, var) in arb_workload(),
    ) {
        let model = GuaranteeModel::new(disk, mean, var, ZoneHandling::Discrete)
            .expect("valid model");
        let mut prev = 1.0f64;
        for i in 0..8 {
            let t = 0.25 * f64::from(1 << i).sqrt();
            let p = model.p_late_bound(16, t).expect("valid t");
            prop_assert!(p <= prev + 1e-9, "t = {t}: {p} > {prev}");
            prev = p;
        }
    }

    #[test]
    fn glitch_bound_is_between_zero_and_late_bound(
        disk in arb_disk(),
        (mean, var) in arb_workload(),
        n in 1u32..40,
        t in 0.25f64..4.0,
    ) {
        let model = GuaranteeModel::new(disk, mean, var, ZoneHandling::Discrete)
            .expect("valid model");
        let g = model.p_glitch_bound(n, t).expect("valid t");
        let l = model.p_late_bound(n, t).expect("valid t");
        prop_assert!((0.0..=1.0).contains(&g));
        prop_assert!(g <= l + 1e-12, "glitch {g} > late {l}");
    }

    #[test]
    fn n_max_respects_its_threshold(
        disk in arb_disk(),
        (mean, var) in arb_workload(),
        delta in 1e-4f64..0.5,
    ) {
        let model = GuaranteeModel::new(disk, mean, var, ZoneHandling::Discrete)
            .expect("valid model");
        let n_max = model.n_max_late(1.0, delta).expect("valid");
        if n_max > 0 {
            let p = model.p_late_bound(n_max, 1.0).expect("valid");
            prop_assert!(p <= delta, "p_late(N_max={n_max}) = {p} > {delta}");
        }
        let p_next = model.p_late_bound(n_max + 1, 1.0).expect("valid");
        prop_assert!(p_next > delta, "p_late(N_max+1) = {p_next} <= {delta}");
    }

    #[test]
    fn hagerup_rub_dominates_exact_binomial_tail(
        p in 0.0f64..0.2,
        m in 1u64..2000,
        frac in 0.0f64..1.0,
    ) {
        let g = ((m as f64 * frac).round() as u64).min(m);
        let exact = glitch::binomial_tail_exact(p, m, g);
        let bound = glitch::binomial_tail_chernoff(p, m, g);
        prop_assert!(bound >= exact - 1e-9, "bound {bound} < exact {exact} (p={p}, m={m}, g={g})");
        prop_assert!((0.0..=1.0).contains(&bound));
        prop_assert!((0.0..=1.0).contains(&exact));
    }

    #[test]
    fn zone_flattening_is_optimistic_everywhere(
        disk in arb_disk(),
        (mean, var) in arb_workload(),
        n in 4u32..40,
    ) {
        // E[1/R] >= 1/E[R] (Jensen): ignoring zones understates transfer
        // times, so the flattened bound must never exceed the exact one.
        let exact = GuaranteeModel::new(disk.clone(), mean, var, ZoneHandling::Discrete)
            .expect("valid");
        let flat = GuaranteeModel::new(disk, mean, var, ZoneHandling::MeanRate)
            .expect("valid");
        let pe = exact.p_late_bound(n, 1.0).expect("valid");
        let pf = flat.p_late_bound(n, 1.0).expect("valid");
        prop_assert!(pf <= pe + 1e-9, "flattened {pf} above exact {pe}");
    }

    #[test]
    fn simulated_seek_decomposition_is_internally_consistent(
        seed in 0u64..1000,
        n in 1u32..50,
    ) {
        use mzd_sim::{RoundSimulator, SimConfig};
        let mut sim = RoundSimulator::new(
            SimConfig::paper_reference().expect("valid"),
            seed,
        ).expect("valid");
        let out = sim.run_round(n);
        prop_assert!(out.service_time >= 0.0);
        let sum = out.seek_time + out.rotational_time + out.transfer_time + out.stall_time
            + out.fault_time;
        prop_assert!((out.service_time - sum).abs() < 1e-9);
        prop_assert!(out.glitched_streams.len() <= n as usize);
        prop_assert_eq!(out.late, out.service_time > 1.0);
        for &s in &out.glitched_streams {
            prop_assert!(s < n);
        }
    }

    #[test]
    fn retry_latency_never_exceeds_the_slack_budget(
        seed in 0u64..10_000,
        p_media in 0.0f64..1.0,
        slack in -0.01f64..0.25,
        max_attempts in 1u32..8,
        backoff_base in 0.0f64..0.01,
        backoff_factor in 1.0f64..4.0,
        jitter in 0.0f64..1.0,
    ) {
        use mzd_fault::{FaultConfig, FaultInjector, FaultProfile, RetryPolicy};
        let cfg = FaultConfig {
            profile: FaultProfile { p_media, ..FaultProfile::default() },
            retry: RetryPolicy {
                max_attempts,
                backoff_base,
                backoff_factor,
                jitter,
                ..RetryPolicy::default()
            },
            ..FaultConfig::default()
        };
        cfg.validate().expect("strategy only emits valid configs");
        let mut inj = FaultInjector::new(&cfg, seed);
        inj.begin_round();
        // Paper-ish read kinematics; only the budget invariant matters.
        for _ in 0..64 {
            let p = inj.perturb_read(0, 0.007, 0.0116, 0.018, slack);
            prop_assert!(
                p.retry_time <= slack.max(0.0) + 1e-12,
                "retry latency {} exceeds the slack budget {slack}", p.retry_time
            );
            prop_assert!(p.extra_time >= p.retry_time);
            prop_assert!(p.extra_time.is_finite() && p.extra_time >= 0.0);
        }
    }

    #[test]
    fn jittered_backoff_sequence_is_monotone_non_decreasing(
        backoff_base in 0.0f64..0.02,
        backoff_factor in 1.0f64..4.0,
        backoff_cap in 0.0f64..0.1,
        jitter in 0.0f64..1.0,
        us in proptest::collection::vec(0.0f64..1.0, 1..12),
    ) {
        use mzd_fault::RetryPolicy;
        let policy = RetryPolicy {
            backoff_base,
            backoff_factor,
            backoff_cap,
            jitter,
            ..RetryPolicy::default()
        };
        policy.validate().expect("strategy only emits valid policies");
        let mut prev = 0.0;
        for (i, &u) in us.iter().enumerate() {
            let b = policy.backoff(u32::try_from(i).unwrap(), prev, u);
            prop_assert!(b >= prev, "backoff decreased at retry {i}: {b} < {prev}");
            prop_assert!(b.is_finite());
            prev = b;
        }
    }
}

// Zero-fault byte-identity needs the process-global worker pool pinned,
// so it runs in its own block with few cases and a shared lock.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn clean_fault_config_is_byte_identical_to_no_injector_across_jobs(
        seed in 0u64..1_000,
        n in 1u32..30,
    ) {
        use mzd_fault::FaultConfig;
        use mzd_sim::{estimate_p_late_par, SimConfig};
        static JOBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = JOBS_LOCK.lock().unwrap();
        let base = SimConfig::paper_reference().expect("valid");
        let clean = SimConfig {
            faults: Some(FaultConfig::default()),
            ..SimConfig::paper_reference().expect("valid")
        };
        let mut outcomes = Vec::new();
        for jobs in [1usize, 8] {
            mzd_par::set_jobs(jobs);
            let a = estimate_p_late_par(&base, n, 60, 2, seed).expect("valid");
            let b = estimate_p_late_par(&clean, n, 60, 2, seed).expect("valid");
            outcomes.push((jobs, a, b));
        }
        mzd_par::set_jobs(0);
        let reference = outcomes[0].1.p_late.to_bits();
        for (jobs, a, b) in outcomes {
            prop_assert_eq!(a.p_late.to_bits(), b.p_late.to_bits(), "jobs = {}", jobs);
            prop_assert_eq!(
                a.mean_service_time.to_bits(),
                b.mean_service_time.to_bits(),
                "jobs = {}", jobs
            );
            prop_assert_eq!(a.late_rounds, b.late_rounds, "jobs = {}", jobs);
            // And the worker count itself never changes the answer.
            prop_assert_eq!(a.p_late.to_bits(), reference, "jobs = {}", jobs);
        }
    }
}
