//! End-to-end checks for the sharded fleet: failure handling meets the
//! lease protocol, and the composed guarantee holds against observed
//! glitch counts over long horizons.

use mzd_cluster::{Cluster, ClusterConfig, Node, NodeOutage, SubmitOutcome};
use mzd_workload::{ObjectSpec, SizeDistribution};

fn object(rounds: u32) -> ObjectSpec {
    ObjectSpec::new("e2e", SizeDistribution::paper_default(), rounds).unwrap()
}

/// Fill the fleet to its composed capacity with `rounds`-round objects.
fn fill(fleet: &mut Cluster, rounds: u32) -> u64 {
    let cap = fleet.guarantee().fleet_capacity;
    for _ in 0..cap {
        assert!(matches!(
            fleet.submit(object(rounds)).unwrap(),
            SubmitOutcome::Queued { .. }
        ));
    }
    cap
}

/// A killed node's streams are requeued and re-hosted within the lease
/// timeout plus the budgeted requeue slack — the `ℓ` the guarantee
/// debits is a real bound on the outage a viewer sees, not a wish.
#[test]
fn node_failure_requeues_streams_within_the_lease_budget() {
    let mut cfg = ClusterConfig::paper_reference(6, 2).unwrap();
    cfg.lease_rounds = 3;
    let start = 10;
    cfg.outages.push(NodeOutage {
        node: 2,
        start,
        rounds: 500, // dead for the whole test
    });
    let mut fleet = Cluster::new(cfg, 31).unwrap();
    fill(&mut fleet, 300);
    for _ in 0..start {
        fleet.run_round();
    }
    let victims = fleet.node(2).active_streams();
    assert!(victims > 0, "node 2 must host streams before the kill");

    // Silent from round `start`; the lease was last renewed at round
    // start − 1, so expiry (and the migration wave) lands exactly at
    // round start − 1 + lease_rounds.
    let mut migrated = 0usize;
    let mut readmitted = 0u64;
    let mut expiry_round = None;
    for _ in 0..10 {
        let r = fleet.run_round();
        if !r.failed_nodes.is_empty() {
            assert_eq!(r.failed_nodes, vec![2]);
            assert_eq!(r.round, start - 1 + 3, "expiry must land at lease end");
            expiry_round = Some(r.round);
            migrated = r.migrations.len();
        }
        if let Some(at) = expiry_round {
            // Adopting nodes pull in later rounds; all victims must be
            // re-hosted within the REQUEUE_SLACK_ROUNDS budget.
            if r.round > at {
                readmitted += r.admitted;
                assert!(
                    r.round <= at + u64::from(mzd_cluster::guarantee::REQUEUE_SLACK_ROUNDS)
                        || readmitted >= migrated as u64,
                    "round {}: only {readmitted}/{migrated} victims re-hosted",
                    r.round
                );
            }
        }
    }
    let at = expiry_round.expect("the lease must expire");
    assert_eq!(migrated, victims, "every hosted stream must migrate");
    assert_eq!(fleet.node(2).active_streams(), 0);
    assert!(readmitted >= migrated as u64);
    let _ = at;
}

/// Migrated streams keep their arrival rank: after a failure, the
/// re-queued streams (older sequence numbers) are admitted before
/// fresh arrivals that queued later — fleet-level FIFO fairness.
#[test]
fn migrated_streams_outrank_newer_arrivals_in_the_queue() {
    let mut cfg = ClusterConfig::paper_reference(3, 1).unwrap();
    cfg.lease_rounds = 2;
    cfg.outages.push(NodeOutage {
        node: 0,
        start: 5,
        rounds: 300,
    });
    let mut fleet = Cluster::new(cfg, 13).unwrap();
    // Leave headroom for the fresh arrivals below — committed capacity
    // only frees on completion, and the point here is ordering, not
    // admission rejection.
    let cap = fleet.guarantee().fleet_capacity;
    for _ in 0..cap.saturating_sub(8) {
        fleet.submit(object(60)).unwrap();
    }
    for _ in 0..5 {
        fleet.run_round();
    }
    let victims: Vec<u64> = (0..20)
        .filter_map(|_| {
            let r = fleet.run_round();
            (!r.migrations.is_empty()).then(|| r.migrations.iter().map(|m| m.seq).collect())
        })
        .next()
        .unwrap_or_default();
    assert!(!victims.is_empty(), "the outage must migrate streams");
    // Submit fresh arrivals now — newer seq than every victim.
    let fresh: Vec<u64> = (0..4)
        .map(|_| match fleet.submit(object(60)).unwrap() {
            SubmitOutcome::Queued { seq, .. } => seq,
            SubmitOutcome::Rejected { .. } => u64::MAX,
        })
        .collect();
    assert!(fresh.iter().all(|&s| s != u64::MAX));
    // As capacity frees up, victims must complete their (shorter,
    // remaining) play-out before any fresh arrival completes: strict
    // FIFO would admit them first.
    let mut completions: Vec<u64> = Vec::new();
    for _ in 0..200 {
        let r = fleet.run_round();
        completions.extend(r.completed.iter().map(|c| c.seq));
    }
    let victim_last = victims
        .iter()
        .map(|v| {
            completions
                .iter()
                .position(|c| c == v)
                .expect("victim completes")
        })
        .max()
        .unwrap();
    for f in &fresh {
        if let Some(pos) = completions.iter().position(|c| c == f) {
            assert!(
                pos > victim_last,
                "fresh arrival {f} completed before a migrated victim"
            );
        }
    }
}

/// The composed guarantee, checked observationally: run a fleet at its
/// admitted capacity through a real node failure for ≥ 2048 rounds and
/// compare per-stream glitch counts against the budget. The composed
/// bound says a stream busts `g` with probability ≤ ε = 1%; with
/// hundreds of completed streams, the observed violation rate must sit
/// inside the budget.
#[test]
fn composed_p_error_holds_over_long_horizon() {
    let m: u32 = 1200;
    let mut cfg = ClusterConfig::paper_reference(4, 1).unwrap();
    cfg.lease_rounds = 3;
    // One real failure mid-horizon, spanning many stream lifetimes.
    cfg.outages.push(NodeOutage {
        node: 1,
        start: 400,
        rounds: 300,
    });
    let mut fleet = Cluster::new(cfg, 97).unwrap();
    let guarantee = fleet.guarantee().clone();
    assert!(guarantee.p_error_stream <= 0.01);
    fill(&mut fleet, m);
    let rounds = 2400u64;
    for _ in 0..rounds {
        let r = fleet.run_round();
        // Constant offered load: replace completed play-outs.
        for _ in &r.completed {
            fleet.submit(object(m)).unwrap();
        }
    }
    assert!(fleet.round() >= 2048);
    let completed = fleet.completed();
    assert!(
        completed.len() >= 100,
        "need a population to judge the bound, got {}",
        completed.len()
    );
    let violations = completed
        .iter()
        .filter(|c| c.glitches >= guarantee.g)
        .count();
    let observed = violations as f64 / completed.len() as f64;
    assert!(
        observed <= guarantee.epsilon,
        "observed error rate {observed:.4} busts the ε = {} budget \
         ({violations}/{} streams exceeded g = {})",
        guarantee.epsilon,
        completed.len(),
        guarantee.g
    );
    // The failure really happened and streams really migrated.
    let status = fleet.status();
    assert!(
        status.migrations > 0,
        "the scripted outage must migrate streams"
    );
    assert!(status.outage_glitches > 0);
    // Sanity on the bound itself: capacity and spare accounting.
    assert_eq!(status.nodes, 4);
    assert_eq!(guarantee.spares, 1);
}

/// Eager registration: constructing a cluster exposes the full
/// `cluster.*` metric family before any round runs, so scrapers see an
/// identical catalog for calm and chaotic fleets.
#[test]
fn cluster_metrics_register_eagerly_at_construction() {
    let _fleet = Cluster::new(ClusterConfig::paper_reference(2, 1).unwrap(), 5).unwrap();
    let text = mzd_telemetry::prom::render(mzd_telemetry::global());
    for name in [
        "cluster.nodes",
        "cluster.nodes.available",
        "cluster.nodes.failed",
        "cluster.streams.active",
        "cluster.streams.waiting",
        "cluster.dispatch.submitted",
        "cluster.dispatch.rejected",
        "cluster.dispatch.admitted",
        "cluster.dispatch.requeued",
        "cluster.lease.renewals",
        "cluster.lease.expirations",
        "cluster.migrations",
        "cluster.migrated_streams",
        "cluster.glitches",
        "cluster.glitches.outage",
        "cluster.round.queue_depth",
        "cluster.p_error_bound",
    ] {
        let prom_name = name.replace('.', "_");
        assert!(
            text.contains(&prom_name),
            "metric {name} ({prom_name}) missing from exposition:\n{text}"
        );
    }
}
