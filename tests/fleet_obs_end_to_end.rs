//! End-to-end checks for the fleet observability plane: cross-node
//! trace stitching (one causal chain per stream, even across a
//! migration), labeled quantile sketches whose exact merge reproduces
//! the quantiles of the concatenated per-node samples, and correlated
//! fleet postmortem bundles — all byte-identical across reruns.

use mzd_cluster::{
    Cluster, ClusterConfig, MigrationRecord, NodeOutage, NODE_SPAN_BASE_SHIFT, SKETCH_SERVICE_TIME,
};
use mzd_obs::QuantileSketch;
use mzd_prof::{read_fleet_bundle, DumpTrigger, RecorderSettings};
use mzd_telemetry::geometry;
use mzd_workload::{ObjectSpec, SizeDistribution};

fn object(rounds: u32) -> ObjectSpec {
    ObjectSpec::new("obs", SizeDistribution::paper_default(), rounds).unwrap()
}

/// A 3-node fleet with a scripted mid-run outage of node 1, loaded
/// with 24 long streams — enough pressure that the lease expiry
/// migrates streams onto the survivors.
fn failing_fleet(seed: u64, setup: impl Fn(&mut Cluster)) -> Cluster {
    let mut cfg = ClusterConfig::paper_reference(3, 1).unwrap();
    cfg.lease_rounds = 2;
    cfg.outages.push(NodeOutage {
        node: 1,
        start: 4,
        rounds: 50,
    });
    let mut fleet = Cluster::new(cfg, seed).unwrap();
    setup(&mut fleet);
    for _ in 0..24 {
        fleet.submit(object(200)).unwrap();
    }
    fleet
}

fn run_rounds(fleet: &mut Cluster, rounds: usize) -> Vec<MigrationRecord> {
    let mut migrated = Vec::new();
    for _ in 0..rounds {
        migrated.extend(fleet.run_round().migrations);
    }
    migrated
}

/// The span-id range node `i`'s tracer mints from (see
/// [`NODE_SPAN_BASE_SHIFT`]).
fn node_span_range(node: u32) -> (u64, u64) {
    let base = (u64::from(node) + 1) << NODE_SPAN_BASE_SHIFT;
    (base, base + (1 << NODE_SPAN_BASE_SHIFT))
}

/// A migrated stream's spans appear on both the failed node and the
/// adopter, all under the single trace id minted at submission — the
/// migration reads as one causal chain in one Chrome trace.
#[test]
fn migrated_stream_is_one_causal_chain_across_nodes() {
    let mut fleet = failing_fleet(9, |f| f.enable_tracing().unwrap());
    let migrated = run_rounds(&mut fleet, 10);
    assert!(!migrated.is_empty(), "the outage must migrate streams");
    let m = &migrated[0];
    assert_ne!(m.from, m.to);

    // Both the evacuated node and the adopter minted spans for the
    // stream's trace, each from its own rebased id range.
    for node in [m.from, m.to] {
        let (lo, hi) = node_span_range(node);
        let spans = fleet
            .node(node)
            .server()
            .trace_events()
            .expect("node tracing enabled")
            .iter()
            .filter(|e| e.ctx.trace == m.seq && e.ctx.span > lo && e.ctx.span < hi)
            .count();
        assert!(spans > 0, "no spans for stream {} on node {node}", m.seq);
    }

    // The fleet tracer carries the connective tissue: submission,
    // queue wait, the lease expiry and the requeue to the adopter.
    let json = fleet.trace_chrome_json().expect("tracing enabled");
    for name in [
        "fleet.submit",
        "fleet.queue.wait",
        "fleet.lease.expire",
        "fleet.requeue",
    ] {
        assert!(json.contains(name), "missing {name} in trace");
    }
}

/// The fleet-merged sketch is exact: its bucket counts equal a manual
/// node-order merge of per-node sketches rebuilt from the raw samples,
/// and its p99 matches the rank-based quantile of the concatenated
/// samples to within one log-bucket.
#[test]
fn merged_quantiles_match_concatenated_samples_within_one_bucket() {
    let mut fleet = failing_fleet(17, |_| ());
    let mut per_node: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for _ in 0..12 {
        let r = fleet.run_round();
        for (node, samples) in r.node_service_times.iter().enumerate() {
            per_node[node].extend_from_slice(samples);
        }
    }

    // Rebuild the sketches from the raw samples the reports exported;
    // the exact-merge property means bucket counts agree bit for bit.
    let mut manual = QuantileSketch::new();
    for samples in &per_node {
        let mut node_sketch = QuantileSketch::new();
        for &s in samples {
            node_sketch.record(s);
        }
        manual.merge(&node_sketch);
    }
    let merged = fleet.sketches().merged(SKETCH_SERVICE_TIME);
    assert_eq!(merged.bucket_counts(), manual.bucket_counts());
    assert_eq!(merged.count(), manual.count());

    // And the merged p99 sits within one bucket of the exact
    // rank-statistic over the concatenation.
    let mut all: Vec<f64> = per_node.into_iter().flatten().collect();
    assert_eq!(all.len() as u64, merged.count());
    assert!(!all.is_empty());
    all.sort_by(f64::total_cmp);
    for q in [0.5, 0.99, 0.999] {
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * all.len() as f64).ceil() as usize).max(1) - 1;
        let exact = all[rank.min(all.len() - 1)];
        let sketched = merged.quantile(q);
        let drift = geometry::bucket_index(exact).abs_diff(geometry::bucket_index(sketched));
        assert!(
            drift <= 1,
            "q{q}: sketch {sketched} vs exact {exact} ({drift} buckets apart)"
        );
    }
}

/// A lease expiry storm dumps every node's flight recorder plus a
/// correlating fleet manifest, and the bundle reads back with the
/// per-node provenance intact.
#[test]
fn fleet_postmortem_bundle_correlates_all_nodes() {
    let dir = std::env::temp_dir().join(format!("mzd_fleet_obs_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let settings = RecorderSettings::new(&dir);
    let mut fleet = failing_fleet(23, |f| f.attach_recorders(&settings));
    run_rounds(&mut fleet, 10);

    let dumps = fleet.fleet_dumps();
    assert_eq!(dumps.len(), 1, "exactly one fleet incident: {dumps:?}");
    assert_eq!(dumps[0].0, DumpTrigger::LeaseExpiryStorm);

    let bundle = read_fleet_bundle(&dir).expect("fleet bundle reads back");
    assert_eq!(bundle.trigger, "lease.expiry_storm");
    assert_eq!(bundle.entries.len(), 3);
    for (node, loaded) in bundle.nodes.iter().enumerate() {
        let loaded = loaded.as_ref().expect("every node dumped");
        assert_eq!(
            loaded.config_value("node"),
            Some(node.to_string().as_str()),
            "node label survives the round trip"
        );
    }
    // A later manual trigger must not overwrite the incident.
    assert!(fleet.trigger_fleet_dump(DumpTrigger::Manual).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// The whole observability surface is deterministic: rerunning the
/// same fleet yields byte-identical trace JSON and Prometheus text.
#[test]
fn fleet_observability_output_is_byte_identical_across_reruns() {
    let run = || {
        let mut fleet = failing_fleet(31, |f| f.enable_tracing().unwrap());
        run_rounds(&mut fleet, 10);
        (
            fleet.trace_chrome_json().expect("tracing enabled"),
            fleet.sketches().render_prom(),
        )
    };
    let (trace_a, prom_a) = run();
    let (trace_b, prom_b) = run();
    assert_eq!(trace_a, trace_b);
    assert_eq!(prom_a, prom_b);
    assert!(prom_a.contains("mzd_cluster_node_service_time_bucket{node=\"0\""));
    assert!(prom_a.contains("mzd_cluster_node_service_time_fleet{quantile=\"0.99\"}"));
}
