//! End-to-end server scenarios: admission, striping, play-out, glitch
//! accounting and buffer tracking across `mzd-server`, `mzd-sim`,
//! `mzd-core` and `mzd-workload` together.

use mzd_server::{AdmissionDecision, QualityTarget, ServerConfig, VideoServer};
use mzd_workload::{ObjectCatalog, ObjectSpec, SizeDistribution};

fn short_object(name: &str, rounds: u32) -> ObjectSpec {
    ObjectSpec::new(name, SizeDistribution::paper_default(), rounds).expect("valid object")
}

#[test]
fn full_house_plays_out_within_the_guarantee() {
    // Fill a 2-disk server to its admission limit, play 600 rounds, and
    // verify the realized per-stream glitch rate respects the target
    // (<= 1% of rounds with overwhelming probability).
    let cfg = ServerConfig::paper_reference(2).expect("valid config");
    let mut server = VideoServer::new(cfg, 1).expect("valid server");
    while server.open_stream(short_object("movie", 600)).is_ok() {}
    let n = server.active_streams();
    assert_eq!(n, 2 * 28, "expected the paper's per-disk limit of 28");

    for _ in 0..600 {
        server.run_round();
    }
    assert_eq!(server.active_streams(), 0, "all streams should finish");
    let completed = server.completed_streams();
    assert_eq!(completed.len(), n);

    // Quality audit: streams over the 1% glitch budget should be rare
    // (the guarantee says < 1% of streams at the admitted load).
    let over_budget = completed
        .iter()
        .filter(|c| c.glitches > 6) // 1% of 600 rounds
        .count();
    assert!(
        over_budget <= 2,
        "{over_budget} of {n} streams exceeded the glitch budget"
    );
}

#[test]
fn rejected_clients_wait_and_get_in_after_completions() {
    let cfg = ServerConfig::paper_reference(1).expect("valid config");
    let mut server = VideoServer::new(cfg, 2).expect("valid server");
    // Fill up with short objects.
    while server.open_stream(short_object("a", 10)).is_ok() {}
    assert!(matches!(
        server.open_stream(short_object("b", 10)),
        Err(AdmissionDecision::Reject { .. })
    ));
    assert_eq!(server.rejected_streams(), 2); // the fill loop's last + b
                                              // After the short objects finish, admission opens again.
    for _ in 0..10 {
        server.run_round();
    }
    assert_eq!(server.active_streams(), 0);
    assert!(server.open_stream(short_object("c", 10)).is_ok());
}

#[test]
fn heterogeneous_catalog_round_trip() {
    let catalog = ObjectCatalog::demo().expect("valid catalog");
    let (mean, var) = catalog.pooled_moments().expect("non-empty");
    let mut cfg = ServerConfig::paper_reference(2).expect("valid config");
    cfg.admission_size_mean = mean;
    cfg.admission_size_variance = var;
    cfg.target = QualityTarget::RoundOverrun { delta: 0.01 };
    let mut server = VideoServer::new(cfg, 3).expect("valid server");
    // The heavier pooled workload must admit fewer streams per disk than
    // the paper's 200 KB reference.
    let limit = server.admission().per_disk_limit();
    assert!(limit < 26, "pooled demo workload admitted {limit} per disk");
    assert!(limit > 2, "limit {limit} collapsed");

    // Open one of each object (shortened) and play 50 rounds.
    for o in catalog.objects() {
        let short =
            ObjectSpec::new(o.name.clone(), o.sizes.clone(), o.rounds.min(50)).expect("valid");
        server.open_stream(short).expect("admits 3 streams");
    }
    for _ in 0..50 {
        server.run_round();
    }
    assert_eq!(server.completed_streams().len(), 3);
    for c in server.completed_streams() {
        assert!(c.buffer_high_water > 0.0);
        assert!(c.rounds_played == 50);
    }
}

#[test]
fn per_disk_load_stays_balanced_under_churn() {
    let cfg = ServerConfig::paper_reference(4).expect("valid config");
    let mut server = VideoServer::new(cfg, 4).expect("valid server");
    let mut opened = 0u32;
    for round in 0..200u32 {
        if round % 2 == 0 && server.open_stream(short_object("x", 37)).is_ok() {
            opened += 1;
        }
        server.run_round();
        let load = server.per_disk_load();
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(
            max - min <= 2,
            "round {round}: unbalanced load {load:?} after {opened} opens"
        );
    }
}

#[test]
fn glitch_rate_scales_with_admission_threshold() {
    // A server run past the paper's limit (loose target) must glitch more
    // than one at the limit — the stochastic guarantee is doing real work.
    let mut strict_cfg = ServerConfig::paper_reference(1).expect("valid");
    strict_cfg.target = QualityTarget::RoundOverrun { delta: 0.01 };
    let mut loose_cfg = ServerConfig::paper_reference(1).expect("valid");
    loose_cfg.target = QualityTarget::RoundOverrun { delta: 0.9 };

    let mut strict = VideoServer::new(strict_cfg, 5).expect("valid");
    let mut loose = VideoServer::new(loose_cfg, 5).expect("valid");
    while strict.open_stream(short_object("s", 400)).is_ok() {}
    while loose.open_stream(short_object("l", 400)).is_ok() {}
    assert!(loose.active_streams() > strict.active_streams());

    let strict_glitches = strict.run_rounds(400);
    let loose_glitches = loose.run_rounds(400);
    let strict_rate = strict_glitches as f64 / (strict.completed_streams().len() as f64 * 400.0);
    let loose_rate = loose_glitches as f64 / (loose.completed_streams().len() as f64 * 400.0);
    assert!(
        loose_rate > 10.0 * strict_rate.max(1e-6),
        "loose {loose_rate} vs strict {strict_rate}"
    );
    assert!(strict_rate < 0.01, "strict rate {strict_rate} over budget");
}
