//! End-to-end SLO monitoring scenarios (the acceptance criteria of the
//! mzd-slo subsystem):
//!
//! 1. **Drift detection** — a zone-skewed placement injected mid-run
//!    must raise `slo.drift` within 512 rounds of the skew onset, while
//!    an unskewed 4096-round control run raises nothing.
//! 2. **Burn-rate-gated admission** — a fast-burn `slo.alert` freezes
//!    cache-aware over-admission (the effective limit returns to the
//!    analytic `N_max`) until the alert clears.

use mzd_cache::CachePolicy;
use mzd_server::{CacheSettings, ServerConfig, SloSettings, StreamHandle, VideoServer};
use mzd_sim::{run_drift_scenario, DriftScenarioConfig};
use mzd_slo::BurnConfig;
use mzd_workload::{ObjectSpec, SizeDistribution};

const SKEW_AT: u64 = 256;

#[test]
fn drift_checker_fires_within_512_rounds_of_zone_skew() {
    let report = run_drift_scenario(
        &DriftScenarioConfig::paper_default(SKEW_AT + 512, Some(SKEW_AT)),
        42,
    )
    .expect("valid scenario");
    let fired = report
        .drift_round
        .expect("inner-zone skew must raise slo.drift");
    assert!(
        fired >= SKEW_AT,
        "drift raised at round {fired}, before the skew at {SKEW_AT}"
    );
    assert!(
        fired < SKEW_AT + 512,
        "drift raised at round {fired} — more than 512 rounds after the skew"
    );
    assert!(report.drift_active, "skew persists, so must the alert");
    // Skewed placement pushes roughly half the rounds past the model's
    // 95% quantile — an order of magnitude over the nominal 5%.
    assert!(
        report.final_tail_exceedance > 0.3,
        "a fully skewed window should sit in the model's tail, got {}",
        report.final_tail_exceedance
    );
}

#[test]
fn unskewed_control_run_never_drifts_over_4096_rounds() {
    let report = run_drift_scenario(&DriftScenarioConfig::paper_default(4096, None), 42)
        .expect("valid scenario");
    assert_eq!(
        report.drifts_raised, 0,
        "control run raised drift (ks {}, tail exceedance {})",
        report.final_ks, report.final_tail_exceedance
    );
    assert!(report.drift_round.is_none());
    assert!(!report.drift_active);
    // The analytic model is conservative (worst-case seeks), so the
    // observed tail mass stays below the nominal 5%.
    assert!(
        report.final_tail_exceedance < 0.1,
        "got {}",
        report.final_tail_exceedance
    );
}

/// One stored hot title: lockstep readers coalesce on its fragments, so
/// the measured disk-avoidance ratio climbs quickly and cache-aware
/// admission inflates far past the analytic limit.
fn hot_object() -> ObjectSpec {
    ObjectSpec::new("hot", SizeDistribution::paper_default(), 5_000)
        .expect("valid object")
        .with_content_id(1)
}

/// A heavyweight live stream: 4x the paper's mean fragment size and no
/// content id, so the cache cannot absorb any of its load.
fn heavy_object(i: usize) -> ObjectSpec {
    let sizes = SizeDistribution::gamma(800_000.0, 200_000.0 * 200_000.0).expect("valid sizes");
    ObjectSpec::new(format!("heavy-{i}"), sizes, 2_000).expect("valid object")
}

#[test]
fn fast_burn_alert_freezes_cache_aware_over_admission_until_it_clears() {
    let mut cfg = ServerConfig::paper_reference(1).expect("valid config");
    cfg.cache = Some(CacheSettings {
        capacity_bytes: 2.4e8,
        policy: CachePolicy::Lru,
        admission_safety: Some(0.2),
    });
    let target = cfg.target;
    let mut server = VideoServer::new(cfg, 13).expect("valid server");
    let base = server.admission().per_disk_limit();
    assert_eq!(base, 28, "paper's cacheless per-disk limit");

    // Short windows so raise and clear both happen in test time; same
    // budget and factors as the production defaults.
    let mut settings = SloSettings::for_target(target);
    settings.burn = BurnConfig {
        fast_window: 32,
        slow_window: 128,
        long_window: 256,
        hysteresis: 32,
        ..settings.burn
    };
    settings.conformance = None; // drift is covered by the sim scenario
    server.enable_slo(settings).expect("slo enables");

    // Phase 1 — warm up: 28 lockstep readers of one hot title. All but
    // one lookup per round coalesces, so the measured disk-avoidance
    // ratio climbs and the effective limit inflates past N_max.
    let mut hot: Vec<StreamHandle> = (0..base)
        .map(|_| server.open_stream(hot_object()).expect("base load admits"))
        .collect();
    let mut inflated = 0;
    for _ in 0..400 {
        server.run_round();
        inflated = server.admission().effective_per_disk_limit();
        if inflated > base + 10 {
            break;
        }
    }
    assert!(
        inflated > base + 10,
        "cache-aware admission never inflated (effective {inflated})"
    );
    let status = server.slo_status().expect("slo enabled");
    assert!(!status.alert_active, "warmup must not burn the budget");
    assert!(!status.over_admission_frozen);

    // Phase 2 — glitch storm: swap half the hot readers for heavyweight
    // uncachable streams. The inflated limit admits them all, and the
    // disk drowns: a fast burn must raise, and raising must freeze the
    // effective limit back to the analytic N_max.
    for handle in hot.drain(..14) {
        server.close_stream(handle).expect("hot stream closes");
    }
    let heavies: Vec<StreamHandle> = (0..24)
        .map(|i| {
            server
                .open_stream(heavy_object(i))
                .expect("inflated limit admits the heavy cohort")
        })
        .collect();
    let pre_storm = server.admission().effective_per_disk_limit();
    assert!(pre_storm > base, "storm must start over-admitted");

    let mut raised_after = None;
    for round in 0..160 {
        server.run_round();
        let status = server.slo_status().expect("slo enabled");
        if status.alert_active {
            raised_after = Some(round);
            break;
        }
    }
    let raised_after = raised_after.expect("a sustained glitch storm must raise slo.alert");
    let status = server.slo_status().expect("slo enabled");
    assert!(status.over_admission_frozen, "alert must freeze admission");
    assert_eq!(
        server.admission().effective_per_disk_limit(),
        base,
        "frozen over-admission must fall back to the analytic N_max"
    );
    assert_eq!(status.alerts_raised, 1);
    assert!(
        status.burn_fast >= 6.0,
        "raise implies fast burn >= raise factor, got {}",
        status.burn_fast
    );

    // While frozen, new streams are gated by the analytic limit: the
    // server is already over it, so nothing further is admitted.
    assert!(
        server.open_stream(hot_object()).is_err(),
        "frozen server is over the analytic limit and must reject"
    );

    // Phase 3 — recovery: drop the heavy cohort. Glitches stop, the
    // fast window drains, and after the hysteresis period the alert
    // clears and over-admission thaws.
    for handle in heavies {
        server.close_stream(handle).expect("heavy stream closes");
    }
    let mut cleared_after = None;
    for round in 0..260 {
        server.run_round();
        let status = server.slo_status().expect("slo enabled");
        if !status.alert_active {
            cleared_after = Some(round);
            break;
        }
    }
    let cleared_after = cleared_after.expect("a quiet server must clear the alert");
    let status = server.slo_status().expect("slo enabled");
    assert!(!status.over_admission_frozen, "clearing must thaw");
    assert!(
        server.admission().effective_per_disk_limit() >= base,
        "thawed limit can never sit below the analytic N_max"
    );
    assert_eq!(status.alerts_raised, 1, "no flapping on the way down");
    assert!(
        cleared_after >= 32,
        "clear before the hysteresis period is impossible, got {cleared_after}"
    );
    // Sanity on the storm phase: detection was prompt (well within the
    // slow window once the fast window filled with storm rounds).
    assert!(raised_after <= 128, "raise took {raised_after} rounds");
}
