//! End-to-end reproduction of every number the paper states in prose —
//! the worked examples of §3.1, §3.2, §3.3, the Table 2 analytic column,
//! and the eq. 4.1 worst-case limits — through the public API only.

use mzd_core::{GuaranteeModel, RoundService, TransferTimeModel, WorstCaseRate};
use mzd_disk::{oyang, SeekCurve};

fn paper_model() -> GuaranteeModel {
    GuaranteeModel::paper_reference().expect("reference model")
}

fn viking_seek_curve() -> SeekCurve {
    SeekCurve::paper_form(1.867e-3, 1.315e-4, 3.8635e-3, 2.1e-6, 1344.0).expect("valid curve")
}

#[test]
fn section_31_seek_constant() {
    // "For this disk and N = 27, we obtain SEEK = 0.10932 seconds."
    let seek = oyang::seek_bound(&viking_seek_curve(), 6720, 27);
    assert!((seek - 0.10932).abs() < 5e-6, "SEEK = {seek}");
}

#[test]
fn section_31_p_late_values() {
    // "the derived upper bound for p_late is approximately 0.0103" (N=27)
    // "For N=26 we obtain p_late ~ 0.00225".
    let transfer = TransferTimeModel::from_moments(0.02174, 0.00011815).expect("valid");
    for (n, expected, tol) in [(27u32, 0.0103, 0.0015), (26, 0.00225, 0.0006)] {
        let seek = oyang::seek_bound(&viking_seek_curve(), 6720, n);
        let svc = RoundService::new(seek, 0.00834, transfer, n).expect("valid");
        let p = svc.p_late_bound(1.0).probability;
        assert!(
            (p - expected).abs() < tol,
            "N = {n}: p_late = {p}, paper {expected}"
        );
    }
}

#[test]
fn section_31_n_max_at_99_percent() {
    // "If our goal is to guarantee ... at least 0.99, then ... N=26".
    let transfer = TransferTimeModel::from_moments(0.02174, 0.00011815).expect("valid");
    let curve = viking_seek_curve();
    let n_max = mzd_core::admission::n_max(
        |n| {
            let seek = oyang::seek_bound(&curve, 6720, n);
            RoundService::new(seek, 0.00834, transfer, n)
                .expect("valid")
                .p_late_bound(1.0)
                .probability
        },
        0.01,
    );
    assert_eq!(n_max, 26);
}

#[test]
fn section_32_multi_zone_p_late() {
    // "for ... N = 26, the probability p_late ... is at most 0.00324.
    //  Setting N = 27 ... 0.0133."
    let m = paper_model();
    let p26 = m.p_late_bound(26, 1.0).expect("valid");
    let p27 = m.p_late_bound(27, 1.0).expect("valid");
    assert!((p26 - 0.00324).abs() < 0.001, "p26 = {p26}");
    assert!((p27 - 0.0133).abs() < 0.004, "p27 = {p27}");
    // "N = 26 is the maximum admissible number of concurrent streams."
    assert_eq!(m.n_max_late(1.0, 0.01).expect("valid"), 26);
}

#[test]
fn section_33_glitch_guarantee() {
    // "N = 28 ... M = 1200 rounds, the probability that an individual
    //  stream suffers more than 12 glitches is at most 0.14e-3."
    let m = paper_model();
    let p = m.p_error_bound(28, 1.0, 1200, 12).expect("valid");
    // Our discrete zone moments differ slightly from the paper's
    // continuous ones; accept the same order of magnitude.
    assert!(p < 1e-3, "p_error(28) = {p}");
    assert!(p > 1e-5, "p_error(28) = {p}");
}

#[test]
fn section_4_table_2_analytic_column() {
    // Table 2 analytic p_error: 0.00014 / 0.318 / 1 / 1 / 1 for N=28..32.
    let m = paper_model();
    let p28 = m.p_error_bound(28, 1.0, 1200, 12).expect("valid");
    let p29 = m.p_error_bound(29, 1.0, 1200, 12).expect("valid");
    assert!(p28 < 1e-3);
    assert!(p29 > 0.15 && p29 < 0.6, "p29 = {p29}");
    for n in [30u32, 31, 32] {
        let p = m.p_error_bound(n, 1.0, 1200, 12).expect("valid");
        assert!(p > 0.9, "p_error({n}) = {p}");
    }
}

#[test]
fn section_4_analytic_n_max_error_is_28() {
    // "The analytic bound according to (3.3.6) would be 28 concurrent
    //  streams."
    assert_eq!(
        paper_model()
            .n_max_error(1.0, 1200, 12, 0.01)
            .expect("valid"),
        28
    );
}

#[test]
fn section_4_worst_case_limits() {
    // "we obtain N_max^wc = 10" and "the number of concurrent streams
    //  would be limited to N_max^wc = 14".
    let m = paper_model();
    assert_eq!(
        m.n_max_worst_case(1.0, 0.99, WorstCaseRate::Innermost)
            .expect("valid"),
        10
    );
    assert_eq!(
        m.n_max_worst_case(1.0, 0.95, WorstCaseRate::MidRange)
            .expect("valid"),
        14
    );
}

#[test]
fn section_4_worst_case_component_times() {
    // "T_rot^max = 8.34ms, T_seek^max = 18ms, and T_trans^max = 71.7ms"
    // and the optimistic variant "T_trans^max would be 41.9ms".
    let disk = mzd_disk::profiles::quantum_viking_2_1()
        .build()
        .expect("valid");
    let sizes = mzd_workload::SizeDistribution::paper_default();
    let a = mzd_core::worstcase::worst_case_inputs(&disk, &sizes, 0.99, WorstCaseRate::Innermost)
        .expect("valid");
    assert!((a.t_rot_max - 0.00834).abs() < 1e-12);
    assert!((a.t_seek_max - 0.018).abs() < 2e-4, "{}", a.t_seek_max);
    assert!((a.t_trans_max - 0.0717).abs() < 5e-4, "{}", a.t_trans_max);
    let b = mzd_core::worstcase::worst_case_inputs(&disk, &sizes, 0.95, WorstCaseRate::MidRange)
        .expect("valid");
    assert!((b.t_trans_max - 0.0419).abs() < 5e-4, "{}", b.t_trans_max);
}

#[test]
fn section_32_gamma_approximation_quality() {
    // "the relative error of the approximation is less than 2 percent in
    //  the most relevant range" — reproduced on the bulk of the mass and
    //  in total-variation distance (see EXPERIMENTS.md E7).
    let disk = mzd_disk::profiles::quantum_viking_2_1()
        .build()
        .expect("valid");
    let f = mzd_core::TransferTimeDensity::continuous(&disk, 200_000.0, 1e10).expect("valid");
    assert!(f.max_relative_error(0.010, 0.055, 64).expect("valid") < 0.04);
    assert!(f.total_variation_error(0.25).expect("valid") < 0.02);
}
