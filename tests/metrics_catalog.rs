//! Metrics-catalog drift gate: `docs/observability.md` must document
//! every metric the workspace registers, and every `mzd_`-prefixed
//! exposition name the docs mention must map back to a registered
//! metric. Without this gate the catalog and the code drift apart
//! silently — a dashboard built from the docs then scrapes nothing.
//!
//! Registered names are recovered from the library sources themselves:
//! `.counter("…")` / `.gauge("…")` / `.histogram("…")` literals (and
//! their `execution_`-scoped variants) plus
//! the `SKETCH_*` name constants of the fleet observability plane.
//! Test modules sit at the bottom of each file by workspace
//! convention, so everything after the first `#[cfg(test)]` is
//! skipped, as are comment/doc lines.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // This test is registered by crates/integration/Cargo.toml.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/integration sits two levels below the root")
        .to_path_buf()
}

fn is_library_source(path: &Path) -> bool {
    if path.extension().and_then(|e| e.to_str()) != Some("rs") {
        return false;
    }
    !path
        .components()
        .any(|c| c.as_os_str() == "bin" || c.as_os_str() == "tests" || c.as_os_str() == "benches")
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            collect_sources(&path, out);
        } else if is_library_source(&path) {
            out.push(path);
        }
    }
}

/// Pull every metric-name string literal following one of `markers`
/// out of `text`, skipping comments and anything after the first
/// `#[cfg(test)]`.
fn extract_names(text: &str, names: &mut BTreeSet<String>) {
    const MARKERS: [&str; 8] = [
        ".counter(\"",
        ".gauge(\"",
        ".histogram(\"",
        ".execution_counter(\"",
        ".execution_histogram(\"",
        // Span timers register their wall-clock histogram through the
        // macro; the name literal is the macro argument.
        "span!(\"",
        // The fleet sketch series are registered through named
        // constants, not direct calls; the constants hold the names.
        "const SKETCH_SERVICE_TIME: &str = \"",
        "const SKETCH_QUEUE_DEPTH: &str = \"",
    ];
    let body = text.split("#[cfg(test)]").next().unwrap_or(text);
    for line in body.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || trimmed.starts_with('*') {
            continue;
        }
        for marker in MARKERS {
            for (at, _) in line.match_indices(marker) {
                let rest = &line[at + marker.len()..];
                let Some(end) = rest.find('"') else { continue };
                let name = &rest[..end];
                // Only dotted names are catalog entries; single-word
                // literals are local examples, not metrics.
                if name.contains('.')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c))
                {
                    names.insert(name.to_string());
                }
            }
        }
    }
}

fn registered_names() -> BTreeSet<String> {
    let crates_dir = workspace_root().join("crates");
    assert!(crates_dir.is_dir(), "missing {}", crates_dir.display());
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&crates_dir).expect("readable crates dir") {
        let src = entry.expect("readable dir entry").path().join("src");
        if src.is_dir() {
            collect_sources(&src, &mut sources);
        }
    }
    let mut names = BTreeSet::new();
    for path in &sources {
        let text = std::fs::read_to_string(path).expect("readable source file");
        extract_names(&text, &mut names);
    }
    assert!(
        names.len() >= 60,
        "suspiciously few registered metrics found ({}) — extraction misconfigured?\n{names:?}",
        names.len()
    );
    names
}

fn catalog_text() -> String {
    let path = workspace_root().join("docs/observability.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("readable {}: {e}", path.display()))
}

/// `sim.round.service_time` → `mzd_sim_round_service_time`, the prom
/// exposition form (mirrors `mzd_telemetry::prom::sanitize_name`).
fn exposition_name(dotted: &str) -> String {
    format!("mzd_{}", dotted.replace('.', "_"))
}

#[test]
fn every_registered_metric_is_documented() {
    let docs = catalog_text();
    let missing: Vec<String> = registered_names()
        .into_iter()
        .filter(|name| !docs.contains(name.as_str()))
        .collect();
    assert!(
        missing.is_empty(),
        "metrics registered in code but absent from docs/observability.md \
         (add them to the metric catalog):\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn every_documented_exposition_name_maps_to_a_registered_metric() {
    let docs = catalog_text();
    let registered = registered_names();
    let exposed: BTreeSet<String> = registered.iter().map(|n| exposition_name(n)).collect();

    // Every `mzd_…` token in the docs must reduce — after stripping
    // the prom series suffixes — to a registered metric's exposition
    // name. `mzd_t` / `mzd_empty_series` style doc-test names never
    // appear in the docs, so any miss is a stale or misspelled entry.
    let mut stale = Vec::new();
    let bytes = docs.as_bytes();
    let mut i = 0;
    while let Some(at) = docs[i..].find("mzd_") {
        let start = i + at;
        let mut end = start;
        while end < docs.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let token = &docs[start..end];
        i = end;
        // Wildcard mentions like `mzd_cluster_node_queue_depth_*` end
        // the token at a dangling underscore.
        let mut base = token.trim_end_matches('_').to_string();
        for suffix in ["_bucket", "_sum", "_count", "_total", "_fleet"] {
            if let Some(stripped) = base.strip_suffix(suffix) {
                base = stripped.to_string();
            }
        }
        // The prose fragment "`mzd_`-prefixed" yields the bare prefix.
        if base == "mzd_" || base == "mzd" {
            continue;
        }
        if !exposed.contains(&base) && !exposed.contains(token) {
            stale.push(token.to_string());
        }
    }
    assert!(
        stale.is_empty(),
        "docs/observability.md mentions exposition names no code registers:\n  {}",
        stale.join("\n  ")
    );
}
