//! Cross-crate observability pipeline: run the real simulator with a
//! capturing event sink and check that (a) every round produces exactly
//! one structured `sim.round` event that parses as JSON, (b) the global
//! registry accumulates the matching histograms/counters, and (c) a
//! seeded run is deterministic — the event stream is byte-identical
//! across replays (events carry logical round ids, not wall-clock time).

use mzd_telemetry::event::{set_sink, MemorySink, NullSink};
use mzd_telemetry::json::{parse, Value};
use std::sync::Arc;

const ROUNDS: u64 = 200;
const N: u32 = 24;
const SEED: u64 = 11;

/// The event sink is process-global; tests that swap it must not
/// overlap (the test harness runs them on separate threads).
static SINK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn sink_guard() -> std::sync::MutexGuard<'static, ()> {
    SINK_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_capture() -> Vec<String> {
    let cfg = mzd_sim::SimConfig::paper_reference().expect("valid sim");
    let sink = Arc::new(MemorySink::new());
    let previous = set_sink(sink.clone());
    let est = mzd_sim::estimate_p_late(&cfg, N, ROUNDS, SEED).expect("valid run");
    set_sink(previous);
    assert!(est.p_late >= 0.0);
    sink.lines()
}

#[test]
fn simulator_emits_one_parseable_event_per_round_and_fills_the_registry() {
    let _guard = sink_guard();
    let rounds_before = mzd_telemetry::global().counter("sim.rounds").get();
    let service_before = mzd_telemetry::global()
        .histogram("sim.round.service_time")
        .count();

    let lines = run_capture();

    let round_events: Vec<Value> = lines
        .iter()
        .map(|l| parse(l).expect("event line parses as JSON"))
        .filter(|v| v.get("event").and_then(Value::as_str) == Some("sim.round"))
        .collect();
    assert_eq!(round_events.len(), ROUNDS as usize);
    for event in &round_events {
        for key in ["round", "n", "service_time", "seek", "rot", "transfer"] {
            let value = event
                .get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("sim.round event missing `{key}`"));
            assert!(value.is_finite() && value >= 0.0, "{key} = {value}");
        }
        assert_eq!(
            event.get("n").and_then(Value::as_f64),
            Some(f64::from(N)),
            "each round serves the full stream set"
        );
    }

    // The registry saw the same rounds the sink did.
    let rounds_after = mzd_telemetry::global().counter("sim.rounds").get();
    let service_after = mzd_telemetry::global()
        .histogram("sim.round.service_time")
        .count();
    assert!(rounds_after >= rounds_before + ROUNDS);
    assert!(service_after >= service_before + ROUNDS);
    let snapshot = mzd_telemetry::global().snapshot();
    let json = parse(&snapshot.to_json()).expect("snapshot serializes to valid JSON");
    let p95 = json
        .get("histograms")
        .and_then(|h| h.get("sim.round.service_time"))
        .and_then(|h| h.get("p95"))
        .and_then(Value::as_f64)
        .expect("service-time p95 in snapshot");
    assert!(p95 > 0.0 && p95 < 10.0, "p95 = {p95}");
}

#[test]
fn seeded_replay_produces_identical_event_streams() {
    let _guard = sink_guard();
    // Deterministic observability: no wall-clock fields in events, so a
    // seeded replay is byte-identical — diffable run-to-run.
    let first = run_capture();
    let second = run_capture();
    assert_eq!(first, second);
}

#[test]
fn null_sink_suppresses_event_construction() {
    let _guard = sink_guard();
    let previous = set_sink(Arc::new(NullSink));
    let enabled = mzd_telemetry::events_enabled();
    set_sink(previous);
    assert!(
        !enabled,
        "NullSink must disable the events_enabled fast path"
    );
}
