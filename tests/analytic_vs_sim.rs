//! The Figure 1 invariant: the analytic model must be *conservative* —
//! its bounds dominate the simulated probabilities — while staying close
//! enough to be useful for admission control. Cross-crate: `mzd-core`
//! (the model) against `mzd-sim` (the detailed simulator).

use mzd_core::{GuaranteeModel, ZoneHandling};
use mzd_sim::{estimate_p_error, estimate_p_late, SimConfig};

#[test]
fn analytic_p_late_dominates_simulation_across_n() {
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let cfg = SimConfig::paper_reference().expect("valid sim");
    for n in [20u32, 24, 26, 28, 30, 32] {
        let bound = model.p_late_bound(n, 1.0).expect("valid");
        let sim = estimate_p_late(&cfg, n, 4_000, 100 + u64::from(n)).expect("valid");
        // The bound must dominate the simulated probability up to
        // statistical resolution: always above the CI's lower end, and
        // above the full CI once the sample resolves the probability
        // (>= 10 observed late rounds). With 0–2 late rounds the point
        // estimate is Poisson noise; and in the deep tail the real
        // elevator's occasional backtrack seek (absent from the idealized
        // model) can nudge the truth a hair past the bound — see the
        // steady-state slack test in mzd-sim.
        assert!(
            bound >= sim.ci.lo,
            "N = {n}: bound {bound} below simulated CI lower end {}",
            sim.ci.lo
        );
        if sim.late_rounds >= 10 {
            assert!(
                bound >= sim.ci.hi,
                "N = {n}: bound {bound} below simulated CI [{}, {}]",
                sim.ci.lo,
                sim.ci.hi
            );
        }
    }
}

#[test]
fn analytic_bound_is_not_uselessly_loose() {
    // §4: the model admits 26 where the simulated system could take 28 —
    // "minor suboptimality". Check the admission gap stays small: the
    // simulated p_late at the analytic N_max + 3 must exceed the target.
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let cfg = SimConfig::paper_reference().expect("valid sim");
    let n_max = model.n_max_late(1.0, 0.01).expect("valid");
    assert_eq!(n_max, 26);
    // At the analytic limit, the real system is comfortably within target.
    let at_limit = estimate_p_late(&cfg, n_max, 10_000, 7).expect("valid");
    assert!(at_limit.p_late < 0.01, "p_late = {}", at_limit.p_late);
    // A few streams past the limit, the real system violates the target —
    // i.e. the bound is within a handful of streams of the truth.
    let beyond = estimate_p_late(&cfg, n_max + 4, 10_000, 8).expect("valid");
    assert!(
        beyond.p_late > 0.01,
        "p_late({}) = {} still within target: bound too loose",
        n_max + 4,
        beyond.p_late
    );
}

#[test]
fn analytic_p_error_dominates_simulation() {
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let cfg = SimConfig::paper_reference().expect("valid sim");
    // Shorter windows keep the test fast: M = 300, g = 3 (same 1% rate).
    for n in [28u32, 30, 32] {
        let bound = model.p_error_bound(n, 1.0, 300, 3).expect("valid");
        let sim = estimate_p_error(&cfg, n, 300, 3, 12, 50 + u64::from(n)).expect("valid");
        assert!(
            bound >= sim.p_error - 1e-9,
            "N = {n}: bound {bound} below simulated {}",
            sim.p_error
        );
    }
}

#[test]
fn simulated_glitch_rate_matches_analytic_victim_model() {
    // §3.3 models the glitched streams of a late round as a uniformly
    // random subset. Check the *per-stream* simulated glitch probability
    // is (a) below the analytic per-round glitch bound and (b) above
    // p_late/N times a sane factor — i.e. the victim accounting wires up.
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let cfg = SimConfig::paper_reference().expect("valid sim");
    let n = 30u32;
    let sim = estimate_p_error(&cfg, n, 400, 1, 10, 33).expect("valid");
    // P[>=1 glitch in 400 rounds] per stream, analytic:
    let bound = model.p_error_bound(n, 1.0, 400, 1).expect("valid");
    assert!(bound >= sim.p_error, "bound {bound} < sim {}", sim.p_error);
    assert!(
        sim.mean_glitches > 0.0,
        "no glitches at N = 30 in 4000 rounds"
    );
}

#[test]
fn mean_rate_flattening_is_not_conservative() {
    // The ablation story: ignoring zones (single mean rate) yields a
    // bound that can *undershoot* the simulated multi-zone reality at
    // some N — exactly why §3.2 exists. We check the weaker, robust form:
    // the flattened bound is strictly below the exact bound.
    let disk = mzd_disk::profiles::quantum_viking_2_1()
        .build()
        .expect("valid");
    let exact =
        GuaranteeModel::new(disk.clone(), 200_000.0, 1e10, ZoneHandling::Discrete).expect("ok");
    let flat = GuaranteeModel::new(disk, 200_000.0, 1e10, ZoneHandling::MeanRate).expect("ok");
    for n in [26u32, 28, 30] {
        let e = exact.p_late_bound(n, 1.0).expect("valid");
        let f = flat.p_late_bound(n, 1.0).expect("valid");
        assert!(f < e, "N = {n}: flattened {f} not below exact {e}");
    }
}

#[test]
fn seek_decomposition_tracks_oyang_bound_gap() {
    // The analytic model charges every round the worst-case SEEK; the
    // simulation pays the actual sweep. Check the simulated mean seek is
    // below the bound but the same order of magnitude (so the bound's
    // conservatism is "reasonable", not wild).
    use mzd_sim::SimulationEngine;
    let cfg = SimConfig::paper_reference().expect("valid sim");
    let mut engine = SimulationEngine::new(cfg.clone(), 9).expect("valid");
    let n = 27u32;
    let acc = engine.run_window(n, 2_000);
    let bound = mzd_disk::oyang::seek_bound(cfg.disk.seek_curve(), cfg.disk.cylinders(), n);
    let mean_seek = acc.seek_time.mean();
    assert!(
        mean_seek < bound,
        "mean sweep seek {mean_seek} above bound {bound}"
    );
    assert!(
        mean_seek > 0.5 * bound,
        "mean sweep seek {mean_seek} implausibly far below bound {bound}"
    );
}

#[test]
fn exact_model_tail_brackets_simulation() {
    // The exact (Gil-Pelaez) tail of the modeled distribution should sit
    // just above the simulated system (the model's only remaining
    // conservatism is the worst-case SEEK constant) and far below the
    // Chernoff bound.
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let cfg = SimConfig::paper_reference().expect("valid sim");
    for n in [29u32, 31] {
        let exact = model.p_late_exact(n, 1.0).expect("valid");
        let bound = model.p_late_bound(n, 1.0).expect("valid");
        let sim = estimate_p_late(&cfg, n, 20_000, 400 + u64::from(n)).expect("valid");
        assert!(
            exact >= sim.ci.lo,
            "N = {n}: exact {exact} below simulated CI lower end {}",
            sim.ci.lo
        );
        assert!(
            exact < bound / 3.0,
            "N = {n}: exact {exact} not well below bound {bound}"
        );
        // And within a small factor of the simulated point estimate.
        assert!(
            exact < 3.0 * sim.p_late.max(1e-4),
            "N = {n}: exact {exact} vs simulated {}",
            sim.p_late
        );
    }
}

#[test]
fn work_ahead_buffering_absorbs_overruns() {
    // The S6 buffering discipline: one fragment of client work-ahead must
    // cut the per-stream glitch rate by an order of magnitude at N = 30.
    use mzd_sim::{WorkAheadConfig, WorkAheadSimulator};
    let base = SimConfig::paper_reference().expect("valid sim");
    let rate = |work_ahead: u32| {
        let cfg = WorkAheadConfig {
            base: base.clone(),
            work_ahead,
        };
        WorkAheadSimulator::new(cfg, 21)
            .expect("valid")
            .run(30, 6_000)
            .glitch_rate()
    };
    let bare = rate(0);
    let buffered = rate(1);
    assert!(bare > 1e-3, "baseline rate {bare} too low to compare");
    assert!(
        buffered < bare / 10.0,
        "work-ahead 1: {bare} -> {buffered}, less than 10x improvement"
    );
}
