//! Library crates must not write to stdout/stderr directly: reporting
//! belongs to binaries, and diagnostics belong to `mzd-telemetry` sinks.
//! This test walks every workspace library source file and rejects
//! `println!` / `eprintln!` / `print!` / `eprint!` invocations.
//!
//! Binary targets (`src/bin/**`, `src/main.rs`) are exempt — printing a
//! finished report is exactly their job. The vendored dependency shims
//! under `vendor/` are exempt too: the criterion and proptest harnesses
//! report to the terminal by design.

use std::path::{Path, PathBuf};

/// Macros banned from library targets. `dbg!` is stderr output too —
/// and the one most likely to slip in from a debugging session.
const BANNED: [&str; 5] = ["println!", "eprintln!", "print!", "eprint!", "dbg!"];

/// Every crate expected under `crates/`. The scan itself discovers
/// crates automatically; this list only guards the discovery — if a
/// crate is added without updating it, the test fails loudly instead of
/// silently skipping the newcomer (and vice versa for removals).
const EXPECTED_CRATES: [&str; 18] = [
    "bench",
    "cache",
    "cli",
    "cluster",
    "core",
    "disk",
    "fault",
    "health",
    "integration",
    "numerics",
    "obs",
    "par",
    "prof",
    "server",
    "sim",
    "slo",
    "telemetry",
    "workload",
];

fn workspace_root() -> PathBuf {
    // This test is registered by crates/integration/Cargo.toml.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/integration sits two levels below the root")
        .to_path_buf()
}

fn is_library_source(path: &Path) -> bool {
    if path.extension().and_then(|e| e.to_str()) != Some("rs") {
        return false;
    }
    if path.file_name().and_then(|n| n.to_str()) == Some("main.rs") {
        return false;
    }
    !path
        .components()
        .any(|c| c.as_os_str() == "bin" || c.as_os_str() == "tests" || c.as_os_str() == "benches")
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            collect_sources(&path, out);
        } else if is_library_source(&path) {
            out.push(path);
        }
    }
}

/// Lines where a banned macro may legitimately appear: inside comments
/// and doc text (where it is prose, not an invocation).
fn is_exempt_line(line: &str) -> bool {
    let trimmed = line.trim_start();
    trimmed.starts_with("//") || trimmed.starts_with("*")
}

#[test]
fn scan_covers_every_workspace_crate() {
    let crates_dir = workspace_root().join("crates");
    assert!(crates_dir.is_dir(), "missing {}", crates_dir.display());
    let mut found: Vec<String> = std::fs::read_dir(&crates_dir)
        .expect("readable crates dir")
        .map(|e| {
            e.expect("readable dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    found.sort();
    assert_eq!(
        found, EXPECTED_CRATES,
        "crates/ changed — update EXPECTED_CRATES so the print scan \
         provably covers every crate"
    );
    // Every expected crate actually contributes sources to the scan
    // (the integration crate's stub lib.rs counts).
    for name in EXPECTED_CRATES {
        let src = crates_dir.join(name).join("src");
        assert!(src.is_dir(), "crate `{name}` has no src/ to scan");
        let mut sources = Vec::new();
        collect_sources(&src, &mut sources);
        assert!(
            !sources.is_empty(),
            "crate `{name}` yields no library sources — scan misconfigured?"
        );
    }
}

#[test]
fn library_crates_do_not_print() {
    let crates_dir = workspace_root().join("crates");
    assert!(crates_dir.is_dir(), "missing {}", crates_dir.display());
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&crates_dir).expect("readable crates dir") {
        let src = entry.expect("readable dir entry").path().join("src");
        if src.is_dir() {
            collect_sources(&src, &mut sources);
        }
    }
    assert!(
        sources.len() >= 20,
        "suspiciously few library sources found ({}) — scan misconfigured?",
        sources.len()
    );

    let mut violations = Vec::new();
    for path in &sources {
        let text = std::fs::read_to_string(path).expect("readable source file");
        for (i, line) in text.lines().enumerate() {
            if is_exempt_line(line) {
                continue;
            }
            if BANNED.iter().any(|banned| line.contains(banned)) {
                violations.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "library code must route output through mzd-telemetry, not print:\n{}",
        violations.join("\n")
    );
}
