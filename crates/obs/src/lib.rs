//! Fleet-wide observability plane for the mzd workspace.
//!
//! A multi-node fleet cannot audit its composed stochastic guarantee
//! with per-node averages of averages: the p99 of a merged population
//! is not a function of per-node p99s. This crate provides the three
//! pieces the fleet path records through:
//!
//! * [`QuantileSketch`] — a *mergeable* fixed-layout quantile sketch on
//!   the exact log-bucket geometry `mzd-telemetry` histograms use
//!   ([`mzd_telemetry::geometry`]). Because the layout is a constant,
//!   merging is bucket-wise `u64` addition: **exact**, associative,
//!   commutative, and byte-stable at any `--jobs` width. The merged
//!   sketch's quantiles equal the quantiles of the concatenated
//!   per-node samples up to one bucket width (~29% relative bucket
//!   span, ≤ ~13% value error) — true fleet-level p50/p99/p999.
//! * [`LabelSet`] — a sorted label scope (`node="3"`, `disk="0"`)
//!   rendered with full Prometheus value escaping.
//! * [`NodeScope`] / [`SketchFleet`] — one labeled sketch registry per
//!   node plus the fleet aggregator that merges them and renders
//!   Prometheus text: per-node `_bucket{node="N",le="…"}` series and a
//!   fleet-level `_fleet` summary with `quantile` labels.
//!
//! Like its siblings the crate is dependency-free beyond
//! `mzd-telemetry` itself, and everything here is a pure function of
//! recorded values — no clocks, no I/O — so fleet exposition is
//! byte-identical across reruns.

#![warn(missing_docs)]

use mzd_telemetry::geometry::{bucket_index, bucket_value, BUCKET_COUNT, SLOT_COUNT};
use mzd_telemetry::prom;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A mergeable quantile sketch on the workspace's shared log-bucket
/// geometry.
///
/// Unlike [`mzd_telemetry::Histogram`] (atomic, process-global, handle
/// semantics) this is a plain value: cheap to clone, merge and compare,
/// which is what per-node scopes and fleet roll-ups need. Both types
/// index values with the same [`mzd_telemetry::geometry`] functions, so
/// a sketch and a histogram fed the same samples agree bucket for
/// bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// `[underflow, BUCKET_COUNT regular, overflow]` observation counts.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: vec![0; SLOT_COUNT],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. NaN is dropped (as the histogram does).
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge another sketch into this one: bucket-wise addition, exact
    /// by construction of the fixed layout. `merge` is associative and
    /// commutative on the bucket counts, so fleet roll-ups are
    /// independent of node visiting order.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum (+∞ when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum (−∞ when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw per-slot counts (underflow first, overflow last) — the
    /// merge invariant tests compare these directly.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Estimate the `q`-quantile (`0 ≤ q ≤ 1`). Mirrors
    /// [`mzd_telemetry::Histogram::quantile`]: rank `ceil(q·count)`
    /// located in the cumulative buckets, the bucket midpoint clamped
    /// into the observed `[min, max]`. NaN when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Cumulative `(upper_bound, count_le)` pairs in ascending bound
    /// order ending at `(+∞, count)` — the Prometheus exposition shape,
    /// identical to [`mzd_telemetry::Histogram::cumulative_buckets`].
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(BUCKET_COUNT + 1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if i == 0 {
                continue; // underflow merges into the first regular bound
            }
            out.push((mzd_telemetry::geometry::bucket_bound(i), cumulative));
        }
        out
    }
}

/// A sorted, immutable-after-build label scope.
///
/// Keys are held sorted so rendering — and therefore every exposition
/// byte — is independent of insertion order. Values may contain any
/// characters; rendering escapes the three the exposition format
/// reserves (see [`mzd_telemetry::prom::escape_label_value`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LabelSet {
    pairs: Vec<(String, String)>,
}

impl LabelSet {
    /// The empty label set (renders as no label block at all).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add or replace one label, keeping keys sorted.
    #[must_use]
    pub fn with(mut self, key: &str, value: &str) -> Self {
        match self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.pairs[i].1 = value.to_string(),
            Err(i) => self.pairs.insert(i, (key.to_string(), value.to_string())),
        }
        self
    }

    /// The sorted `(key, value)` pairs.
    #[must_use]
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Render as `{k="v",...}` (empty string when no labels), with
    /// values escaped for the exposition format.
    #[must_use]
    pub fn render(&self) -> String {
        let pairs: Vec<(&str, &str)> = self
            .pairs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        prom::render_label_set(&pairs)
    }

    /// Render with one extra trailing pair appended (how `le` joins the
    /// scope labels on `_bucket` series without cloning the set).
    #[must_use]
    pub fn render_with(&self, key: &str, value: &str) -> String {
        let mut pairs: Vec<(&str, &str)> = self
            .pairs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        pairs.push((key, value));
        prom::render_label_set(&pairs)
    }
}

/// One node's sketch registry: a label scope (`node="N"`) plus named
/// sketches, recorded into by the cluster round loop.
#[derive(Debug, Clone, Default)]
pub struct NodeScope {
    labels: LabelSet,
    sketches: BTreeMap<String, QuantileSketch>,
}

impl NodeScope {
    /// A scope under the given labels.
    #[must_use]
    pub fn new(labels: LabelSet) -> Self {
        Self {
            labels,
            sketches: BTreeMap::new(),
        }
    }

    /// This scope's labels.
    #[must_use]
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Record one observation into the named sketch (created on first
    /// use).
    pub fn record(&mut self, name: &str, value: f64) {
        self.sketches
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Pre-register a sketch so it is exposed (empty) from round zero —
    /// the same catalog-stability rule eager `fault.*` / `cluster.*`
    /// registration follows.
    pub fn declare(&mut self, name: &str) {
        self.sketches.entry(name.to_string()).or_default();
    }

    /// The named sketch, if any value was recorded or declared.
    #[must_use]
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches.get(name)
    }

    /// Sketch names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sketches.keys().map(String::as_str)
    }
}

/// The fleet aggregator: one [`NodeScope`] per node, merged roll-ups,
/// and Prometheus exposition of both.
#[derive(Debug, Clone, Default)]
pub struct SketchFleet {
    scopes: Vec<NodeScope>,
}

impl SketchFleet {
    /// A fleet of `nodes` scopes labeled `node="0"` … `node="N-1"`.
    #[must_use]
    pub fn with_nodes(nodes: u32) -> Self {
        Self {
            scopes: (0..nodes)
                .map(|i| NodeScope::new(LabelSet::new().with("node", &i.to_string())))
                .collect(),
        }
    }

    /// Number of node scopes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.scopes.len()
    }

    /// Mutable access to one node's scope.
    pub fn node_mut(&mut self, node: u32) -> &mut NodeScope {
        &mut self.scopes[node as usize]
    }

    /// One node's scope.
    #[must_use]
    pub fn node(&self, node: u32) -> &NodeScope {
        &self.scopes[node as usize]
    }

    /// Declare `name` on every node scope (eager catalog registration).
    pub fn declare_all(&mut self, name: &str) {
        for scope in &mut self.scopes {
            scope.declare(name);
        }
    }

    /// The fleet-level merge of the named sketch across all nodes, in
    /// node-index order (merge is order-independent on buckets; the
    /// fixed order also pins the f64 `sum` byte-for-byte).
    #[must_use]
    pub fn merged(&self, name: &str) -> QuantileSketch {
        let mut out = QuantileSketch::new();
        for scope in &self.scopes {
            if let Some(s) = scope.sketch(name) {
                out.merge(s);
            }
        }
        out
    }

    /// Every sketch name present on any node, sorted and deduplicated.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .scopes
            .iter()
            .flat_map(|s| s.names().map(ToString::to_string))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Render the whole fleet as Prometheus text: for each sketch name,
    /// per-node labeled histogram series (`_bucket{node="N",le="…"}`,
    /// `_sum{node="N"}`, `_count{node="N"}`) followed by a fleet-level
    /// `<name>_fleet` summary carrying `quantile="0.5|0.95|0.99|0.999"`
    /// samples of the *merged* sketch. Byte-stable: names sorted, nodes
    /// in index order, no timestamps.
    #[must_use]
    pub fn render_prom(&self) -> String {
        let mut out = String::with_capacity(4096);
        for name in self.names() {
            let n = prom::sanitize_name(&name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            for scope in &self.scopes {
                let Some(sketch) = scope.sketch(&name) else {
                    continue;
                };
                render_sketch_series(&mut out, &n, scope.labels(), sketch);
            }
            let merged = self.merged(&name);
            let _ = writeln!(out, "# TYPE {n}_fleet summary");
            for (_, q) in mzd_telemetry::QUANTILE_LABELS {
                let labels = LabelSet::new().with("quantile", &prom::format_value(q));
                let _ = writeln!(
                    out,
                    "{n}_fleet{} {}",
                    labels.render(),
                    prom::format_value(merged.quantile(q))
                );
            }
            let _ = writeln!(out, "{n}_fleet_sum {}", prom::format_value(merged.sum()));
            let _ = writeln!(out, "{n}_fleet_count {}", merged.count());
        }
        out
    }
}

/// Render one sketch as cumulative labeled `_bucket` / `_sum` /
/// `_count` exposition lines under `labels`. Empty buckets are elided
/// exactly as [`mzd_telemetry::prom::render`] elides them; the
/// mandatory `+Inf` bucket closes the series at the total count.
pub fn render_sketch_series(
    out: &mut String,
    sanitized_name: &str,
    labels: &LabelSet,
    sketch: &QuantileSketch,
) {
    let n = sanitized_name;
    let mut previous = 0u64;
    for (bound, cumulative) in sketch.cumulative_buckets() {
        if bound.is_finite() {
            if cumulative == previous {
                continue;
            }
            previous = cumulative;
            let _ = writeln!(
                out,
                "{n}_bucket{} {cumulative}",
                labels.render_with("le", &prom::format_value(bound))
            );
        }
    }
    let _ = writeln!(
        out,
        "{n}_bucket{} {}",
        labels.render_with("le", "+Inf"),
        sketch.count()
    );
    let _ = writeln!(
        out,
        "{n}_sum{} {}",
        labels.render(),
        prom::format_value(sketch.sum())
    );
    let _ = writeln!(out, "{n}_count{} {}", labels.render(), sketch.count());
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sketch_agrees_with_histogram_buckets() {
        let mut sketch = QuantileSketch::new();
        let hist = mzd_telemetry::Registry::new().histogram("t");
        for i in 1..=500 {
            let v = f64::from(i) * 1e-3;
            sketch.record(v);
            hist.record(v);
        }
        assert_eq!(sketch.cumulative_buckets(), hist.cumulative_buckets());
        for (_, q) in mzd_telemetry::QUANTILE_LABELS {
            assert_eq!(sketch.quantile(q), hist.quantile(q));
        }
    }

    #[test]
    fn empty_sketch_quantile_is_nan() {
        let s = QuantileSketch::new();
        assert!(s.quantile(0.5).is_nan());
        assert_eq!(s.count(), 0);
        // NaN observations are dropped, not binned.
        let mut s = QuantileSketch::new();
        s.record(f64::NAN);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merged_quantile_matches_concatenated_within_one_bucket() {
        // Two disjoint populations; the merged p99 must equal the p99
        // of the concatenation up to bucket resolution (~29% width).
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for i in 1..=300 {
            let low = f64::from(i) * 1e-4;
            let high = f64::from(i) * 2e-3;
            a.record(low);
            b.record(high);
            all.record(low);
            all.record(high);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.bucket_counts(), all.bucket_counts());
        for (_, q) in mzd_telemetry::QUANTILE_LABELS {
            assert_eq!(merged.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn label_sets_sort_and_escape() {
        let l = LabelSet::new().with("node", "3").with("disk", "0");
        assert_eq!(l.render(), "{disk=\"0\",node=\"3\"}");
        assert_eq!(
            l.render_with("le", "+Inf"),
            "{disk=\"0\",node=\"3\",le=\"+Inf\"}"
        );
        let l = LabelSet::new().with("zone", "a\"b\\c\nd");
        assert_eq!(l.render(), "{zone=\"a\\\"b\\\\c\\nd\"}");
        // Replacement keeps a single entry per key.
        let l = LabelSet::new().with("node", "1").with("node", "2");
        assert_eq!(l.render(), "{node=\"2\"}");
        assert_eq!(LabelSet::new().render(), "");
    }

    #[test]
    fn fleet_renders_labeled_series_and_fleet_summary() {
        let mut fleet = SketchFleet::with_nodes(2);
        for i in 1..=50 {
            fleet
                .node_mut(0)
                .record("cluster.node.service_time", f64::from(i) * 1e-3);
            fleet
                .node_mut(1)
                .record("cluster.node.service_time", f64::from(i) * 5e-3);
        }
        let text = fleet.render_prom();
        assert!(text.contains("# TYPE mzd_cluster_node_service_time histogram"));
        assert!(text.contains("_bucket{node=\"0\",le=\""), "{text}");
        assert!(
            text.contains("_bucket{node=\"1\",le=\"+Inf\"} 50"),
            "{text}"
        );
        assert!(text.contains("_sum{node=\"0\"}"), "{text}");
        assert!(text.contains("# TYPE mzd_cluster_node_service_time_fleet summary"));
        assert!(text.contains("_fleet{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("_fleet_count 100"), "{text}");
        // Determinism: rendering is a pure function of recorded values.
        assert_eq!(text, fleet.render_prom());
    }

    #[test]
    fn declared_sketches_expose_empty_series() {
        let mut fleet = SketchFleet::with_nodes(2);
        fleet.declare_all("cluster.node.queue_depth");
        let text = fleet.render_prom();
        assert!(text.contains("_bucket{node=\"0\",le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("_fleet_count 0"), "{text}");
    }

    proptest! {
        /// Merge is commutative and associative on the bucket counts —
        /// the property that makes fleet roll-ups independent of node
        /// visiting order (satellite: sketch merge proptest).
        #[test]
        fn merge_order_never_changes_buckets(
            xs in prop::collection::vec(0.0f64..10.0, 0..40),
            ys in prop::collection::vec(0.0f64..10.0, 0..40),
            zs in prop::collection::vec(0.0f64..10.0, 0..40),
        ) {
            let sketch = |vals: &[f64]| {
                let mut s = QuantileSketch::new();
                for &v in vals {
                    s.record(v);
                }
                s
            };
            let (a, b, c) = (sketch(&xs), sketch(&ys), sketch(&zs));
            // Commutativity: a+b == b+a.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
            prop_assert_eq!(ab.count(), ba.count());
            // Associativity: (a+b)+c == a+(b+c).
            let mut abc = ab.clone();
            abc.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(abc.bucket_counts(), a_bc.bucket_counts());
            // And the rendered bucket/count lines of the two merge
            // orders are byte-identical (quantiles come off the
            // buckets; min/max clamp is order-independent too). The
            // `_sum` line is excluded: f64 addition is not associative,
            // which is why the fleet always merges in node-index order.
            let buckets_only = |s: &QuantileSketch| {
                let mut out = String::new();
                let labels = LabelSet::new().with("node", "0");
                render_sketch_series(&mut out, "mzd_t", &labels, s);
                out.lines()
                    .filter(|l| !l.contains("_sum"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            prop_assert_eq!(buckets_only(&abc), buckets_only(&a_bc));
        }

        /// A merged sketch always has exactly the bucket counts of the
        /// concatenated samples.
        #[test]
        fn merge_equals_concatenation(
            xs in prop::collection::vec(1e-6f64..1e3, 0..60),
            split in 0usize..60,
        ) {
            let split = split.min(xs.len());
            let mut left = QuantileSketch::new();
            let mut right = QuantileSketch::new();
            let mut whole = QuantileSketch::new();
            for (i, &v) in xs.iter().enumerate() {
                if i < split { left.record(v); } else { right.record(v); }
                whole.record(v);
            }
            left.merge(&right);
            prop_assert_eq!(left.bucket_counts(), whole.bucket_counts());
            prop_assert_eq!(left.count(), whole.count());
            prop_assert_eq!(left.min(), whole.min());
            prop_assert_eq!(left.max(), whole.max());
        }
    }
}
