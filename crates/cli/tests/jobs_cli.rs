//! End-to-end determinism check for `--jobs`: the worker count must
//! never change what the tool reports. Runs the real `mzd` binary with
//! a replicated simulation at different `--jobs` values and demands
//! byte-identical stdout.

use std::process::Command;

fn simulate_stdout(jobs: &str) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_mzd"))
        .args([
            "simulate", "--n", "27", "--rounds", "400", "--reps", "4", "--seed", "9", "--jobs",
            jobs,
        ])
        .output()
        .expect("failed to spawn mzd");
    assert!(
        output.status.success(),
        "mzd simulate --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

#[test]
fn simulate_output_is_identical_across_job_counts() {
    let serial = simulate_stdout("1");
    assert!(
        serial.contains("4 replications"),
        "expected the replication count in the report: {serial}"
    );
    for jobs in ["2", "8"] {
        let parallel = simulate_stdout(jobs);
        assert_eq!(
            serial, parallel,
            "--jobs {jobs} changed the simulated estimate"
        );
    }
}

#[test]
fn bad_jobs_value_is_a_usage_error() {
    let output = Command::new(env!("CARGO_BIN_EXE_mzd"))
        .args(["simulate", "--n", "20", "--rounds", "50", "--jobs", "many"])
        .output()
        .expect("failed to spawn mzd");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--jobs"), "stderr: {stderr}");
}
