//! End-to-end observability test: run the real `mzd` binary with
//! `--metrics-out` / `--events-out` and check both artifacts parse and
//! carry what the docs promise — a metrics snapshot with round
//! service-time quantiles and a JSONL stream with one record per round.

use mzd_telemetry::json::{parse, Value};
use std::process::Command;

const ROUNDS: u64 = 50;

fn run_simulate(dir: &std::path::Path) -> (String, String) {
    let metrics_path = dir.join("metrics.json");
    let events_path = dir.join("events.jsonl");
    let output = Command::new(env!("CARGO_BIN_EXE_mzd"))
        .args([
            "simulate",
            "--n",
            "20",
            "--rounds",
            &ROUNDS.to_string(),
            "--seed",
            "7",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--events-out",
            events_path.to_str().unwrap(),
        ])
        .output()
        .expect("failed to spawn mzd");
    assert!(
        output.status.success(),
        "mzd simulate failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        std::fs::read_to_string(&metrics_path).expect("metrics file written"),
        std::fs::read_to_string(&events_path).expect("events file written"),
    )
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mzd-metrics-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn simulate_writes_parseable_metrics_and_one_event_per_round() {
    let dir = temp_dir("simulate");
    let (metrics_text, events_text) = run_simulate(&dir);

    // --- metrics snapshot ---
    let metrics = parse(&metrics_text).expect("metrics JSON parses");
    let counters = metrics
        .get("counters")
        .and_then(Value::as_object)
        .expect("counters object");
    let rounds = counters
        .get("sim.rounds")
        .and_then(Value::as_f64)
        .expect("sim.rounds counter");
    assert!(
        rounds >= ROUNDS as f64,
        "expected at least {ROUNDS} simulated rounds, saw {rounds}"
    );

    let histograms = metrics
        .get("histograms")
        .and_then(Value::as_object)
        .expect("histograms object");
    let service = histograms
        .get("sim.round.service_time")
        .expect("round service-time histogram");
    for key in ["count", "mean", "p50", "p95", "p99", "p999"] {
        let value = service
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("service-time histogram missing `{key}`"));
        assert!(value.is_finite() && value >= 0.0, "{key} = {value}");
    }
    let p50 = service.get("p50").and_then(Value::as_f64).unwrap();
    let p999 = service.get("p999").and_then(Value::as_f64).unwrap();
    assert!(
        p50 <= p999 && p50 > 0.0,
        "quantiles must be ordered and positive: p50 = {p50}, p999 = {p999}"
    );

    // The solver side of the run is instrumented too: `simulate` prints
    // an analytic bound alongside the estimate, so the Chernoff
    // minimization histogram must be populated.
    let chernoff = histograms
        .get("core.chernoff.iterations")
        .expect("chernoff iteration histogram");
    assert!(chernoff.get("count").and_then(Value::as_f64).unwrap() >= 1.0);

    // --- event stream ---
    let lines: Vec<&str> = events_text.lines().filter(|l| !l.is_empty()).collect();
    let round_events: Vec<Value> = lines
        .iter()
        .map(|l| parse(l).expect("each JSONL line parses"))
        .filter(|v| v.get("event").and_then(Value::as_str) == Some("sim.round"))
        .collect();
    assert_eq!(
        round_events.len(),
        ROUNDS as usize,
        "exactly one sim.round record per simulated round"
    );
    for (i, event) in round_events.iter().enumerate() {
        let round = event
            .get("round")
            .and_then(Value::as_f64)
            .expect("round id");
        assert_eq!(round as usize, i, "round ids are sequential from 0");
        let service = event
            .get("service_time")
            .and_then(Value::as_f64)
            .expect("service_time field");
        assert!(service > 0.0);
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quiet_flag_suppresses_stdout_report() {
    let output = Command::new(env!("CARGO_BIN_EXE_mzd"))
        .args([
            "simulate", "--n", "5", "--rounds", "10", "--seed", "1", "-q",
        ])
        .output()
        .expect("failed to spawn mzd");
    assert!(output.status.success());
    assert!(
        output.stdout.is_empty(),
        "-q must suppress the report, got: {}",
        String::from_utf8_lossy(&output.stdout)
    );
}

#[test]
fn verbose_flag_streams_events_to_stderr() {
    let output = Command::new(env!("CARGO_BIN_EXE_mzd"))
        .args([
            "simulate", "--n", "5", "--rounds", "10", "--seed", "1", "-v",
        ])
        .output()
        .expect("failed to spawn mzd");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("\"event\":\"sim.round\""),
        "-v must stream round events to stderr, got: {stderr}"
    );
}
