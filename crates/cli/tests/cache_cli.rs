//! Cache-flag regression tests against the real `mzd` binary.
//!
//! Two guarantees the docs make about `mzd serve`:
//!
//! 1. a run with a fragment cache exports the `cache.*` metric family
//!    in the `--metrics-out` snapshot and `server.cache` records in the
//!    `--events-out` stream;
//! 2. `--cache-bytes 0` is not "a very small cache" but the exact
//!    cacheless code path — a seeded run's event stream is byte-for-byte
//!    identical to the same run with no cache flags at all.

use mzd_telemetry::json::{parse, Value};
use std::process::Command;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mzd-cache-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_serve(extra: &[&str], metrics: Option<&str>, events: Option<&str>) -> String {
    let mut args = vec![
        "serve",
        // Objects shorter than the run: play-out completions replace
        // streams mid-run, so later readers start behind earlier ones and
        // find their fragments resident (plain hits, not just the
        // delayed hits lockstep openers coalesce into).
        "--rounds",
        "200",
        "--streams",
        "30",
        "--objects",
        "12",
        "--object-rounds",
        "60",
        "--seed",
        "11",
    ];
    args.extend_from_slice(extra);
    if let Some(path) = metrics {
        args.extend_from_slice(&["--metrics-out", path]);
    }
    if let Some(path) = events {
        args.extend_from_slice(&["--events-out", path]);
    }
    let output = Command::new(env!("CARGO_BIN_EXE_mzd"))
        .args(&args)
        .output()
        .expect("failed to spawn mzd");
    assert!(
        output.status.success(),
        "mzd serve failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("stdout is UTF-8")
}

#[test]
fn serve_with_cache_exports_cache_metric_family() {
    let dir = temp_dir("metrics");
    let metrics_path = dir.join("metrics.json");
    let events_path = dir.join("events.jsonl");
    let stdout = run_serve(
        &["--zipf", "1.0", "--cache-bytes", "2e8"],
        Some(metrics_path.to_str().unwrap()),
        Some(events_path.to_str().unwrap()),
    );
    assert!(stdout.contains("cache traffic:"), "{stdout}");

    let metrics = parse(&std::fs::read_to_string(&metrics_path).expect("metrics written"))
        .expect("metrics JSON parses");
    let counters = metrics
        .get("counters")
        .and_then(Value::as_object)
        .expect("counters object");
    for name in ["cache.hits", "cache.misses", "cache.delayed_hits"] {
        let v = counters
            .get(name)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("snapshot missing counter `{name}`"));
        assert!(v >= 0.0, "{name} = {v}");
    }
    // A Zipf(1.0) catalog against a 200 MB cache must actually hit.
    let hits = counters.get("cache.hits").and_then(Value::as_f64).unwrap();
    let misses = counters
        .get("cache.misses")
        .and_then(Value::as_f64)
        .unwrap();
    assert!(hits > 0.0, "expected cache hits, saw {hits}");
    assert!(misses > 0.0, "expected cache misses, saw {misses}");

    let gauges = metrics
        .get("gauges")
        .and_then(Value::as_object)
        .expect("gauges object");
    let occupancy = gauges
        .get("cache.occupancy_bytes")
        .and_then(Value::as_f64)
        .expect("cache.occupancy_bytes gauge");
    assert!(occupancy > 0.0, "occupancy = {occupancy}");

    let histograms = metrics
        .get("histograms")
        .and_then(Value::as_object)
        .expect("histograms object");
    let latency = histograms
        .get("cache.hit_latency_rounds")
        .expect("cache.hit_latency_rounds histogram");
    assert!(latency.get("count").and_then(Value::as_f64).unwrap() >= 1.0);

    // One server.cache record per round, carrying the running hit ratio.
    let events_text = std::fs::read_to_string(&events_path).expect("events written");
    let cache_events: Vec<Value> = events_text
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| parse(l).expect("JSONL line parses"))
        .filter(|v| v.get("event").and_then(Value::as_str) == Some("server.cache"))
        .collect();
    assert_eq!(cache_events.len(), 200, "one server.cache record per round");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_byte_cache_run_is_byte_identical_to_cacheless_run() {
    let dir = temp_dir("identity");
    let base_events = dir.join("base.jsonl");
    let zero_events = dir.join("zero.jsonl");
    let base_stdout = run_serve(
        &["--zipf", "0.8"],
        None,
        Some(base_events.to_str().unwrap()),
    );
    let zero_stdout = run_serve(
        &["--zipf", "0.8", "--cache-bytes", "0"],
        None,
        Some(zero_events.to_str().unwrap()),
    );
    assert_eq!(base_stdout, zero_stdout, "stdout reports must match");
    let base = std::fs::read(&base_events).expect("base events written");
    let zero = std::fs::read(&zero_events).expect("zero events written");
    assert!(!base.is_empty());
    assert_eq!(base, zero, "event streams must be byte-identical");

    std::fs::remove_dir_all(&dir).ok();
}
