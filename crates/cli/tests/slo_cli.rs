//! Subprocess tests for the SLO-facing CLI surface: `--trace-out`
//! Chrome trace export, quiet-mode output pinning, and the `report`
//! renderer fed by a real run's artifacts.

use mzd_telemetry::json::{parse, Value};
use std::collections::BTreeMap;
use std::process::Command;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mzd-slo-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn mzd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mzd"))
        .args(args)
        .output()
        .expect("failed to spawn mzd")
}

#[test]
fn trace_out_emits_valid_chrome_trace_json() {
    let dir = temp_dir("trace");
    let trace_path = dir.join("trace.json");
    let output = mzd(&[
        "serve",
        "--rounds",
        "12",
        "--streams",
        "6",
        "--disks",
        "2",
        "--seed",
        "7",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(
        output.status.success(),
        "mzd serve --trace-out failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("trace:"), "{stdout}");

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let doc = parse(&text).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(
        events.len() >= 40,
        "expected a real trace, got {} events",
        events.len()
    );

    // Every span is a complete event with the required Chrome fields.
    for event in events {
        assert_eq!(event.get("ph").and_then(Value::as_str), Some("X"));
        for key in ["ts", "dur", "pid", "tid"] {
            let value = event
                .get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("span missing numeric `{key}`: {event:?}"));
            assert!(value >= 0.0, "{key} = {value}");
        }
        assert!(event.get("name").and_then(Value::as_str).is_some());
        assert!(event.get("args").and_then(|a| a.get("trace")).is_some());
    }

    // Stream spans (pid 1) are causally linked: all spans of one stream
    // (tid) share a single trace id, and different streams get distinct
    // trace ids.
    let mut per_stream: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for event in events {
        if event.get("pid").and_then(Value::as_f64) == Some(1.0) {
            let tid = event.get("tid").and_then(Value::as_f64).unwrap() as u64;
            let trace = event
                .get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Value::as_f64)
                .expect("stream span carries its trace id");
            per_stream.entry(tid).or_default().push(trace);
        }
    }
    assert!(per_stream.len() >= 2, "expected spans from several streams");
    let mut roots = Vec::new();
    for (tid, traces) in &per_stream {
        let first = traces[0];
        assert!(
            traces.iter().all(|&t| t == first),
            "stream {tid} spans disagree on trace id"
        );
        roots.push(first.to_bits());
    }
    roots.sort_unstable();
    roots.dedup();
    assert_eq!(roots.len(), per_stream.len(), "streams share a trace id");
}

#[test]
fn quiet_mode_suppresses_the_report_including_the_analytic_bound_line() {
    let args = ["simulate", "--n", "16", "--rounds", "40", "--seed", "7"];
    let loud = mzd(&args);
    assert!(loud.status.success());
    let loud_stdout = String::from_utf8_lossy(&loud.stdout);
    assert!(
        loud_stdout.contains("analytic Chernoff bound"),
        "{loud_stdout}"
    );

    let mut quiet_args = args.to_vec();
    quiet_args.push("-q");
    let quiet = mzd(&quiet_args);
    assert!(quiet.status.success());
    assert!(
        quiet.stdout.is_empty(),
        "-q must print nothing on stdout, got: {}",
        String::from_utf8_lossy(&quiet.stdout)
    );

    // -q with -v: stdout stays silent; events still stream to stderr.
    quiet_args.push("-v");
    let both = mzd(&quiet_args);
    assert!(both.status.success());
    assert!(both.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&both.stderr);
    assert!(stderr.contains("\"event\":\"sim.round\""), "{stderr}");
}

#[test]
fn report_renders_from_a_real_run() {
    let dir = temp_dir("report");
    let events_path = dir.join("events.jsonl");
    let metrics_path = dir.join("metrics.json");
    let html_path = dir.join("report.html");
    let run = mzd(&[
        "serve",
        "--rounds",
        "60",
        "--streams",
        "6",
        "--disks",
        "2",
        "--seed",
        "11",
        "--slo",
        "--events-out",
        events_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "-q",
    ]);
    assert!(
        run.status.success(),
        "mzd serve --slo failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(run.stdout.is_empty(), "-q serve must stay silent");

    let report = mzd(&[
        "report",
        "--events",
        events_path.to_str().unwrap(),
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--out",
        html_path.to_str().unwrap(),
    ]);
    assert!(
        report.status.success(),
        "mzd report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );

    let html = std::fs::read_to_string(&html_path).expect("report written");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.trim_end().ends_with("</html>"));
    assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
    assert!(html.matches("<svg").count() >= 2, "expected sparklines");
    // A --slo run's stream carries per-round SLO health, charted.
    assert!(html.contains("slo.round"), "slo series missing");
    assert!(html.contains("server.round"));
    assert!(html.contains("Metrics snapshot"));
    // Self-contained: nothing fetched from anywhere.
    assert!(!html.contains("<script") && !html.contains("<link"));
    assert!(!html.contains("http://") && !html.contains("https://"));
}

#[test]
fn report_renders_fault_and_degrade_families_from_a_faulted_run() {
    let dir = temp_dir("fault-report");
    let events_path = dir.join("events.jsonl");
    let metrics_path = dir.join("metrics.json");
    let html_path = dir.join("report.html");
    let run = mzd(&[
        "serve",
        "--rounds",
        "200",
        "--streams",
        "26",
        "--seed",
        "13",
        "--fault-profile",
        "media=0.20,retries=2,timeout=0.005",
        "--degrade",
        "--jobs",
        "2",
        "--events-out",
        events_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "-q",
    ]);
    assert!(
        run.status.success(),
        "mzd serve --fault-profile failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    let report = mzd(&[
        "report",
        "--events",
        events_path.to_str().unwrap(),
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--out",
        html_path.to_str().unwrap(),
    ]);
    assert!(
        report.status.success(),
        "mzd report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );

    let html = std::fs::read_to_string(&html_path).expect("report written");
    // Regression: the report must surface the fault, degrade and par
    // metric families and the robustness narrative for a faulted run.
    for family in ["fault.*", "degrade.*", "par.*"] {
        assert!(html.contains(family), "family {family} missing from report");
    }
    assert!(
        html.contains("fault.media_errors"),
        "fault counters missing"
    );
    assert!(html.contains("degrade.rung"), "degrade gauge missing");
    assert!(
        html.contains("Faults &amp; degradation"),
        "robustness section missing"
    );
    assert!(
        html.contains("round(s) lost time to injected faults"),
        "fault-round summary missing"
    );
}
