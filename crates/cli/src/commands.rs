//! Command execution: each function renders its result as plain text
//! (returned, not printed, so it is unit-testable).

use crate::args::{Command, Parsed, USAGE};
use crate::CliError;
use mzd_core::{GuaranteeModel, WorstCaseRate, ZoneHandling};
use mzd_disk::{profiles, Disk, DiskProfile};
use mzd_sim::{estimate_p_late_par, SimConfig};
use mzd_workload::{ObjectSpec, SizeDistribution, Zipf};
use std::fmt::Write as _;

/// Execute a parsed command line, returning the text to print.
///
/// # Errors
/// [`CliError`] for usage problems or model failures.
pub fn run(parsed: &Parsed) -> Result<String, CliError> {
    // `--jobs N` caps the worker pool for every parallel phase behind
    // this command (solver scans, CDF grids, sweep points, simulation
    // replications). 0 — and the flag's absence — means "all hardware
    // threads". Scientific output is byte-identical for any value.
    let jobs = usize::try_from(parsed.u64_or("jobs", 0)?)
        .map_err(|_| CliError::Usage("--jobs is too large".into()))?;
    mzd_par::set_jobs(jobs);
    match parsed.command {
        Command::Help => Ok(format!("{USAGE}\n")),
        Command::Disks => Ok(list_disks()),
        Command::AnalyzeTrace => analyze_trace(parsed),
        Command::Nmax => nmax(parsed),
        Command::PLate => p_late(parsed),
        Command::Table => table(parsed),
        Command::Simulate => simulate(parsed),
        Command::Serve => serve(parsed),
        Command::Plan => plan(parsed),
        Command::WorstCase => worst_case(parsed),
        Command::Report => report(parsed),
        Command::Postmortem => crate::postmortem::run(parsed),
    }
}

pub(crate) fn profile_by_name(name: &str) -> Result<DiskProfile, CliError> {
    match name {
        "viking" => Ok(profiles::quantum_viking_2_1()),
        "single75" => Ok(profiles::single_zone_75kb()),
        "legacy" => Ok(profiles::legacy_single_zone()),
        "nextgen" => Ok(profiles::next_generation()),
        "synthetic2to1" => Ok(profiles::synthetic_two_to_one()),
        other => Err(CliError::Usage(format!(
            "unknown disk profile `{other}` (try `mzd disks`)"
        ))),
    }
}

fn disk_of(parsed: &Parsed) -> Result<Disk, CliError> {
    Ok(profile_by_name(parsed.str_or("disk", "viking"))?.build()?)
}

fn model_of(parsed: &Parsed) -> Result<GuaranteeModel, CliError> {
    let mean = parsed.f64_or("mean", 200_000.0)?;
    let sd = parsed.f64_or("sd", 100_000.0)?;
    Ok(GuaranteeModel::new(
        disk_of(parsed)?,
        mean,
        sd * sd,
        ZoneHandling::Discrete,
    )?)
}

fn list_disks() -> String {
    let mut out = String::from("built-in drive profiles:\n");
    for (key, p) in [
        ("viking", profiles::quantum_viking_2_1()),
        ("single75", profiles::single_zone_75kb()),
        ("legacy", profiles::legacy_single_zone()),
        ("nextgen", profiles::next_generation()),
        ("synthetic2to1", profiles::synthetic_two_to_one()),
    ] {
        let d = p.build().expect("built-in profiles are valid");
        let _ = writeln!(
            out,
            "  {key:<14} {:<36} {:>5} cyl, {:>2} zones, {:.2}-{:.2} MB/s",
            p.name,
            d.cylinders(),
            d.zone_count(),
            d.min_rate() / 1e6,
            d.max_rate() / 1e6,
        );
    }
    out
}

fn analyze_trace(parsed: &Parsed) -> Result<String, CliError> {
    let path = parsed.str_or("file", "");
    if path.is_empty() {
        return Err(CliError::Usage("analyze-trace needs --file PATH".into()));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Execution(format!("cannot read {path}: {e}")))?;
    let trace =
        mzd_workload::Trace::parse(&text).map_err(|e| CliError::Execution(e.to_string()))?;
    let delta = parsed.f64_or("delta", 0.01)?;
    let disk = disk_of(parsed)?;
    let model = GuaranteeModel::new(
        disk,
        trace.mean(),
        trace.variance().max(1.0),
        ZoneHandling::Discrete,
    )?;
    let t = trace.display_time();
    let n_max = model.n_max_late(t, delta)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {path}: {} fragments, {:.1} s of media",
        trace.len(),
        trace.duration()
    );
    let _ = writeln!(
        out,
        "  fragment size: mean {:.0} B, sd {:.0} B, peak {:.0} B, p99 {:.0} B",
        trace.mean(),
        trace.variance().sqrt(),
        trace.peak(),
        trace.quantile(0.99)
    );
    let _ = writeln!(
        out,
        "  mean bandwidth: {:.2} Mbit/s; lag-1 autocorrelation: {:.3}",
        trace.mean_bandwidth_bits() / 1e6,
        trace.lag1_autocorrelation()
    );
    if trace.lag1_autocorrelation() > 0.5 {
        let _ = writeln!(
            out,
            "  warning: strong temporal correlation — the per-stream binomial\n               guarantee (eq. 3.3.4) is optimistic for this trace; see the\n               ablate-corr experiment"
        );
    }
    let _ = writeln!(
        out,
        "  admission: N_max = {n_max} streams/disk at p_late <= {delta}          (round = display time = {t} s)"
    );
    Ok(out)
}

fn nmax(parsed: &Parsed) -> Result<String, CliError> {
    let model = model_of(parsed)?;
    let t = parsed.f64_or("round", 1.0)?;
    let mut out = String::new();
    if parsed.has("m") || parsed.has("g") || parsed.has("epsilon") {
        let m = parsed.u64_or("m", 1200)?;
        let g = parsed.u64_or("g", 12)?;
        let eps = parsed.f64_or("epsilon", 0.01)?;
        let n = model.n_max_error(t, m, g, eps)?;
        let _ = writeln!(
            out,
            "N_max = {n} streams/disk  (target: <= {g} glitches in {m} rounds \
             with probability >= {:.2}%)",
            100.0 * (1.0 - eps)
        );
    } else {
        let delta = parsed.f64_or("delta", 0.01)?;
        let n = model.n_max_late(t, delta)?;
        let _ = writeln!(
            out,
            "N_max = {n} streams/disk  (target: p_late <= {delta} per round)"
        );
    }
    Ok(out)
}

fn p_late(parsed: &Parsed) -> Result<String, CliError> {
    let model = model_of(parsed)?;
    let t = parsed.f64_or("round", 1.0)?;
    let n = u32::try_from(parsed.u64_required("n")?)
        .map_err(|_| CliError::Usage("--n is too large".into()))?;
    let bound = model.p_late_bound(n, t)?;
    let estimate = model.p_late_estimate(n, t)?;
    let svc = model.round_service(n)?;
    let mut out = String::new();
    let _ = writeln!(out, "round of {n} requests, t = {t} s:");
    let _ = writeln!(out, "  mean service time:     {:.4} s", svc.mean());
    let _ = writeln!(
        out,
        "  service-time std dev:  {:.4} s",
        svc.variance().sqrt()
    );
    let _ = writeln!(out, "  p_late (Chernoff bound):     {bound:.6}");
    let _ = writeln!(out, "  p_late (saddlepoint estimate): {estimate:.6}");
    Ok(out)
}

fn table(parsed: &Parsed) -> Result<String, CliError> {
    let model = model_of(parsed)?;
    let t = parsed.f64_or("round", 1.0)?;
    let thresholds = parsed.f64_list_or("thresholds", &[0.001, 0.005, 0.01, 0.05, 0.1])?;
    let table = model.admission_table_late(t, &thresholds)?;
    let mut out = String::from("admission lookup table (per-round overrun tolerance):\n");
    let _ = writeln!(out, "  delta      N_max");
    for (d, n) in table.rows() {
        let _ = writeln!(out, "  {d:<9} {n}");
    }
    Ok(out)
}

fn simulate(parsed: &Parsed) -> Result<String, CliError> {
    let t = parsed.f64_or("round", 1.0)?;
    let mean = parsed.f64_or("mean", 200_000.0)?;
    let sd = parsed.f64_or("sd", 100_000.0)?;
    let n = u32::try_from(parsed.u64_required("n")?)
        .map_err(|_| CliError::Usage("--n is too large".into()))?;
    let rounds = parsed.u64_or("rounds", 10_000)?;
    let seed = parsed.u64_or("seed", 42)?;
    let reps = u32::try_from(parsed.u64_or("reps", 1)?)
        .map_err(|_| CliError::Usage("--reps is too large".into()))?
        .max(1);
    let faults = match parsed.str_opt("faults") {
        None => None,
        Some(spec) => Some(
            mzd_fault::FaultConfig::parse(spec)
                .map_err(|e| CliError::Usage(format!("--faults: {e}")))?,
        ),
    };
    let cfg = SimConfig {
        disk: disk_of(parsed)?,
        sizes: SizeDistribution::gamma(mean, sd * sd)
            .map_err(|e| CliError::Execution(e.to_string()))?,
        round_length: t,
        faults,
        ..SimConfig::paper_reference()?
    };
    let est = estimate_p_late_par(&cfg, n, rounds, reps, seed)?;
    let bound = model_of(parsed)?.p_late_bound(n, t)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {rounds} rounds at N = {n}, t = {t} s (seed {seed}, {reps} replication{}):",
        if reps == 1 { "" } else { "s" }
    );
    let _ = writeln!(
        out,
        "  p_late = {:.5}  (95% CI [{:.5}, {:.5}], {} late rounds)",
        est.p_late, est.ci.lo, est.ci.hi, est.late_rounds
    );
    let _ = writeln!(
        out,
        "  service time: mean {:.4} s, max {:.4} s",
        est.mean_service_time, est.max_service_time
    );
    let _ = writeln!(out, "  analytic Chernoff bound: {bound:.5}");
    if let Some(spec) = parsed.str_opt("faults") {
        let _ = writeln!(
            out,
            "  fault profile: {spec} (bound does not price injected faults)"
        );
    }
    Ok(out)
}

#[allow(clippy::too_many_lines)]
/// Build the per-server configuration the `serve` flags describe —
/// shared by the single-node path and (as the per-node template) the
/// `--nodes N` fleet path.
fn serve_server_config(parsed: &Parsed, disks: u32) -> Result<mzd_server::ServerConfig, CliError> {
    let mean = parsed.f64_or("mean", 200_000.0)?;
    let sd = parsed.f64_or("sd", 100_000.0)?;
    let mut cfg = mzd_server::ServerConfig::paper_reference(disks)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    cfg.disk = disk_of(parsed)?;
    cfg.round_length = parsed.f64_or("round", 1.0)?;
    cfg.admission_size_mean = mean;
    cfg.admission_size_variance = sd * sd;
    if parsed.has("cache-bytes") || parsed.has("cache-policy") || parsed.has("cache-safety") {
        let policy = mzd_cache::CachePolicy::parse(parsed.str_or("cache-policy", "lru"))
            .map_err(|e| CliError::Usage(e.to_string()))?;
        let admission_safety = match parsed.str_opt("cache-safety") {
            None => None,
            Some(_) => Some(parsed.f64_or("cache-safety", 0.2)?),
        };
        cfg.cache = Some(mzd_server::CacheSettings {
            capacity_bytes: parsed.f64_or("cache-bytes", 0.0)?,
            policy,
            admission_safety,
        });
    }
    if let Some(spec) = parsed.str_opt("fault-profile") {
        cfg.faults = Some(
            mzd_fault::FaultConfig::parse(spec)
                .map_err(|e| CliError::Usage(format!("--fault-profile: {e}")))?,
        );
    }
    cfg.work_ahead = u32::try_from(parsed.u64_or("work-ahead", 0)?)
        .map_err(|_| CliError::Usage("--work-ahead is too large".into()))?;
    if parsed.flag("degrade") {
        cfg.degrade = Some(mzd_server::DegradeSettings::default());
    }
    Ok(cfg)
}

/// Build the Zipf object catalog the `serve` flags describe.
fn serve_catalog(parsed: &Parsed) -> Result<(Vec<ObjectSpec>, Zipf), CliError> {
    let objects = usize::try_from(parsed.u64_or("objects", 16)?)
        .map_err(|_| CliError::Usage("--objects is too large".into()))?;
    let object_rounds = u32::try_from(parsed.u64_or("object-rounds", 600)?)
        .map_err(|_| CliError::Usage("--object-rounds is too large".into()))?;
    let skew = parsed.f64_or("zipf", 0.0)?;
    let mean = parsed.f64_or("mean", 200_000.0)?;
    let sd = parsed.f64_or("sd", 100_000.0)?;
    let sizes =
        SizeDistribution::gamma(mean, sd * sd).map_err(|e| CliError::Execution(e.to_string()))?;
    let catalog: Vec<ObjectSpec> = (0..objects)
        .map(|i| {
            ObjectSpec::new(format!("obj-{i}"), sizes.clone(), object_rounds)
                .map(|o| o.with_content_id(i as u64 + 1))
                .map_err(|e| CliError::Execution(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    let zipf =
        Zipf::new(catalog.len(), skew).map_err(|e| CliError::Usage(format!("--zipf: {e}")))?;
    Ok((catalog, zipf))
}

fn serve(parsed: &Parsed) -> Result<String, CliError> {
    use rand::{rngs::StdRng, SeedableRng};

    let disks = u32::try_from(parsed.u64_or("disks", 1)?)
        .map_err(|_| CliError::Usage("--disks is too large".into()))?;
    let nodes = u32::try_from(parsed.u64_or("nodes", 1)?)
        .map_err(|_| CliError::Usage("--nodes is too large".into()))?;
    if nodes > 1 {
        return serve_cluster(parsed, nodes, disks);
    }
    let streams = parsed.u64_or("streams", 28)?;
    let rounds = parsed.u64_or("rounds", 1200)?;
    let seed = parsed.u64_or("seed", 42)?;
    let objects = usize::try_from(parsed.u64_or("objects", 16)?)
        .map_err(|_| CliError::Usage("--objects is too large".into()))?;
    let object_rounds = u32::try_from(parsed.u64_or("object-rounds", 600)?)
        .map_err(|_| CliError::Usage("--object-rounds is too large".into()))?;
    let skew = parsed.f64_or("zipf", 0.0)?;
    let mean = parsed.f64_or("mean", 200_000.0)?;
    let sd = parsed.f64_or("sd", 100_000.0)?;

    let cfg = serve_server_config(parsed, disks)?;
    let degrade_enabled = parsed.flag("degrade");

    let sizes =
        SizeDistribution::gamma(mean, sd * sd).map_err(|e| CliError::Execution(e.to_string()))?;
    let catalog: Vec<ObjectSpec> = (0..objects)
        .map(|i| {
            ObjectSpec::new(format!("obj-{i}"), sizes.clone(), object_rounds)
                .map(|o| o.with_content_id(i as u64 + 1))
                .map_err(|e| CliError::Execution(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    let zipf =
        Zipf::new(catalog.len(), skew).map_err(|e| CliError::Usage(format!("--zipf: {e}")))?;
    // The request-arrival RNG is deliberately separate from the server's
    // seeded RNG so admission order does not perturb fragment sampling.
    let mut arrivals = StdRng::seed_from_u64(seed ^ 0x5EED_CA7A_0A11_0C8D);

    // The degradation ladder is driven by the burn-rate alert, so
    // `--degrade` implies the SLO layer (like `--trace-out` does).
    let slo_enabled = parsed.flag("slo") || parsed.has("trace-out") || degrade_enabled;
    let target = cfg.target;
    let mut server =
        mzd_server::VideoServer::new(cfg, seed).map_err(|e| CliError::Execution(e.to_string()))?;
    if slo_enabled {
        let settings =
            mzd_server::SloSettings::for_target(target).with_tracing(parsed.has("trace-out"));
        server
            .enable_slo(settings)
            .map_err(|e| CliError::Execution(e.to_string()))?;
    }
    if let Some(dir) = parsed.str_opt("postmortem-dir") {
        let capacity = usize::try_from(parsed.u64_or("recorder-capacity", 64)?)
            .map_err(|_| CliError::Usage("--recorder-capacity is too large".into()))?;
        let mut settings = mzd_prof::RecorderSettings::new(dir);
        settings.capacity = capacity.max(1);
        // Enough provenance for `mzd postmortem` to rebuild the analytic
        // model and rerun the exact configuration.
        settings.config_echo = vec![
            ("disk".into(), parsed.str_or("disk", "viking").into()),
            ("disks".into(), disks.to_string()),
            ("mean".into(), format!("{mean}")),
            ("sd".into(), format!("{sd}")),
            ("round".into(), format!("{}", parsed.f64_or("round", 1.0)?)),
            ("seed".into(), seed.to_string()),
            ("streams".into(), streams.to_string()),
            ("rounds".into(), rounds.to_string()),
            (
                "fault_profile".into(),
                parsed.str_or("fault-profile", "").into(),
            ),
        ];
        let recorder = mzd_prof::Recorder::new(settings);
        mzd_prof::install_panic_hook(recorder.clone());
        server.attach_recorder(recorder);
    }
    let profiling = parsed.str_opt("profile-out").is_some();
    if profiling {
        mzd_prof::reset_profile();
        mzd_prof::set_profiling(true);
    }
    for _ in 0..streams {
        let object = catalog[zipf.sample(&mut arrivals)].clone();
        server.enqueue_stream(object);
    }
    let mut glitches = 0u64;
    let mut stream_rounds = 0u64;
    let mut completions = 0u64;
    for _ in 0..rounds {
        stream_rounds += server.active_streams() as u64;
        let report = server.run_round();
        glitches += report.glitched_streams.len() as u64;
        // Constant offered load: every play-out completion re-draws a
        // fresh request from the popularity law.
        for _ in &report.completed_streams {
            completions += 1;
            let object = catalog[zipf.sample(&mut arrivals)].clone();
            server.enqueue_stream(object);
        }
        // Live exposition: a scraper (or textfile collector) pointed at
        // the file sees the registry as of the latest completed round.
        if let Some(path) = parsed.str_opt("prom-out") {
            std::fs::write(path, crate::telemetry::render_prom())
                .map_err(|e| CliError::Execution(format!("cannot write {path}: {e}")))?;
        }
    }
    if profiling {
        mzd_prof::set_profiling(false);
    }
    if parsed.flag("dump-on-exit") {
        if let Some(rec) = server.recorder() {
            rec.trigger_dump(mzd_prof::DumpTrigger::Manual)
                .map_err(|e| CliError::Execution(format!("postmortem dump failed: {e}")))?;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {rounds} rounds on {disks} disk(s) (seed {seed}):"
    );
    let _ = writeln!(
        out,
        "  catalog: {objects} objects x {object_rounds} rounds, Zipf skew {skew}"
    );
    let adm = server.admission();
    if adm.is_cache_aware() {
        let _ = writeln!(
            out,
            "  admission: {} streams/disk (base {}, cache-aware)",
            adm.effective_per_disk_limit(),
            adm.per_disk_limit()
        );
    } else {
        let _ = writeln!(out, "  admission: {} streams/disk", adm.per_disk_limit());
    }
    let _ = writeln!(
        out,
        "  streams: {} active, {} waiting, {} completed play-out",
        server.active_streams(),
        server.waiting_streams(),
        completions
    );
    let glitch_rate = if stream_rounds == 0 {
        0.0
    } else {
        glitches as f64 / stream_rounds as f64
    };
    let _ = writeln!(
        out,
        "  glitches: {glitches} in {stream_rounds} stream-rounds (rate {glitch_rate:.5})"
    );
    if let Some(cache) = server.cache() {
        let stats = cache.stats();
        let _ = writeln!(
            out,
            "  cache: {} policy, {:.1} MB capacity, {:.1} MB resident ({} fragments)",
            cache.config().policy.name(),
            cache.capacity_bytes() / 1e6,
            cache.occupancy_bytes() / 1e6,
            cache.len()
        );
        let _ = writeln!(
            out,
            "  cache traffic: {} hits, {} delayed hits, {} misses ({:.1}% of lookups avoided disk)",
            stats.hits,
            stats.delayed_hits,
            stats.misses,
            100.0 * stats.disk_avoidance_ratio()
        );
        let _ = writeln!(
            out,
            "  cache churn: {} insertions, {} evictions, {} rejected fills",
            stats.insertions, stats.evictions, stats.rejected_fills
        );
    } else {
        let _ = writeln!(out, "  cache: disabled");
    }
    if let Some(spec) = parsed.str_opt("fault-profile") {
        let _ = writeln!(out, "  faults: {spec} injected");
    }
    if let Some(status) = server.degrade_status() {
        let _ = writeln!(
            out,
            "  degrade: rung {} ({} escalation(s), {} recover(y/ies), {} stream(s) shed)",
            status.rung, status.escalations, status.recoveries, status.shed_streams
        );
    }
    if let Some(status) = server.slo_status() {
        let _ = writeln!(
            out,
            "  slo: burn fast {:.2} / slow {:.2} / long {:.2}; {} alert(s), {}",
            status.burn_fast,
            status.burn_slow,
            status.burn_long,
            status.alerts_raised,
            if status.over_admission_frozen {
                "over-admission frozen"
            } else if status.alert_active {
                "alert active"
            } else {
                "healthy"
            }
        );
        let _ = writeln!(
            out,
            "  conformance: ks {:.3}, tail exceedance {:.3}, {} drift(s){}",
            status.ks_statistic,
            status.tail_exceedance,
            status.drifts_raised,
            if status.drift_active {
                " [model drift active]"
            } else {
                ""
            }
        );
        if let Some(path) = parsed.str_opt("trace-out") {
            let json = server
                .trace_chrome_json()
                .ok_or_else(|| CliError::Execution("tracing was not enabled".into()))?;
            std::fs::write(path, json)
                .map_err(|e| CliError::Execution(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "  trace: {} span(s) -> {path}", status.trace_spans);
        }
    }
    if let Some(path) = parsed.str_opt("profile-out") {
        let folded = mzd_prof::collapsed();
        std::fs::write(path, &folded)
            .map_err(|e| CliError::Execution(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(
            out,
            "  profile: {} stack(s) -> {path}",
            folded.lines().count()
        );
    }
    if let Some(rec) = server.recorder() {
        let dumps = rec.dumps();
        if dumps.is_empty() {
            let _ = writeln!(
                out,
                "  postmortem: no dump triggered ({} round(s) retained)",
                rec.len()
            );
        }
        for (trigger, path) in dumps {
            let _ = writeln!(
                out,
                "  postmortem: {} -> {}",
                trigger.as_str(),
                path.display()
            );
        }
    }
    Ok(out)
}

/// `mzd serve --nodes N`: the sharded fleet. One dispatcher, N nodes of
/// `--disks` disks, consistent-hash placement, lease-timeout failure
/// detection, and the paper guarantee composed fleet-wide.
fn serve_cluster(parsed: &Parsed, nodes: u32, disks: u32) -> Result<String, CliError> {
    use rand::{rngs::StdRng, SeedableRng};

    let rounds = parsed.u64_or("rounds", 1200)?;
    let seed = parsed.u64_or("seed", 42)?;
    let lease_rounds = u32::try_from(parsed.u64_or("lease-rounds", 3)?)
        .map_err(|_| CliError::Usage("--lease-rounds is too large".into()))?;
    let gray_node = u32::try_from(parsed.u64_or("gray-node", 0)?)
        .map_err(|_| CliError::Usage("--gray-node is too large".into()))?;
    let mut cfg = mzd_cluster::ClusterConfig::paper_reference(nodes, disks)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    cfg.node = serve_server_config(parsed, disks)?;
    cfg.lease_rounds = lease_rounds;
    cfg.gray_node = gray_node;
    let mut fleet =
        mzd_cluster::Cluster::new(cfg, seed).map_err(|e| CliError::Execution(e.to_string()))?;
    if parsed.flag("health") {
        fleet
            .enable_health(mzd_health::HealthConfig::default())
            .map_err(|e| CliError::Execution(e.to_string()))?;
    }
    let guarantee = fleet.guarantee().clone();
    // Default offered load: the composed fleet capacity — the largest
    // population the guarantee covers.
    let streams = parsed.u64_or("streams", guarantee.fleet_capacity)?;

    // Cross-node trace stitching: one root span per stream at the
    // dispatcher, adopted by every host it migrates across.
    if parsed.has("trace-out") {
        fleet
            .enable_tracing()
            .map_err(|e| CliError::Execution(e.to_string()))?;
    }
    // Correlated fleet postmortems: per-node recorders under
    // `DIR/node-{i}/` plus the fleet manifest the triggers write.
    if let Some(dir) = parsed.str_opt("postmortem-dir") {
        let capacity = usize::try_from(parsed.u64_or("recorder-capacity", 64)?)
            .map_err(|_| CliError::Usage("--recorder-capacity is too large".into()))?;
        let mut settings = mzd_prof::RecorderSettings::new(dir);
        settings.capacity = capacity.max(1);
        settings.config_echo = vec![
            ("disk".into(), parsed.str_or("disk", "viking").into()),
            ("disks".into(), disks.to_string()),
            ("nodes".into(), nodes.to_string()),
            ("lease_rounds".into(), lease_rounds.to_string()),
            (
                "mean".into(),
                format!("{}", parsed.f64_or("mean", 200_000.0)?),
            ),
            ("sd".into(), format!("{}", parsed.f64_or("sd", 100_000.0)?)),
            ("round".into(), format!("{}", parsed.f64_or("round", 1.0)?)),
            ("seed".into(), seed.to_string()),
            ("streams".into(), streams.to_string()),
            ("rounds".into(), rounds.to_string()),
            (
                "fault_profile".into(),
                parsed.str_or("fault-profile", "").into(),
            ),
        ];
        fleet.attach_recorders(&settings);
    }

    let (catalog, zipf) = serve_catalog(parsed)?;
    let mut arrivals = StdRng::seed_from_u64(seed ^ 0x5EED_CA7A_0A11_0C8D);
    let mut rejected = 0u64;
    let submit = |fleet: &mut mzd_cluster::Cluster, arrivals: &mut StdRng| {
        let object = catalog[zipf.sample(arrivals)].clone();
        match fleet.submit(object) {
            Ok(mzd_cluster::SubmitOutcome::Rejected { .. }) => 1u64,
            _ => 0,
        }
    };
    for _ in 0..streams {
        rejected += submit(&mut fleet, &mut arrivals);
    }

    let mut host_glitches = 0u64;
    let mut stream_rounds = 0u64;
    let mut failures: Vec<u64> = Vec::new();
    let mut migrated = 0u64;
    let mut late_disks = 0u64;
    for _ in 0..rounds {
        stream_rounds += fleet.active_streams() as u64;
        let report = fleet.run_round();
        host_glitches += report.glitched_streams;
        migrated += report.migrations.len() as u64;
        late_disks += u64::from(report.late_disks);
        if !report.failed_nodes.is_empty() {
            failures.push(report.round);
        }
        // Constant offered load: every completion re-draws a request.
        for _ in &report.completed {
            rejected += submit(&mut fleet, &mut arrivals);
        }
        // Live flush: cluster.* counters and gauges land in the same
        // snapshot sink per round, so a mid-run reader sees fleet
        // state, not just the final write at exit.
        if let Some(path) = parsed.str_opt("metrics-out") {
            let json = mzd_telemetry::global().snapshot().to_json();
            std::fs::write(path, json)
                .map_err(|e| CliError::Execution(format!("cannot write {path}: {e}")))?;
        }
        if let Some(path) = parsed.str_opt("prom-out") {
            // The fleet's labeled sketch series ride along as an
            // appendix to the process-global registry.
            crate::telemetry::set_prom_appendix(fleet.sketches().render_prom());
            std::fs::write(path, crate::telemetry::render_prom())
                .map_err(|e| CliError::Execution(format!("cannot write {path}: {e}")))?;
        }
    }
    // Keep the appendix current for the exit-time `--prom-out` write.
    crate::telemetry::set_prom_appendix(fleet.sketches().render_prom());
    if parsed.flag("dump-on-exit") {
        fleet.trigger_fleet_dump(mzd_prof::DumpTrigger::Manual);
    }

    let status = fleet.status();
    let over_budget = fleet
        .completed()
        .iter()
        .filter(|c| c.glitches >= guarantee.g)
        .count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {rounds} rounds on a {nodes}-node fleet ({disks} disk(s)/node, seed {seed}):"
    );
    let _ = writeln!(
        out,
        "  guarantee: n* = {}/disk (single-node cap {}), lease {} rounds \
         debits {} of g = {} glitches",
        guarantee.n_star,
        guarantee.n_max_single,
        lease_rounds,
        guarantee.outage_rounds,
        guarantee.g,
    );
    let _ = writeln!(
        out,
        "  guarantee: p_error/stream <= {:.3e}, p_error any-of-{} <= {:.3e} (budget {})",
        guarantee.p_error_stream,
        guarantee.fleet_capacity,
        guarantee.p_error_any,
        guarantee.epsilon
    );
    let _ = writeln!(
        out,
        "  fleet: capacity {} streams ({} spare node(s)); {} live node(s) at exit",
        guarantee.fleet_capacity, guarantee.spares, status.live_nodes
    );
    let _ = writeln!(
        out,
        "  streams: {} active, {} waiting, {} completed play-out, {} rejected at capacity",
        status.active_streams, status.waiting, status.completed, rejected
    );
    let glitch_rate = if stream_rounds == 0 {
        0.0
    } else {
        status.total_glitches as f64 / stream_rounds as f64
    };
    let _ = writeln!(
        out,
        "  glitches: {} host + {} outage in {} stream-rounds (rate {:.5}); {} late disk-rounds",
        host_glitches, status.outage_glitches, stream_rounds, glitch_rate, late_disks
    );
    let _ = writeln!(
        out,
        "  failures: {} node failure(s){}{}; {} stream(s) migrated",
        failures.len(),
        if failures.is_empty() {
            String::new()
        } else {
            format!(" at round(s) {failures:?}")
        },
        if fleet.config().outages.is_empty() {
            String::new()
        } else {
            format!(" ({} scripted outage(s))", fleet.config().outages.len())
        },
        migrated
    );
    let _ = writeln!(
        out,
        "  observed: {over_budget} of {} completed stream(s) exceeded the g = {} glitch budget",
        status.completed, guarantee.g
    );
    if let Some(h) = fleet.health_status() {
        let _ = writeln!(
            out,
            "  health: {} probation(s), {} ejection(s), {} readmission(s), {} clear(s); \
             {} on probation / {} ejected at exit (max suspicion {:.2})",
            h.probations,
            h.ejections,
            h.readmissions,
            h.clears,
            h.probation_nodes,
            h.ejected_nodes,
            h.max_suspicion
        );
        let _ = writeln!(
            out,
            "  health: {} hedge(s) issued, {} won ({:.4}s spare slack debited)",
            h.hedges_issued, h.hedges_won, h.hedge_slack_debited
        );
        let _ = writeln!(
            out,
            "  health: re-composed capacity {} over {} member(s) (degrade rung {}{})",
            h.recomposed.effective_capacity,
            h.recomposed.members,
            h.recomposed.degrade_rung,
            if h.recomposed.frozen {
                ", admission FROZEN"
            } else {
                ""
            }
        );
    }
    let service = fleet.sketches().merged(mzd_cluster::SKETCH_SERVICE_TIME);
    if service.count() > 0 {
        let _ = writeln!(
            out,
            "  service time: fleet p50 {:.4}s / p99 {:.4}s / p999 {:.4}s over {} disk-round(s)",
            service.quantile(0.5),
            service.quantile(0.99),
            service.quantile(0.999),
            service.count()
        );
    }
    if let Some(path) = parsed.str_opt("trace-out") {
        let json = fleet
            .trace_chrome_json()
            .ok_or_else(|| CliError::Execution("tracing was not enabled".into()))?;
        let spans = json.matches("\"ph\":\"X\"").count();
        std::fs::write(path, json)
            .map_err(|e| CliError::Execution(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "  trace: {spans} stitched span(s) -> {path}");
    }
    if parsed.has("postmortem-dir") {
        let dumps = fleet.fleet_dumps();
        if dumps.is_empty() {
            let _ = writeln!(out, "  postmortem: no fleet dump triggered");
        }
        for (trigger, path) in dumps {
            let _ = writeln!(
                out,
                "  postmortem: {} -> {}",
                trigger.as_str(),
                path.display()
            );
        }
    }
    Ok(out)
}

fn report(parsed: &Parsed) -> Result<String, CliError> {
    let events_path = parsed
        .str_opt("events")
        .ok_or_else(|| CliError::Usage("report needs --events PATH".into()))?;
    let out_path = parsed
        .str_opt("out")
        .ok_or_else(|| CliError::Usage("report needs --out PATH".into()))?;
    let events_text = std::fs::read_to_string(events_path)
        .map_err(|e| CliError::Execution(format!("cannot read {events_path}: {e}")))?;
    let metrics_text = match parsed.str_opt("metrics") {
        None => None,
        Some(path) => Some(
            std::fs::read_to_string(path)
                .map_err(|e| CliError::Execution(format!("cannot read {path}: {e}")))?,
        ),
    };
    let profile_text = match parsed.str_opt("profile") {
        None => None,
        Some(path) => Some(
            std::fs::read_to_string(path)
                .map_err(|e| CliError::Execution(format!("cannot read {path}: {e}")))?,
        ),
    };
    let html = crate::report::render(
        &events_text,
        metrics_text.as_deref(),
        profile_text.as_deref(),
        events_path,
    );
    std::fs::write(out_path, &html)
        .map_err(|e| CliError::Execution(format!("cannot write {out_path}: {e}")))?;
    Ok(format!(
        "report: {} bytes of HTML -> {out_path}\n",
        html.len()
    ))
}

fn plan(parsed: &Parsed) -> Result<String, CliError> {
    let model = model_of(parsed)?;
    let t = parsed.f64_or("round", 1.0)?;
    let m = parsed.u64_or("m", 1200)?;
    let g = parsed.u64_or("g", 12)?;
    let eps = parsed.f64_or("epsilon", 0.01)?;
    let population = u32::try_from(parsed.u64_required("population")?)
        .map_err(|_| CliError::Usage("--population is too large".into()))?;
    let per_disk = model.n_max_error(t, m, g, eps)?;
    let disks = mzd_core::planning::disks_for_population(&model, t, m, g, eps, population)?;
    let mut out = String::new();
    let _ = writeln!(out, "provisioning for {population} concurrent streams:");
    let _ = writeln!(out, "  per-disk guarantee: {per_disk} streams");
    let _ = writeln!(out, "  disks needed:       {disks}");
    let _ = writeln!(
        out,
        "  aggregate bandwidth: {:.1} Mbit/s",
        f64::from(per_disk * disks) * model.size_mean() * 8.0 / 1e6 / t
    );
    Ok(out)
}

fn worst_case(parsed: &Parsed) -> Result<String, CliError> {
    let model = model_of(parsed)?;
    let t = parsed.f64_or("round", 1.0)?;
    let pess = model.n_max_worst_case(t, 0.99, WorstCaseRate::Innermost)?;
    let opt = model.n_max_worst_case(t, 0.95, WorstCaseRate::MidRange)?;
    let stoch = model.n_max_late(t, 0.01)?;
    let mut out = String::from("deterministic worst-case admission (eq. 4.1):\n");
    let _ = writeln!(out, "  99-pct size over innermost rate: N_max^wc = {pess}");
    let _ = writeln!(out, "  95-pct size over mid rate:       N_max^wc = {opt}");
    let _ = writeln!(
        out,
        "  (stochastic guarantee at 1%:     N_max    = {stoch})"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_line(line: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = line.iter().map(ToString::to_string).collect();
        run(&parse(&args)?)
    }

    #[test]
    fn help_and_disks() {
        assert!(run_line(&["help"]).unwrap().contains("usage:"));
        let disks = run_line(&["disks"]).unwrap();
        assert!(disks.contains("viking"));
        assert!(disks.contains("Quantum Viking 2.1"));
        assert!(disks.contains("nextgen"));
    }

    #[test]
    fn nmax_defaults_reproduce_paper() {
        let out = run_line(&["nmax"]).unwrap();
        assert!(out.contains("N_max = 26"), "{out}");
        let out = run_line(&["nmax", "--m", "1200", "--g", "12", "--epsilon", "0.01"]).unwrap();
        assert!(out.contains("N_max = 28"), "{out}");
    }

    #[test]
    fn plate_reports_both_tails() {
        let out = run_line(&["plate", "--n", "27"]).unwrap();
        assert!(out.contains("Chernoff"), "{out}");
        assert!(out.contains("saddlepoint"), "{out}");
        assert!(out.contains("0.014") || out.contains("0.0144"), "{out}");
    }

    #[test]
    fn plate_requires_n() {
        assert!(matches!(run_line(&["plate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn table_rows_match_thresholds() {
        let out = run_line(&["table", "--thresholds", "0.001,0.01,0.1"]).unwrap();
        assert_eq!(out.matches('\n').count(), 5, "{out}");
        assert!(out.contains("0.001"));
    }

    #[test]
    fn simulate_small_run() {
        let out = run_line(&["simulate", "--n", "20", "--rounds", "200", "--seed", "7"]).unwrap();
        assert!(out.contains("p_late"), "{out}");
        assert!(out.contains("simulated 200 rounds"), "{out}");
    }

    #[test]
    fn serve_cacheless_and_cached() {
        let out = run_line(&["serve", "--rounds", "40", "--streams", "10", "--seed", "7"]).unwrap();
        assert!(out.contains("served 40 rounds"), "{out}");
        assert!(out.contains("cache: disabled"), "{out}");
        let out = run_line(&[
            "serve",
            "--rounds",
            "40",
            "--streams",
            "10",
            "--seed",
            "7",
            "--zipf",
            "1.0",
            "--cache-bytes",
            "5e7",
        ])
        .unwrap();
        assert!(out.contains("cache: lru policy"), "{out}");
        assert!(out.contains("cache traffic:"), "{out}");
    }

    #[test]
    fn serve_zero_byte_cache_matches_cacheless_output() {
        let base =
            run_line(&["serve", "--rounds", "60", "--streams", "12", "--seed", "3"]).unwrap();
        let zeroed = run_line(&[
            "serve",
            "--rounds",
            "60",
            "--streams",
            "12",
            "--seed",
            "3",
            "--cache-bytes",
            "0",
        ])
        .unwrap();
        // Identical up to the cache-status footer: a zero-byte cache takes
        // the exact cacheless code path.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.trim_start().starts_with("cache"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&base), strip(&zeroed));
    }

    #[test]
    fn simulate_with_faults_reports_profile_and_raises_p_late() {
        let clean = run_line(&["simulate", "--n", "26", "--rounds", "300", "--seed", "9"]).unwrap();
        let faulty = run_line(&[
            "simulate",
            "--n",
            "26",
            "--rounds",
            "300",
            "--seed",
            "9",
            "--faults",
            "media=0.05",
        ])
        .unwrap();
        assert!(faulty.contains("fault profile: media=0.05"), "{faulty}");
        let p = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.contains("p_late = "))
                .and_then(|l| l.split("p_late = ").nth(1))
                .and_then(|l| l.split_whitespace().next())
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(p(&faulty) > p(&clean), "{faulty}\n{clean}");
        assert!(matches!(
            run_line(&["simulate", "--n", "20", "--faults", "nosuchpreset"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_with_fault_profile_and_degrade() {
        let out = run_line(&[
            "serve",
            "--rounds",
            "40",
            "--streams",
            "8",
            "--seed",
            "5",
            "--fault-profile",
            "flaky",
            "--degrade",
        ])
        .unwrap();
        assert!(out.contains("faults: flaky injected"), "{out}");
        // --degrade implies --slo and reports the ladder state.
        assert!(out.contains("degrade: rung"), "{out}");
        assert!(out.contains("slo: burn fast"), "{out}");
        assert!(matches!(
            run_line(&["serve", "--rounds", "1", "--fault-profile", "media=2.0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_fleet_with_health_ejects_gray_node() {
        let line = [
            "serve",
            "--nodes",
            "8",
            "--disks",
            "1",
            "--rounds",
            "80",
            "--seed",
            "5",
            "--fault-profile",
            "graynode",
            "--gray-node",
            "2",
            "--health",
        ];
        let out = run_line(&line).unwrap();
        assert!(out.contains("health:"), "{out}");
        assert!(out.contains("re-composed capacity"), "{out}");
        // The persistently slow node is detected and ejected well within
        // 80 rounds; the default readmission delay keeps it out at exit.
        let ejections: u64 = out
            .lines()
            .find(|l| l.contains("ejection(s)"))
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|w| w.parse().ok())
            .unwrap();
        assert!(ejections >= 1, "{out}");
        assert!(out.contains("/ 1 ejected at exit"), "{out}");
        // Byte-identical on rerun.
        assert_eq!(out, run_line(&line).unwrap());
        // Without --health the report carries no health section.
        let control = run_line(&line[..line.len() - 1]).unwrap();
        assert!(!control.contains("health:"), "{control}");
    }

    #[test]
    fn serve_clean_fault_profile_matches_unfaulted_output() {
        let base =
            run_line(&["serve", "--rounds", "50", "--streams", "10", "--seed", "4"]).unwrap();
        let clean = run_line(&[
            "serve",
            "--rounds",
            "50",
            "--streams",
            "10",
            "--seed",
            "4",
            "--fault-profile",
            "clean",
        ])
        .unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.trim_start().starts_with("faults:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&base), strip(&clean));
    }

    #[test]
    fn serve_with_slo_reports_monitor_state() {
        let out = run_line(&[
            "serve",
            "--rounds",
            "30",
            "--streams",
            "6",
            "--disks",
            "2",
            "--seed",
            "7",
            "--slo",
        ])
        .unwrap();
        assert!(out.contains("slo: burn fast"), "{out}");
        assert!(out.contains("conformance: ks"), "{out}");
        // An admitted load never burns its budget in 30 rounds.
        assert!(out.contains("0 alert(s), healthy"), "{out}");
    }

    #[test]
    fn report_round_trips_from_files() {
        let dir = std::env::temp_dir().join(format!("mzd_report_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("events.jsonl");
        let html = dir.join("report.html");
        std::fs::write(
            &events,
            "{\"event\":\"sim.round\",\"round\":0,\"service_time\":0.8}\n\
             {\"event\":\"sim.round\",\"round\":1,\"service_time\":0.9}\n",
        )
        .unwrap();
        let out = run_line(&[
            "report",
            "--events",
            events.to_str().unwrap(),
            "--out",
            html.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("report:"), "{out}");
        let page = std::fs::read_to_string(&html).unwrap();
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("<svg"));
        // Missing flags / unreadable files are usage / execution errors.
        assert!(matches!(run_line(&["report"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_line(&["report", "--events", events.to_str().unwrap()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_line(&["report", "--events", "/nonexistent/e", "--out", "/tmp/r"]),
            Err(CliError::Execution(_))
        ));
    }

    #[test]
    fn serve_rejects_bad_cache_policy() {
        assert!(matches!(
            run_line(&["serve", "--rounds", "1", "--cache-policy", "mru"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_line(&["serve", "--rounds", "1", "--zipf", "-1"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn plan_for_population() {
        let out = run_line(&["plan", "--population", "500"]).unwrap();
        assert!(out.contains("disks needed:       18"), "{out}");
    }

    #[test]
    fn worstcase_defaults() {
        let out = run_line(&["worstcase"]).unwrap();
        assert!(out.contains("N_max^wc = 10"), "{out}");
        assert!(out.contains("N_max^wc = 14"), "{out}");
    }

    #[test]
    fn analyze_trace_end_to_end() {
        let dir = std::env::temp_dir().join("mzd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.trace");
        // A gamma-ish trace around the paper's moments.
        let trace = mzd_workload::Trace::new(
            (0..500)
                .map(|i| 150_000.0 + 1_000.0 * f64::from(i % 100))
                .collect(),
            1.0,
        )
        .unwrap();
        std::fs::write(&path, trace.to_text()).unwrap();
        let out = run_line(&["analyze-trace", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("500 fragments"), "{out}");
        assert!(out.contains("N_max = "), "{out}");
        // Missing/invalid files.
        assert!(matches!(
            run_line(&["analyze-trace"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_line(&["analyze-trace", "--file", "/nonexistent/x"]),
            Err(CliError::Execution(_))
        ));
    }

    #[test]
    fn other_profiles_work_end_to_end() {
        let out = run_line(&["nmax", "--disk", "nextgen"]).unwrap();
        assert!(out.contains("N_max = "), "{out}");
        let out = run_line(&[
            "nmax", "--disk", "legacy", "--mean", "100000", "--sd", "50000",
        ])
        .unwrap();
        assert!(out.contains("N_max = "), "{out}");
        assert!(matches!(
            run_line(&["nmax", "--disk", "floppy"]),
            Err(CliError::Usage(_))
        ));
    }
}
