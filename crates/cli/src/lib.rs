//! Library backing the `mzd` command-line tool.
//!
//! The heavy lifting lives in the other workspace crates; this crate is
//! argument parsing ([`args`]) and command execution with plain-text
//! output ([`commands`]). It is a library (with the thin `main.rs` on
//! top) so the parsing and the command logic are unit-testable without
//! spawning processes.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod postmortem;
pub mod report;
pub mod telemetry;

/// Errors surfaced to the CLI user.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The command line could not be parsed; the string is a user-facing
    /// message (possibly multi-line usage text).
    Usage(String),
    /// A model/simulation call failed.
    Execution(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Execution(msg) => write!(f, "error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<mzd_core::CoreError> for CliError {
    fn from(e: mzd_core::CoreError) -> Self {
        CliError::Execution(e.to_string())
    }
}

impl From<mzd_sim::SimError> for CliError {
    fn from(e: mzd_sim::SimError) -> Self {
        CliError::Execution(e.to_string())
    }
}

impl From<mzd_disk::DiskError> for CliError {
    fn from(e: mzd_disk::DiskError) -> Self {
        CliError::Execution(e.to_string())
    }
}
