//! `mzd report` — render a run's telemetry artifacts as one
//! self-contained HTML page.
//!
//! Input is the JSONL event stream written by `--events-out` and
//! (optionally) the metrics snapshot written by `--metrics-out`. Output
//! is a single HTML file with no external references: styles are inline
//! and every chart is an inline SVG sparkline, so the page renders
//! offline and can be attached to a ticket as-is.
//!
//! The renderer is deliberately tolerant: unknown event kinds are still
//! counted, malformed lines are skipped (and reported), and a missing
//! metrics file just omits that section. It never fails on content —
//! only on I/O.

use mzd_telemetry::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Numeric per-round series worth charting, as `(event, field, label)`.
/// Data-driven rather than exhaustive: kinds absent from the stream are
/// simply not rendered.
const SERIES: [(&str, &str, &str); 12] = [
    ("sim.round", "service_time", "round service time (s)"),
    ("sim.round", "seek", "seek time per round (s)"),
    ("sim.round", "transfer", "transfer time per round (s)"),
    ("sim.round", "fault", "fault-injection time per round (s)"),
    ("server.degrade", "rung", "degradation ladder rung"),
    ("server.round", "active", "active streams"),
    (
        "server.round",
        "buffer_occupancy",
        "client buffer occupancy (B)",
    ),
    ("slo.round", "burn_fast", "burn rate (fast window)"),
    ("slo.round", "burn_slow", "burn rate (slow window)"),
    ("slo.round", "ks", "conformance KS deviation"),
    ("slo.round", "tail_exceedance", "model tail exceedance"),
    ("slo.round", "glitches", "glitches per round"),
];

/// Everything extracted from the event stream.
struct Digest {
    /// Lines that parsed as JSON objects with an `event` member.
    events: u64,
    /// Lines skipped as malformed.
    skipped: u64,
    /// Count per event kind.
    kinds: BTreeMap<String, u64>,
    /// Values per charted series, keyed by `(event, field)`.
    series: BTreeMap<(&'static str, &'static str), Vec<f64>>,
    /// `slo.alert` / `slo.drift` transitions in stream order, as
    /// `(kind, transition, round, detail)`.
    transitions: Vec<(String, String, u64, String)>,
    /// `server.degrade` ladder moves in stream order, as
    /// `(action, rung, round, shed)`.
    degrades: Vec<(String, u64, u64, u64)>,
}

fn digest_events(text: &str) -> Digest {
    let mut d = Digest {
        events: 0,
        skipped: 0,
        kinds: BTreeMap::new(),
        series: BTreeMap::new(),
        transitions: Vec::new(),
        degrades: Vec::new(),
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = json::parse(line) else {
            d.skipped += 1;
            continue;
        };
        let Some(kind) = doc.get("event").and_then(Value::as_str) else {
            d.skipped += 1;
            continue;
        };
        d.events += 1;
        *d.kinds.entry(kind.to_string()).or_insert(0) += 1;
        for &(event, field, _) in &SERIES {
            if kind == event {
                if let Some(x) = doc.get(field).and_then(Value::as_f64) {
                    d.series.entry((event, field)).or_default().push(x);
                }
            }
        }
        if kind == "slo.alert" || kind == "slo.drift" {
            let transition = doc
                .get("transition")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            let round = doc.get("round").and_then(Value::as_f64).unwrap_or(-1.0);
            let detail = if kind == "slo.alert" {
                format!(
                    "burn fast {:.2} / slow {:.2}",
                    doc.get("burn_fast").and_then(Value::as_f64).unwrap_or(0.0),
                    doc.get("burn_slow").and_then(Value::as_f64).unwrap_or(0.0),
                )
            } else {
                format!(
                    "ks {:.3}, tail exceedance {:.3}",
                    doc.get("ks").and_then(Value::as_f64).unwrap_or(0.0),
                    doc.get("tail_exceedance")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0),
                )
            };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            d.transitions
                .push((kind.to_string(), transition, round.max(0.0) as u64, detail));
        }
        if kind == "server.degrade" {
            let field = |name: &str| {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let v = doc
                    .get(name)
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0)
                    .max(0.0) as u64;
                v
            };
            d.degrades.push((
                doc.get("action")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                field("rung"),
                field("round"),
                field("shed"),
            ));
        }
    }
    d
}

/// An inline SVG sparkline: fixed 240x48 viewport, polyline normalized
/// to the series range. A constant series draws as a mid-height line.
fn sparkline(values: &[f64]) -> String {
    const W: f64 = 240.0;
    const H: f64 = 48.0;
    const PAD: f64 = 3.0;
    let finite: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.len() < 2 {
        return String::from("<span class=\"dim\">(too few points)</span>");
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut points = String::new();
    let last = (finite.len() - 1) as f64;
    for (i, x) in finite.iter().enumerate() {
        let px = PAD + (W - 2.0 * PAD) * i as f64 / last;
        let py = H - PAD - (H - 2.0 * PAD) * (x - lo) / span;
        let _ = write!(points, "{px:.1},{py:.1} ");
    }
    format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\">\
         <polyline fill=\"none\" stroke=\"#2166ac\" stroke-width=\"1.2\" \
         points=\"{}\"/></svg>",
        points.trim_end()
    )
}

fn stats_row(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return String::from("&mdash;");
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = finite.iter().sum::<f64>() / finite.len() as f64;
    format!(
        "min {} &middot; mean {} &middot; max {}",
        fmt_num(lo),
        fmt_num(mean),
        fmt_num(hi)
    )
}

/// Compact human formatting: integers stay integral, small magnitudes
/// keep significant digits.
fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return String::from("&mdash;");
    }
    if x == x.trunc() && x.abs() < 1e15 {
        return format!("{x:.0}");
    }
    if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Dotted-name prefixes the report attributes to a core subsystem.
/// Anything else rolls up under "other families" — by design, so a
/// freshly added subsystem (or a misspelled name) is conspicuous
/// rather than camouflaged among the familiar rows.
const KNOWN_FAMILIES: [&str; 9] = [
    "cache", "core", "degrade", "fault", "par", "server", "sim", "slo", "solver",
];

fn metrics_section(out: &mut String, metrics_text: &str) {
    let Ok(doc) = json::parse(metrics_text) else {
        let _ = writeln!(
            out,
            "<h2>Metrics snapshot</h2><p class=\"dim\">metrics file did not parse as JSON</p>"
        );
        return;
    };
    let _ = writeln!(out, "<h2>Metrics snapshot</h2>");
    // Family roll-up first: one row per dotted prefix (`sim.*`, `par.*`,
    // `fault.*`, `degrade.*`, ...), so a reader can tell at a glance
    // which subsystems were live in this run. Prefixes outside the
    // known set (a new subsystem like `cluster.*`, or a typo) are not
    // silently blended in — they land in an explicit "other" section
    // so their novelty is visible.
    let mut known: BTreeMap<String, u64> = BTreeMap::new();
    let mut other: BTreeMap<String, u64> = BTreeMap::new();
    for section in ["counters", "gauges", "histograms"] {
        if let Some(map) = doc.get(section).and_then(Value::as_object) {
            for name in map.keys() {
                let family = name.split('.').next().unwrap_or(name);
                let bucket = if KNOWN_FAMILIES.contains(&family) {
                    &mut known
                } else {
                    &mut other
                };
                *bucket.entry(format!("{family}.*")).or_insert(0) += 1;
            }
        }
    }
    if !known.is_empty() {
        let _ = writeln!(
            out,
            "<h3>families</h3><table><tr><th>family</th><th>metrics</th></tr>"
        );
        for (family, count) in &known {
            let _ = writeln!(
                out,
                "<tr><td><code>{}</code></td><td>{count}</td></tr>",
                esc(family)
            );
        }
        let _ = writeln!(out, "</table>");
    }
    if !other.is_empty() {
        let _ = writeln!(
            out,
            "<h3>other families</h3><p class=\"dim\">prefixes outside the \
             known subsystem set</p><table><tr><th>family</th><th>metrics</th></tr>"
        );
        for (family, count) in &other {
            let _ = writeln!(
                out,
                "<tr><td><code>{}</code></td><td>{count}</td></tr>",
                esc(family)
            );
        }
        let _ = writeln!(out, "</table>");
    }
    for (section, kind) in [("counters", "count"), ("gauges", "value")] {
        if let Some(map) = doc.get(section).and_then(Value::as_object) {
            if map.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "<h3>{section}</h3><table><tr><th>name</th><th>{kind}</th></tr>"
            );
            for (name, value) in map {
                let _ = writeln!(
                    out,
                    "<tr><td><code>{}</code></td><td>{}</td></tr>",
                    esc(name),
                    fmt_num(value.as_f64().unwrap_or(f64::NAN))
                );
            }
            let _ = writeln!(out, "</table>");
        }
    }
    if let Some(map) = doc.get("histograms").and_then(Value::as_object) {
        if !map.is_empty() {
            let _ = writeln!(
                out,
                "<h3>histograms</h3><table><tr><th>name</th><th>count</th>\
                 <th>mean</th><th>p50</th><th>p95</th><th>p99</th></tr>"
            );
            for (name, h) in map {
                let cell =
                    |key: &str| fmt_num(h.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN));
                let _ = writeln!(
                    out,
                    "<tr><td><code>{}</code></td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                    esc(name),
                    cell("count"),
                    cell("mean"),
                    cell("p50"),
                    cell("p95"),
                    cell("p99"),
                );
            }
            let _ = writeln!(out, "</table>");
        }
    }
}

/// Render the report page.
///
/// `events_text` is the JSONL stream; `metrics_text` the optional
/// snapshot; `profile_text` the optional collapsed-stack phase profile
/// (rendered as an inline flame chart). Pure function of its inputs (no
/// clocks), so report output is reproducible byte-for-byte from the
/// same artifacts.
#[must_use]
pub fn render(
    events_text: &str,
    metrics_text: Option<&str>,
    profile_text: Option<&str>,
    source_label: &str,
) -> String {
    let d = digest_events(events_text);
    let mut out = String::with_capacity(16 * 1024);
    out.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>mzd run report</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:52em;\
         padding:0 1em;color:#1a1a1a}\n\
         h1{font-size:1.4em}h2{font-size:1.15em;margin-top:1.6em}\n\
         table{border-collapse:collapse;margin:.5em 0}\n\
         td,th{border:1px solid #ccc;padding:.2em .6em;text-align:left}\n\
         th{background:#f2f2f2}\n\
         .dim{color:#777}\n\
         .spark{display:flex;align-items:center;gap:1em;margin:.3em 0}\n\
         .spark .label{min-width:16em}\n\
         .raised{color:#b2182b;font-weight:600}.cleared{color:#1b7837}\n\
         </style>\n</head>\n<body>\n<h1>mzd run report</h1>\n",
    );
    let _ = writeln!(
        out,
        "<p>source: <code>{}</code> &mdash; {} events, {} kinds{}</p>",
        esc(source_label),
        d.events,
        d.kinds.len(),
        if d.skipped > 0 {
            format!(
                ", <span class=\"dim\">{} malformed lines skipped</span>",
                d.skipped
            )
        } else {
            String::new()
        }
    );

    let _ = writeln!(out, "<h2>Event counts</h2>");
    if d.kinds.is_empty() {
        let _ = writeln!(out, "<p class=\"dim\">no events</p>");
    } else {
        let _ = writeln!(out, "<table><tr><th>event</th><th>count</th></tr>");
        for (kind, count) in &d.kinds {
            let _ = writeln!(
                out,
                "<tr><td><code>{}</code></td><td>{count}</td></tr>",
                esc(kind)
            );
        }
        let _ = writeln!(out, "</table>");
    }

    let charted: Vec<_> = SERIES
        .iter()
        .filter_map(|&(event, field, label)| {
            d.series
                .get(&(event, field))
                .map(|vs| (event, field, label, vs))
        })
        .collect();
    if !charted.is_empty() {
        let _ = writeln!(out, "<h2>Round series</h2>");
        for (event, field, label, values) in charted {
            let _ = writeln!(
                out,
                "<div class=\"spark\"><span class=\"label\">{} <br>\
                 <code class=\"dim\">{}.{}</code></span>{}<span class=\"dim\">{}</span></div>",
                esc(label),
                esc(event),
                esc(field),
                sparkline(values),
                stats_row(values)
            );
        }
    }

    let _ = writeln!(out, "<h2>SLO transitions</h2>");
    if d.transitions.is_empty() {
        let _ = writeln!(
            out,
            "<p class=\"dim\">none &mdash; no burn-rate alerts, no model drift</p>"
        );
    } else {
        let _ = writeln!(
            out,
            "<table><tr><th>round</th><th>event</th><th>transition</th><th>detail</th></tr>"
        );
        for (kind, transition, round, detail) in &d.transitions {
            let _ = writeln!(
                out,
                "<tr><td>{round}</td><td><code>{}</code></td>\
                 <td class=\"{}\">{}</td><td>{}</td></tr>",
                esc(kind),
                esc(transition),
                esc(transition),
                esc(detail)
            );
        }
        let _ = writeln!(out, "</table>");
    }

    let overruns = d.kinds.get("server.round.overrun").copied().unwrap_or(0);
    let fault_rounds = d
        .series
        .get(&("sim.round", "fault"))
        .map_or(0, |vs| vs.iter().filter(|&&x| x > 0.0).count());
    if !d.degrades.is_empty() || overruns > 0 || fault_rounds > 0 {
        let _ = writeln!(out, "<h2>Faults &amp; degradation</h2>");
        let _ = writeln!(
            out,
            "<p>{fault_rounds} round(s) lost time to injected faults; \
             {overruns} round deadline overrun(s).</p>"
        );
        if !d.degrades.is_empty() {
            let _ = writeln!(
                out,
                "<table><tr><th>round</th><th>action</th><th>rung</th><th>streams shed</th></tr>"
            );
            for (action, rung, round, shed) in &d.degrades {
                let _ = writeln!(
                    out,
                    "<tr><td>{round}</td><td class=\"{}\">{}</td><td>{rung}</td><td>{shed}</td></tr>",
                    if action.starts_with("escalate") { "raised" } else { "cleared" },
                    esc(action),
                );
            }
            let _ = writeln!(out, "</table>");
        }
    }

    if let Some(text) = metrics_text {
        metrics_section(&mut out, text);
    }
    if let Some(folded) = profile_text {
        let _ = writeln!(out, "<h2>Phase profile</h2>");
        let _ = writeln!(
            out,
            "<p class=\"dim\">self time per phase, widths proportional to \
             wall-clock share (collapsed-stack input)</p>"
        );
        out.push_str(&mzd_prof::render_flame_svg(folded));
        out.push('\n');
    }
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> String {
        let mut s = String::new();
        for i in 0..16 {
            let _ = writeln!(
                s,
                "{{\"event\":\"sim.round\",\"round\":{i},\"service_time\":{}}}",
                0.8 + 0.01 * f64::from(i)
            );
        }
        s.push_str("{\"event\":\"slo.alert\",\"transition\":\"raised\",\"round\":9,\"burn_fast\":7.5,\"burn_slow\":6.1}\n");
        s.push_str("{\"event\":\"slo.drift\",\"transition\":\"cleared\",\"round\":12,\"ks\":0.04,\"tail_exceedance\":0.02}\n");
        s.push_str("not json at all\n");
        s
    }

    #[test]
    fn renders_well_formed_self_contained_html() {
        let html = render(&sample_events(), None, None, "events.jsonl");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
        assert!(html.matches("<svg").count() >= 1, "{html}");
        assert!(html.contains("sim.round"));
        assert!(html.contains("1 malformed lines skipped"));
        assert!(html.contains("class=\"raised\""));
        assert!(html.contains("class=\"cleared\""));
        // Self-contained: no external fetches of any kind.
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert!(!html.contains("<script") && !html.contains("<link"));
    }

    #[test]
    fn metrics_section_renders_tables() {
        let metrics = "{\"counters\":{\"sim.rounds\":16},\"gauges\":{},\
                       \"histograms\":{\"sim.round.service_time\":{\"count\":16,\
                       \"mean\":0.87,\"p50\":0.87,\"p95\":0.94,\"p99\":0.95}}}";
        let html = render(&sample_events(), Some(metrics), None, "x");
        assert!(html.contains("Metrics snapshot"));
        assert!(html.contains("sim.rounds"));
        assert!(html.contains("p95"));
        // A broken metrics file degrades gracefully instead of failing.
        let html = render("", Some("{nope"), None, "x");
        assert!(html.contains("did not parse"));
    }

    #[test]
    fn renders_fault_and_degradation_sections() {
        let mut events = String::new();
        for i in 0..8 {
            let _ = writeln!(
                events,
                "{{\"event\":\"sim.round\",\"round\":{i},\"service_time\":0.9,\"fault\":{}}}",
                0.02 * f64::from(i)
            );
        }
        events.push_str(
            "{\"event\":\"server.degrade\",\"action\":\"escalate\",\"rung\":1,\"round\":5,\"shed\":0}\n\
             {\"event\":\"server.degrade\",\"action\":\"recover\",\"rung\":0,\"round\":7,\"shed\":0}\n\
             {\"event\":\"server.round.overrun\",\"round\":6,\"disk\":0,\"overrun\":0.05,\"requests\":12}\n",
        );
        let metrics = "{\"counters\":{\"fault.media_errors\":3,\"degrade.escalations\":1,\
                       \"par.tasks\":64,\"sim.rounds\":8},\"gauges\":{\"degrade.rung\":0},\
                       \"histograms\":{}}";
        let html = render(&events, Some(metrics), None, "events.jsonl");
        assert!(html.contains("Faults &amp; degradation"), "{html}");
        assert!(
            html.contains("7 round(s) lost time to injected faults"),
            "{html}"
        );
        assert!(html.contains("1 round deadline overrun(s)"), "{html}");
        assert!(html.contains("escalate"), "{html}");
        assert!(html.contains("fault-injection time per round"), "{html}");
        // The family roll-up names every live subsystem.
        for family in ["fault.*", "degrade.*", "par.*", "sim.*"] {
            assert!(html.contains(family), "missing {family}: {html}");
        }
    }

    #[test]
    fn fault_free_run_omits_robustness_section() {
        let html = render(&sample_events(), None, None, "events.jsonl");
        assert!(!html.contains("Faults &amp; degradation"), "{html}");
    }

    #[test]
    fn profile_renders_inline_flame_chart() {
        let html = render(
            &sample_events(),
            None,
            Some("server.round 100\nserver.round;sweep 700\nserver.round;slo 200\n"),
            "events.jsonl",
        );
        assert!(html.contains("Phase profile"), "{html}");
        assert!(html.contains("sweep"), "{html}");
        assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
        assert!(!html.contains("<script") && !html.contains("http"));
        // An empty profile degrades to a placeholder, not a failure.
        let html = render("", None, Some(""), "x");
        assert!(html.contains("empty profile"), "{html}");
        assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
    }

    #[test]
    fn empty_and_missing_metric_families_render_cleanly() {
        // A clean run: no cache.*, no degrade.*, empty sections — the
        // renderer must not panic or emit unbalanced SVG.
        let metrics = "{\"counters\":{\"sim.rounds\":4,\"fault.media_errors\":0},\
                       \"gauges\":{},\"histograms\":{}}";
        let html = render(&sample_events(), Some(metrics), None, "events.jsonl");
        assert!(html.contains("Metrics snapshot"), "{html}");
        assert!(!html.contains("cache.*"), "{html}");
        assert!(!html.contains("degrade.*"), "{html}");
        assert!(html.contains("fault.*"), "{html}");
        assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
        assert!(html.ends_with("</html>\n"));
        // Entirely empty snapshot: family table is omitted, page intact.
        let html = render(
            "",
            Some("{\"counters\":{},\"gauges\":{},\"histograms\":{}}"),
            None,
            "x",
        );
        assert!(html.contains("Metrics snapshot"), "{html}");
        assert!(!html.contains("<h3>families</h3>"), "{html}");
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn unknown_families_roll_up_under_other() {
        // cluster.* is not in the known-subsystem set: it must surface
        // in an explicit "other families" section, not blend into (or
        // vanish from) the main roll-up.
        let metrics = "{\"counters\":{\"sim.rounds\":4,\"cluster.migrations\":2,\
                       \"cluster.node_failures\":1,\"mystery.widget\":9},\
                       \"gauges\":{},\"histograms\":{}}";
        let html = render(&sample_events(), Some(metrics), None, "events.jsonl");
        assert!(html.contains("<h3>families</h3>"), "{html}");
        assert!(html.contains("sim.*"), "{html}");
        assert!(html.contains("other families"), "{html}");
        assert!(html.contains("cluster.*"), "{html}");
        assert!(html.contains("mystery.*"), "{html}");
        // Known table precedes the other-family table.
        let known_at = html.find("<h3>families</h3>").unwrap();
        let other_at = html.find("other families").unwrap();
        assert!(known_at < other_at, "{html}");
        // A snapshot with only known families omits the other section.
        let metrics = "{\"counters\":{\"sim.rounds\":4},\"gauges\":{},\"histograms\":{}}";
        let html = render(&sample_events(), Some(metrics), None, "events.jsonl");
        assert!(!html.contains("other families"), "{html}");
    }

    #[test]
    fn escapes_untrusted_text() {
        let events = "{\"event\":\"<script>alert(1)</script>\",\"round\":1}\n";
        let html = render(events, None, None, "<evil label>");
        assert!(!html.contains("<script>"));
        assert!(html.contains("&lt;script&gt;"));
        assert!(html.contains("&lt;evil label&gt;"));
    }

    #[test]
    fn sparkline_handles_degenerate_series() {
        assert!(sparkline(&[]).contains("too few points"));
        assert!(sparkline(&[1.0]).contains("too few points"));
        let flat = sparkline(&[2.0, 2.0, 2.0]);
        assert!(flat.contains("<svg"), "{flat}");
        assert!(!flat.contains("NaN"), "{flat}");
        let with_nan = sparkline(&[0.1, f64::NAN, 0.3, 0.2]);
        assert!(!with_nan.contains("NaN"), "{with_nan}");
    }
}
