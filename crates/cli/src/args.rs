//! Command-line parsing for `mzd` — a small, dependency-free parser.
//!
//! ```text
//! mzd <command> [--flag value]...
//!
//! commands:
//!   nmax       admission limit for a quality target
//!   plate      round-overrun probability (bound + saddlepoint estimate)
//!   table      precomputed admission lookup table (§5)
//!   simulate   estimate p_late by simulation
//!   serve      run the round-based server on a Zipf catalog
//!   plan       provisioning: disks for a stream population
//!   worstcase  deterministic worst-case limits (eq. 4.1)
//!   disks      list built-in drive profiles
//! ```
//!
//! Common flags: `--disk <profile>` (default `viking`), `--mean <bytes>`,
//! `--sd <bytes>` (default 200000/100000), `--round <seconds>` (default 1).

use crate::CliError;
use std::collections::BTreeMap;

/// A parsed command line: command word plus `--key value` flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Parsed {
    /// The command word.
    pub command: Command,
    flags: BTreeMap<String, String>,
}

/// The `mzd` sub-commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Admission limit for a quality target.
    Nmax,
    /// Round-overrun probability for a given N.
    PLate,
    /// Precomputed admission lookup table.
    Table,
    /// Simulation-based p_late estimate.
    Simulate,
    /// Round-based server run over a popularity-skewed catalog, with an
    /// optional fragment cache.
    Serve,
    /// Disks-for-population provisioning.
    Plan,
    /// Deterministic worst-case limits.
    WorstCase,
    /// List drive profiles.
    Disks,
    /// Analyze a fragment-size trace file.
    AnalyzeTrace,
    /// Render an HTML report from a run's telemetry artifacts.
    Report,
    /// Render a flight-recorder post-mortem bundle as a timeline and
    /// audit its phase decomposition against the analytic model.
    Postmortem,
    /// Print usage.
    Help,
}

/// Usage text shown for `mzd help` and on parse errors.
pub const USAGE: &str = "\
usage: mzd <command> [--flag value]...

commands:
  nmax       admission limit (flags: --delta P | --m R --g G --epsilon P)
  plate      overrun probability for one N (flags: --n N)
  table      admission lookup table (flags: --thresholds p1,p2,...)
  simulate   simulated p_late (flags: --n N --rounds R --seed S
             --reps K   [split the round budget over K independent
                         replications, run in parallel]
             --faults SPEC  [inject disk faults; SPEC is a preset
                             (clean|media1pct|flaky|degrading|zonefail|
                              graynode|flappy|creep)
                             or key=value pairs, e.g.
                             media=0.01:1,stall=0.002:0.05,retries=4,
                             gray=slow:1.6|flap:2:40:20|creep:40:400:2.5])
  serve      round-based server on a Zipf catalog
             (flags: --disks D --streams N --rounds R --seed S
              --objects K --object-rounds M --zipf SKEW
              --nodes N           [N > 1 serves a sharded fleet: N nodes
                                   of --disks disks each, consistent-hash
                                   placement, per-node lease timeouts,
                                   and the guarantee composed fleet-wide;
                                   a zonefail --fault-profile becomes a
                                   whole-node outage of node zone%N]
              --lease-rounds L    [rounds of silence before a node is
                                   declared failed and its streams
                                   migrate; default 3]
              --health            [gray-failure detection: per-node
                                   suspicion scores over per-stream
                                   service times drive a probation ->
                                   ejection -> readmission machine;
                                   probated nodes get hedged dispatch,
                                   ejection re-composes the guarantee
                                   (capacity debited; infeasible load
                                   freezes admission) and dumps a
                                   health.ejection fleet postmortem;
                                   needs --nodes N]
              --gray-node I       [the node carrying any gray=... shape
                                   in --fault-profile (mod N); other
                                   members run it stripped; default 0]
              --cache-bytes B --cache-policy lru|interval|cost
              --cache-safety S    [enables cache-aware admission]
              --slo               [burn-rate + model-conformance monitor]
              --trace-out PATH    [per-stream causal trace, Chrome JSON;
                                   implies --slo; with --nodes N the
                                   per-node traces are stitched under
                                   one root span per stream, so a
                                   migration reads as one causal chain]
              --fault-profile SPEC [same grammar as --faults; add
                                    disk=D to degrade one spindle only]
              --work-ahead K      [prefetch K fragments/stream into the
                                   cache in post-sweep slack]
              --degrade           [graceful-degradation ladder driven by
                                   the burn alert; implies --slo]
              --postmortem-dir DIR [attach the flight recorder; an SLO
                                    fast-burn alert, a ladder escalation
                                    or a round overrun dumps a
                                    post-mortem bundle under DIR; with
                                    --nodes N every node gets its own
                                    recorder and a fleet trigger dumps
                                    all of them under DIR/node-I/ plus
                                    a correlating DIR/MANIFEST.json]
              --recorder-capacity N [rounds retained in the flight
                                     recorder ring; default 64]
              --dump-on-exit      [also dump a manual bundle at exit]
              --profile-out PATH  [phase profile as collapsed stacks,
                                   flamegraph.pl/inferno compatible]
              --prom-out PATH     [Prometheus text exposition of the
                                   metrics registry, written per round;
                                   with --nodes N it also carries the
                                   fleet's node-labeled quantile-sketch
                                   series and merged fleet summaries])
  plan       disks for a population (flags: --population N --m R --g G --epsilon P)
  worstcase  deterministic worst-case limits (eq. 4.1)
  disks      list built-in drive profiles
  analyze-trace  fit a trace file and derive its admission limit
                 (flags: --file PATH [--delta P])
  report     render a self-contained HTML page from a run's telemetry
             (flags: --events PATH [--metrics PATH] [--profile PATH]
              --out PATH)
  postmortem render a flight-recorder bundle as a timeline and audit the
             observed phase decomposition against the analytic model
             (flags: --bundle DIR | --fleet DIR  [a fleet bundle written
              by serve --nodes: cross-node timeline keyed by round, with
              the decomposition audited per node])
  help       this text

common flags:
  --disk viking|single75|legacy|nextgen|synthetic2to1   (default viking)
  --mean BYTES   fragment-size mean        (default 200000)
  --sd BYTES     fragment-size std. dev.   (default 100000)
  --round SECS   round length              (default 1.0)

execution:
  --jobs N       worker threads for parallel phases (solver scans, CDF
                 tabulation, sweep points, replications); default: all
                 hardware threads. Results are byte-identical for any N.

observability:
  --metrics-out PATH   write a JSON metrics snapshot (counters, gauges,
                       histogram quantiles) at exit
  --events-out PATH    write per-round / per-admission events as JSONL
  -v, --verbose        also stream events to stderr
  -q, --quiet          suppress the normal report on stdout (errors still
                       go to stderr; with -v, events still stream there)";

/// Flags that take no value; presence means `true`.
const BOOLEAN_FLAGS: [&str; 6] = [
    "verbose",
    "quiet",
    "slo",
    "degrade",
    "dump-on-exit",
    "health",
];

/// Parse an argument vector (without the program name).
///
/// # Errors
/// [`CliError::Usage`] for unknown commands, dangling flags or non-flag
/// positional arguments.
pub fn parse(args: &[String]) -> Result<Parsed, CliError> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("nmax") => Command::Nmax,
        Some("plate") => Command::PLate,
        Some("table") => Command::Table,
        Some("simulate") => Command::Simulate,
        Some("serve") => Command::Serve,
        Some("plan") => Command::Plan,
        Some("worstcase") => Command::WorstCase,
        Some("disks") => Command::Disks,
        Some("analyze-trace") => Command::AnalyzeTrace,
        Some("report") => Command::Report,
        Some("postmortem") => Command::Postmortem,
        Some("help") | None => Command::Help,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown command `{other}`\n\n{USAGE}"
            )))
        }
    };
    let mut flags = BTreeMap::new();
    while let Some(key) = it.next() {
        let name = match key.as_str() {
            "-v" => "verbose",
            "-q" => "quiet",
            other => match other.strip_prefix("--") {
                Some(name) => name,
                None => {
                    return Err(CliError::Usage(format!(
                        "expected a --flag, got `{key}`\n\n{USAGE}"
                    )))
                }
            },
        };
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(CliError::Usage(format!(
                "flag --{name} is missing its value\n\n{USAGE}"
            )));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(Parsed { command, flags })
}

impl Parsed {
    /// String flag with a default.
    #[must_use]
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map_or(default, String::as_str)
    }

    /// `f64` flag with a default.
    ///
    /// # Errors
    /// [`CliError::Usage`] when present but unparseable.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    /// `u64` flag with a default.
    ///
    /// # Errors
    /// [`CliError::Usage`] when present but unparseable.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got `{v}`"))),
        }
    }

    /// Required `u64` flag.
    ///
    /// # Errors
    /// [`CliError::Usage`] when absent or unparseable.
    pub fn u64_required(&self, name: &str) -> Result<u64, CliError> {
        match self.flags.get(name) {
            None => Err(CliError::Usage(format!("missing required flag --{name}"))),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got `{v}`"))),
        }
    }

    /// Comma-separated `f64` list flag with a default.
    ///
    /// # Errors
    /// [`CliError::Usage`] when present but unparseable.
    pub fn f64_list_or(&self, name: &str, default: &[f64]) -> Result<Vec<f64>, CliError> {
        match self.flags.get(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim().parse::<f64>().map_err(|_| {
                        CliError::Usage(format!(
                            "--{name} expects comma-separated numbers, got `{x}`"
                        ))
                    })
                })
                .collect(),
        }
    }

    /// Whether a flag was provided at all.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A boolean (presence-only) flag such as `--verbose`.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.has(name)
    }

    /// A flag's value, if present (e.g. `--metrics-out PATH`).
    #[must_use]
    pub fn str_opt(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_commands_and_flags() {
        let p = parse(&v(&["nmax", "--delta", "0.01", "--disk", "viking"])).unwrap();
        assert_eq!(p.command, Command::Nmax);
        assert_eq!(p.str_or("disk", "x"), "viking");
        assert_eq!(p.f64_or("delta", 0.5).unwrap(), 0.01);
        assert_eq!(p.f64_or("absent", 0.5).unwrap(), 0.5);
        assert!(p.has("delta"));
        assert!(!p.has("epsilon"));
    }

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&v(&["help"])).unwrap().command, Command::Help);
    }

    #[test]
    fn serve_command_parses() {
        let p = parse(&v(&[
            "serve",
            "--cache-bytes",
            "5e7",
            "--cache-policy",
            "interval",
            "--zipf",
            "1.0",
        ]))
        .unwrap();
        assert_eq!(p.command, Command::Serve);
        assert_eq!(p.f64_or("cache-bytes", 0.0).unwrap(), 5e7);
        assert_eq!(p.str_or("cache-policy", "lru"), "interval");
        assert_eq!(p.f64_or("zipf", 0.0).unwrap(), 1.0);
    }

    #[test]
    fn analyze_trace_command_parses() {
        let p = parse(&v(&["analyze-trace", "--file", "/tmp/x.trace"])).unwrap();
        assert_eq!(p.command, Command::AnalyzeTrace);
        assert_eq!(p.str_or("file", ""), "/tmp/x.trace");
    }

    #[test]
    fn report_and_slo_flags_parse() {
        let p = parse(&v(&["report", "--events", "e.jsonl", "--out", "r.html"])).unwrap();
        assert_eq!(p.command, Command::Report);
        assert_eq!(p.str_opt("events"), Some("e.jsonl"));
        assert_eq!(p.str_opt("out"), Some("r.html"));
        assert_eq!(p.str_opt("metrics"), None);
        let p = parse(&v(&["serve", "--slo", "--trace-out", "t.json"])).unwrap();
        assert!(p.flag("slo"));
        assert_eq!(p.str_opt("trace-out"), Some("t.json"));
    }

    #[test]
    fn fault_flags_parse() {
        let p = parse(&v(&["simulate", "--faults", "media=0.01,retries=4"])).unwrap();
        assert_eq!(p.str_opt("faults"), Some("media=0.01,retries=4"));
        let p = parse(&v(&[
            "serve",
            "--fault-profile",
            "flaky",
            "--degrade",
            "--work-ahead",
            "2",
        ]))
        .unwrap();
        assert_eq!(p.str_opt("fault-profile"), Some("flaky"));
        assert!(p.flag("degrade"));
        assert_eq!(p.u64_or("work-ahead", 0).unwrap(), 2);
    }

    #[test]
    fn prof_flags_parse() {
        let p = parse(&v(&[
            "serve",
            "--postmortem-dir",
            "/tmp/pm",
            "--recorder-capacity",
            "32",
            "--dump-on-exit",
            "--profile-out",
            "prof.folded",
            "--prom-out",
            "metrics.prom",
        ]))
        .unwrap();
        assert_eq!(p.command, Command::Serve);
        assert_eq!(p.str_opt("postmortem-dir"), Some("/tmp/pm"));
        assert_eq!(p.u64_or("recorder-capacity", 64).unwrap(), 32);
        assert!(p.flag("dump-on-exit"));
        assert_eq!(p.str_opt("profile-out"), Some("prof.folded"));
        assert_eq!(p.str_opt("prom-out"), Some("metrics.prom"));
        let p = parse(&v(&["postmortem", "--bundle", "/tmp/pm/b1"])).unwrap();
        assert_eq!(p.command, Command::Postmortem);
        assert_eq!(p.str_opt("bundle"), Some("/tmp/pm/b1"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let e = parse(&v(&["frobnicate"])).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)));
        assert!(e.to_string().contains("frobnicate"));
        assert!(e.to_string().contains("usage:"));
    }

    #[test]
    fn dangling_flag_and_positional_rejected() {
        assert!(parse(&v(&["nmax", "--delta"])).is_err());
        assert!(parse(&v(&["nmax", "stray"])).is_err());
    }

    #[test]
    fn numeric_flag_validation() {
        let p = parse(&v(&["plate", "--n", "abc"])).unwrap();
        assert!(p.u64_or("n", 1).is_err());
        assert!(p.u64_required("n").is_err());
        let p = parse(&v(&["plate"])).unwrap();
        assert!(p.u64_required("n").is_err());
        assert_eq!(p.u64_or("n", 27).unwrap(), 27);
    }

    #[test]
    fn list_flags() {
        let p = parse(&v(&["table", "--thresholds", "0.001, 0.01,0.1"])).unwrap();
        assert_eq!(
            p.f64_list_or("thresholds", &[]).unwrap(),
            vec![0.001, 0.01, 0.1]
        );
        let p = parse(&v(&["table"])).unwrap();
        assert_eq!(p.f64_list_or("thresholds", &[0.5]).unwrap(), vec![0.5]);
        let p = parse(&v(&["table", "--thresholds", "a,b"])).unwrap();
        assert!(p.f64_list_or("thresholds", &[]).is_err());
    }
}
