//! CLI-side telemetry wiring: install event sinks from the observability
//! flags before a command runs, dump the metrics snapshot after.
//!
//! The flags (shared by every command):
//!
//! * `--events-out PATH` — stream per-round / per-admission events to
//!   `PATH` as JSONL, one object per line.
//! * `-v` / `--verbose` — stream the same events to stderr instead
//!   (ignored when `--events-out` is given; the file wins).
//! * `--metrics-out PATH` — at exit, write the global registry snapshot
//!   (counters, gauges, histogram quantiles) to `PATH` as JSON.
//! * `--prom-out PATH` — at exit, write the global registry in
//!   Prometheus text exposition format (`serve` additionally rewrites
//!   the file every round, so a scraper sees live state).

use crate::args::Parsed;
use crate::CliError;
use std::sync::{Arc, Mutex};

/// Extra Prometheus exposition text appended after the global registry
/// whenever `--prom-out` renders — how `serve --nodes` ships the
/// fleet's labeled quantile-sketch series (which live on the cluster,
/// not in the process-global registry) through the same file.
static PROM_APPENDIX: Mutex<String> = Mutex::new(String::new());

/// Replace the Prometheus exposition appendix (see [`render_prom`]).
pub fn set_prom_appendix(text: String) {
    *PROM_APPENDIX.lock().expect("prom appendix lock") = text;
}

/// The global registry in Prometheus text exposition format, followed
/// by any appendix registered with [`set_prom_appendix`].
#[must_use]
pub fn render_prom() -> String {
    let mut text = mzd_telemetry::prom::render(mzd_telemetry::global());
    text.push_str(&PROM_APPENDIX.lock().expect("prom appendix lock"));
    text
}

/// Install the event sink the flags ask for. Call once, before the
/// command executes.
///
/// # Errors
/// [`CliError::Execution`] when the `--events-out` file cannot be
/// created.
pub fn init(parsed: &Parsed) -> Result<(), CliError> {
    if let Some(path) = parsed.str_opt("events-out") {
        let sink = mzd_telemetry::event::JsonlSink::create(path)
            .map_err(|e| CliError::Execution(format!("cannot create {path}: {e}")))?;
        mzd_telemetry::set_sink(Arc::new(sink));
    } else if parsed.flag("verbose") {
        mzd_telemetry::set_sink(Arc::new(mzd_telemetry::event::StderrSink));
    }
    Ok(())
}

/// Flush the event sink and write the metrics snapshot if requested.
/// Call once, after the command executes (on success or failure — a
/// failed run's partial metrics are still useful).
///
/// # Errors
/// [`CliError::Execution`] when the `--metrics-out` file cannot be
/// written.
pub fn finish(parsed: &Parsed) -> Result<(), CliError> {
    mzd_telemetry::event::flush();
    if let Some(path) = parsed.str_opt("metrics-out") {
        let json = mzd_telemetry::global().snapshot().to_json();
        std::fs::write(path, json)
            .map_err(|e| CliError::Execution(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = parsed.str_opt("prom-out") {
        std::fs::write(path, render_prom())
            .map_err(|e| CliError::Execution(format!("cannot write {path}: {e}")))?;
    }
    Ok(())
}
