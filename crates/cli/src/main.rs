//! The `mzd` binary: parse, install telemetry sinks, run, print, dump.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match mzd_cli::args::parse(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = mzd_cli::telemetry::init(&parsed) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let result = mzd_cli::commands::run(&parsed);
    // Flush events and dump metrics even when the command failed: a
    // partial run's telemetry is still diagnostic.
    let telemetry_result = mzd_cli::telemetry::finish(&parsed);
    match result {
        Ok(text) => {
            if !parsed.flag("quiet") {
                print!("{text}");
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    if let Err(e) = telemetry_result {
        eprintln!("{e}");
        std::process::exit(2);
    }
}
