//! The `mzd` binary: parse, run, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mzd_cli::args::parse(&args).and_then(|p| mzd_cli::commands::run(&p)) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
