//! `mzd postmortem` — render a flight-recorder bundle as a
//! human-readable timeline and audit the observed phase decomposition.
//!
//! Two audits run over every retained round:
//!
//! * **Identity**: per disk, `seek + rotational + transfer + stall +
//!   fault` must reproduce `service_time` (to f64 accumulation noise) —
//!   the invariant the simulator's [`mzd_sim::RoundOutcome`] maintains.
//!   A violation means the bundle is corrupt or the recorder and
//!   simulator disagree about the decomposition.
//! * **Analytic diff**: when the manifest's config echo carries enough
//!   provenance (disk profile, fragment moments), the observed phase
//!   totals of the final — triggering — round are compared against the
//!   §3 analytic expectation (`SEEK` constant, `N·ROT/2`,
//!   `N·E[T_transfer]`), so an operator can see *which* phase diverged
//!   from the model the admission decision was priced on.

use crate::args::Parsed;
use crate::CliError;
use mzd_core::{GuaranteeModel, ZoneHandling};
use std::fmt::Write as _;

/// Execute `mzd postmortem --bundle DIR` or `--fleet DIR`.
///
/// # Errors
/// [`CliError::Usage`] without `--bundle`/`--fleet`;
/// [`CliError::Execution`] when a bundle is unreadable, tampered with,
/// or schema-incompatible, or when an identity audit fails.
pub fn run(parsed: &Parsed) -> Result<String, CliError> {
    if let Some(dir) = parsed.str_opt("fleet") {
        return run_fleet(dir);
    }
    let dir = parsed
        .str_opt("bundle")
        .ok_or_else(|| CliError::Usage("postmortem needs --bundle DIR or --fleet DIR".into()))?;
    let bundle = mzd_prof::read_bundle(std::path::Path::new(dir))
        .map_err(|e| CliError::Execution(format!("bundle {dir}: {e}")))?;
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "postmortem bundle {dir}");
    let _ = writeln!(
        out,
        "  trigger: {} at round {} ({} of {} ring slots captured)",
        bundle.trigger.as_str(),
        bundle.round,
        bundle.captured,
        bundle.capacity
    );
    if !bundle.config.is_empty() {
        let echo: Vec<String> = bundle
            .config
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = writeln!(out, "  config: {}", echo.join(" "));
    }

    let _ = writeln!(out, "\n  round timeline (oldest retained first):");
    let _ = writeln!(
        out,
        "  round   act wait glitch rung  burn-fast  svc(max)  seek     rot      xfer     stall    fault"
    );
    let mut identity_violations = 0u64;
    for s in &bundle.rounds {
        let (mut seek, mut rot, mut xfer, mut stall, mut fault) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut svc_max: f64 = 0.0;
        for d in &s.disks {
            seek += d.seek_time;
            rot += d.rotational_time;
            xfer += d.transfer_time;
            stall += d.stall_time;
            fault += d.fault_time;
            svc_max = svc_max.max(d.service_time);
            if !decomposition_holds(d) {
                identity_violations += 1;
            }
        }
        let late = s.disks.iter().any(|d| d.late);
        let _ = writeln!(
            out,
            "  {:>6}{} {:>4} {:>4} {:>6} {:>4} {:>9.3}  {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            s.round,
            if late { "!" } else { " " },
            s.active_streams,
            s.waiting_streams,
            s.glitches,
            s.rung,
            s.burn_fast,
            svc_max,
            seek,
            rot,
            xfer,
            stall,
            fault
        );
    }
    let _ = writeln!(
        out,
        "\n  decomposition identity (seek+rot+xfer+stall+fault = service): {}",
        if identity_violations == 0 {
            "holds on every disk-round".to_string()
        } else {
            format!("VIOLATED on {identity_violations} disk-round(s)")
        }
    );
    if identity_violations > 0 {
        return Err(CliError::Execution(format!(
            "bundle {dir}: phase decomposition violated on {identity_violations} disk-round(s)\n\n{out}"
        )));
    }

    if let Some(last) = bundle.rounds.last() {
        analytic_diff(&mut out, &bundle, last);
    }
    Ok(out)
}

/// Execute `mzd postmortem --fleet DIR`: read the correlated fleet
/// bundle ([`mzd_prof::read_fleet_bundle`] verifies the full checksum
/// chain), render a cross-node timeline keyed by logical round, and
/// audit the per-disk phase-decomposition identity on every node.
///
/// # Errors
/// [`CliError::Execution`] when the fleet manifest or any node bundle
/// is unreadable or tampered with, or when the identity is violated on
/// any node.
fn run_fleet(dir: &str) -> Result<String, CliError> {
    let fleet = mzd_prof::read_fleet_bundle(std::path::Path::new(dir))
        .map_err(|e| CliError::Execution(format!("fleet bundle {dir}: {e}")))?;
    let with_bundles = fleet.nodes.iter().flatten().count();
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "fleet postmortem {dir}");
    let _ = writeln!(
        out,
        "  trigger: {} at fleet round {}; {} node(s), {} with bundles",
        fleet.trigger,
        fleet.round,
        fleet.entries.len(),
        with_bundles
    );

    // Cross-node timeline: the union of retained rounds, one column
    // per node, so the failure wave (a node going silent, survivors
    // absorbing its load) reads left to right on one line per round.
    let rounds: std::collections::BTreeSet<u64> = fleet
        .nodes
        .iter()
        .flatten()
        .flat_map(|b| b.rounds.iter().map(|s| s.round))
        .collect();
    let _ = writeln!(
        out,
        "\n  cross-node timeline (retained rounds; ! = late disk):"
    );
    let mut header = format!("  {:>6}", "round");
    for entry in &fleet.entries {
        let _ = write!(header, "  {:<26}", format!("node {}", entry.node));
    }
    let _ = writeln!(out, "{header}");
    for round in rounds {
        let _ = write!(out, "  {round:>6}");
        for bundle in &fleet.nodes {
            let cell = match bundle
                .as_ref()
                .and_then(|b| b.rounds.iter().find(|s| s.round == round))
            {
                Some(s) => {
                    let svc_max = s
                        .disks
                        .iter()
                        .map(|d| d.service_time)
                        .fold(0.0_f64, f64::max);
                    let late = s.disks.iter().any(|d| d.late);
                    format!(
                        "act {:>3} g {:>2} svc {:>6.3}{}",
                        s.active_streams,
                        s.glitches,
                        svc_max,
                        if late { "!" } else { " " }
                    )
                }
                None => "-".to_string(),
            };
            let _ = write!(out, "  {cell:<26}");
        }
        let _ = writeln!(out);
    }

    // Per-node audit: the same seek+rot+xfer+stall+fault = service
    // identity `--bundle` checks, run over every node's window.
    let _ = writeln!(out, "\n  per-node decomposition identity:");
    let mut total_violations = 0u64;
    for (entry, bundle) in fleet.entries.iter().zip(&fleet.nodes) {
        match bundle {
            None => {
                let _ = writeln!(
                    out,
                    "  node {}: no bundle (nothing recorded before the trigger)",
                    entry.node
                );
            }
            Some(b) => {
                let violations = b
                    .rounds
                    .iter()
                    .flat_map(|s| &s.disks)
                    .filter(|d| !decomposition_holds(d))
                    .count() as u64;
                total_violations += violations;
                let _ = writeln!(
                    out,
                    "  node {}: {} at round {}, {} round(s) retained, identity {}",
                    entry.node,
                    b.trigger.as_str(),
                    b.round,
                    b.rounds.len(),
                    if violations == 0 {
                        "holds".to_string()
                    } else {
                        format!("VIOLATED on {violations} disk-round(s)")
                    }
                );
            }
        }
    }
    if total_violations > 0 {
        return Err(CliError::Execution(format!(
            "fleet bundle {dir}: phase decomposition violated on \
             {total_violations} disk-round(s)\n\n{out}"
        )));
    }
    Ok(out)
}

/// Per-disk identity check. The simulator accumulates the clock and the
/// per-phase totals in different summation orders, so equality is up to
/// f64 accumulation noise — a relative 1e-9 covers thousands of
/// requests while still catching any real bookkeeping error.
fn decomposition_holds(d: &mzd_prof::DiskPhases) -> bool {
    let sum = d.seek_time + d.rotational_time + d.transfer_time + d.stall_time + d.fault_time;
    let tol = 1e-9 * d.service_time.abs().max(1.0);
    (sum - d.service_time).abs() <= tol
}

/// Compare the triggering round's observed per-disk phases against the
/// analytic §3 expectation rebuilt from the manifest's config echo.
/// Silently skipped when the echo lacks provenance or names an unknown
/// profile — the timeline above is still rendered.
fn analytic_diff(out: &mut String, bundle: &mzd_prof::Bundle, last: &mzd_prof::RoundSnapshot) {
    let Some(model) = model_from_echo(bundle) else {
        return;
    };
    let _ = writeln!(
        out,
        "\n  analytic decomposition of the final round (observed / expected, per disk):"
    );
    let _ = writeln!(
        out,
        "  disk   n      seek             rot              xfer             service"
    );
    for d in &last.disks {
        let Ok(svc) = model.round_service(d.requests.max(1)) else {
            continue;
        };
        let n = f64::from(d.requests);
        let e_seek = svc.seek_constant();
        let e_rot = n * svc.rotation_time() / 2.0;
        let e_xfer = n * svc.transfer().mean();
        let e_svc = svc.mean();
        let cell = |obs: f64, exp: f64| format!("{obs:.4} / {exp:.4}",);
        let _ = writeln!(
            out,
            "  {:>4} {:>3}   {:>15}  {:>15}  {:>15}  {:>15}",
            d.disk,
            d.requests,
            cell(d.seek_time, e_seek),
            cell(d.rotational_time, e_rot),
            cell(d.transfer_time, e_xfer),
            cell(d.service_time, e_svc),
        );
    }
    let _ = writeln!(
        out,
        "  (expected: SEEK sweep constant, N*ROT/2, N*E[T_transfer]; a wide gap\n   in one column names the phase that broke the guarantee)"
    );
}

/// Rebuild the guarantee model from the manifest config echo, if it
/// carries `disk`, `mean` and `sd` and the profile is a known built-in.
fn model_from_echo(bundle: &mzd_prof::Bundle) -> Option<GuaranteeModel> {
    let profile = bundle.config_value("disk")?;
    let mean: f64 = bundle.config_value("mean")?.parse().ok()?;
    let sd: f64 = bundle.config_value("sd")?.parse().ok()?;
    let disk = crate::commands::profile_by_name(profile)
        .ok()?
        .build()
        .ok()?;
    GuaranteeModel::new(disk, mean, sd * sd, ZoneHandling::Discrete).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_line(line: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = line.iter().map(ToString::to_string).collect();
        crate::commands::run(&parse(&args)?)
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mzd_pm_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn postmortem_requires_bundle_flag() {
        assert!(matches!(run_line(&["postmortem"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_line(&["postmortem", "--bundle", "/nonexistent/bundle"]),
            Err(CliError::Execution(_))
        ));
    }

    #[test]
    fn serve_dump_round_trips_through_postmortem() {
        let dir = temp_dir("roundtrip");
        let out = run_line(&[
            "serve",
            "--rounds",
            "12",
            "--streams",
            "8",
            "--seed",
            "11",
            "--postmortem-dir",
            dir.to_str().unwrap(),
            "--recorder-capacity",
            "8",
            "--dump-on-exit",
        ])
        .unwrap();
        assert!(out.contains("postmortem: manual ->"), "{out}");
        let bundle = dir.join("postmortem-r000011-manual");
        assert!(bundle.join("MANIFEST.json").is_file());
        let rendered = run_line(&["postmortem", "--bundle", bundle.to_str().unwrap()]).unwrap();
        assert!(
            rendered.contains("trigger: manual at round 11"),
            "{rendered}"
        );
        assert!(rendered.contains("holds on every disk-round"), "{rendered}");
        // Provenance echoed into the manifest supports the analytic diff.
        assert!(rendered.contains("disk=viking"), "{rendered}");
        assert!(rendered.contains("analytic decomposition"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_serve_dump_round_trips_through_postmortem_fleet() {
        let dir = temp_dir("fleet_roundtrip");
        let out = run_line(&[
            "serve",
            "--nodes",
            "4",
            "--disks",
            "1",
            "--lease-rounds",
            "3",
            "--rounds",
            "30",
            "--seed",
            "7",
            "--object-rounds",
            "60",
            "--fault-profile",
            "scenario=zonefail:1:10:15:20",
            "--postmortem-dir",
            dir.to_str().unwrap(),
            "--recorder-capacity",
            "16",
        ])
        .unwrap();
        assert!(out.contains("postmortem: lease.expiry_storm ->"), "{out}");
        assert!(dir.join("MANIFEST.json").is_file());
        let rendered = run_line(&["postmortem", "--fleet", dir.to_str().unwrap()]).unwrap();
        assert!(
            rendered.contains("trigger: lease.expiry_storm at fleet round"),
            "{rendered}"
        );
        assert!(rendered.contains("4 node(s), 4 with bundles"), "{rendered}");
        assert!(rendered.contains("cross-node timeline"), "{rendered}");
        // Every node's bundle passes the phase-decomposition audit.
        for node in 0..4 {
            assert!(
                rendered.contains(&format!("node {node}: lease.expiry_storm at round")),
                "{rendered}"
            );
        }
        assert!(rendered.contains("identity holds"), "{rendered}");
        assert!(!rendered.contains("VIOLATED"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_bundle_is_rejected() {
        let dir = temp_dir("tamper");
        run_line(&[
            "serve",
            "--rounds",
            "6",
            "--streams",
            "4",
            "--seed",
            "2",
            "--postmortem-dir",
            dir.to_str().unwrap(),
            "--dump-on-exit",
        ])
        .unwrap();
        let bundle = dir.join("postmortem-r000005-manual");
        let rounds = bundle.join("rounds.jsonl");
        let mut text = std::fs::read_to_string(&rounds).unwrap();
        text.push('\n');
        std::fs::write(&rounds, text).unwrap();
        let err = run_line(&["postmortem", "--bundle", bundle.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Execution(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
