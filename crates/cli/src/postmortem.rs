//! `mzd postmortem` — render a flight-recorder bundle as a
//! human-readable timeline and audit the observed phase decomposition.
//!
//! Two audits run over every retained round:
//!
//! * **Identity**: per disk, `seek + rotational + transfer + stall +
//!   fault` must reproduce `service_time` (to f64 accumulation noise) —
//!   the invariant the simulator's [`mzd_sim::RoundOutcome`] maintains.
//!   A violation means the bundle is corrupt or the recorder and
//!   simulator disagree about the decomposition.
//! * **Analytic diff**: when the manifest's config echo carries enough
//!   provenance (disk profile, fragment moments), the observed phase
//!   totals of the final — triggering — round are compared against the
//!   §3 analytic expectation (`SEEK` constant, `N·ROT/2`,
//!   `N·E[T_transfer]`), so an operator can see *which* phase diverged
//!   from the model the admission decision was priced on.

use crate::args::Parsed;
use crate::CliError;
use mzd_core::{GuaranteeModel, ZoneHandling};
use std::fmt::Write as _;

/// Execute `mzd postmortem --bundle DIR`.
///
/// # Errors
/// [`CliError::Usage`] without `--bundle`; [`CliError::Execution`] when
/// the bundle is unreadable, tampered with, or schema-incompatible.
pub fn run(parsed: &Parsed) -> Result<String, CliError> {
    let dir = parsed
        .str_opt("bundle")
        .ok_or_else(|| CliError::Usage("postmortem needs --bundle DIR".into()))?;
    let bundle = mzd_prof::read_bundle(std::path::Path::new(dir))
        .map_err(|e| CliError::Execution(format!("bundle {dir}: {e}")))?;
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "postmortem bundle {dir}");
    let _ = writeln!(
        out,
        "  trigger: {} at round {} ({} of {} ring slots captured)",
        bundle.trigger.as_str(),
        bundle.round,
        bundle.captured,
        bundle.capacity
    );
    if !bundle.config.is_empty() {
        let echo: Vec<String> = bundle
            .config
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = writeln!(out, "  config: {}", echo.join(" "));
    }

    let _ = writeln!(out, "\n  round timeline (oldest retained first):");
    let _ = writeln!(
        out,
        "  round   act wait glitch rung  burn-fast  svc(max)  seek     rot      xfer     stall    fault"
    );
    let mut identity_violations = 0u64;
    for s in &bundle.rounds {
        let (mut seek, mut rot, mut xfer, mut stall, mut fault) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut svc_max: f64 = 0.0;
        for d in &s.disks {
            seek += d.seek_time;
            rot += d.rotational_time;
            xfer += d.transfer_time;
            stall += d.stall_time;
            fault += d.fault_time;
            svc_max = svc_max.max(d.service_time);
            if !decomposition_holds(d) {
                identity_violations += 1;
            }
        }
        let late = s.disks.iter().any(|d| d.late);
        let _ = writeln!(
            out,
            "  {:>6}{} {:>4} {:>4} {:>6} {:>4} {:>9.3}  {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            s.round,
            if late { "!" } else { " " },
            s.active_streams,
            s.waiting_streams,
            s.glitches,
            s.rung,
            s.burn_fast,
            svc_max,
            seek,
            rot,
            xfer,
            stall,
            fault
        );
    }
    let _ = writeln!(
        out,
        "\n  decomposition identity (seek+rot+xfer+stall+fault = service): {}",
        if identity_violations == 0 {
            "holds on every disk-round".to_string()
        } else {
            format!("VIOLATED on {identity_violations} disk-round(s)")
        }
    );
    if identity_violations > 0 {
        return Err(CliError::Execution(format!(
            "bundle {dir}: phase decomposition violated on {identity_violations} disk-round(s)\n\n{out}"
        )));
    }

    if let Some(last) = bundle.rounds.last() {
        analytic_diff(&mut out, &bundle, last);
    }
    Ok(out)
}

/// Per-disk identity check. The simulator accumulates the clock and the
/// per-phase totals in different summation orders, so equality is up to
/// f64 accumulation noise — a relative 1e-9 covers thousands of
/// requests while still catching any real bookkeeping error.
fn decomposition_holds(d: &mzd_prof::DiskPhases) -> bool {
    let sum = d.seek_time + d.rotational_time + d.transfer_time + d.stall_time + d.fault_time;
    let tol = 1e-9 * d.service_time.abs().max(1.0);
    (sum - d.service_time).abs() <= tol
}

/// Compare the triggering round's observed per-disk phases against the
/// analytic §3 expectation rebuilt from the manifest's config echo.
/// Silently skipped when the echo lacks provenance or names an unknown
/// profile — the timeline above is still rendered.
fn analytic_diff(out: &mut String, bundle: &mzd_prof::Bundle, last: &mzd_prof::RoundSnapshot) {
    let Some(model) = model_from_echo(bundle) else {
        return;
    };
    let _ = writeln!(
        out,
        "\n  analytic decomposition of the final round (observed / expected, per disk):"
    );
    let _ = writeln!(
        out,
        "  disk   n      seek             rot              xfer             service"
    );
    for d in &last.disks {
        let Ok(svc) = model.round_service(d.requests.max(1)) else {
            continue;
        };
        let n = f64::from(d.requests);
        let e_seek = svc.seek_constant();
        let e_rot = n * svc.rotation_time() / 2.0;
        let e_xfer = n * svc.transfer().mean();
        let e_svc = svc.mean();
        let cell = |obs: f64, exp: f64| format!("{obs:.4} / {exp:.4}",);
        let _ = writeln!(
            out,
            "  {:>4} {:>3}   {:>15}  {:>15}  {:>15}  {:>15}",
            d.disk,
            d.requests,
            cell(d.seek_time, e_seek),
            cell(d.rotational_time, e_rot),
            cell(d.transfer_time, e_xfer),
            cell(d.service_time, e_svc),
        );
    }
    let _ = writeln!(
        out,
        "  (expected: SEEK sweep constant, N*ROT/2, N*E[T_transfer]; a wide gap\n   in one column names the phase that broke the guarantee)"
    );
}

/// Rebuild the guarantee model from the manifest config echo, if it
/// carries `disk`, `mean` and `sd` and the profile is a known built-in.
fn model_from_echo(bundle: &mzd_prof::Bundle) -> Option<GuaranteeModel> {
    let profile = bundle.config_value("disk")?;
    let mean: f64 = bundle.config_value("mean")?.parse().ok()?;
    let sd: f64 = bundle.config_value("sd")?.parse().ok()?;
    let disk = crate::commands::profile_by_name(profile)
        .ok()?
        .build()
        .ok()?;
    GuaranteeModel::new(disk, mean, sd * sd, ZoneHandling::Discrete).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_line(line: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = line.iter().map(ToString::to_string).collect();
        crate::commands::run(&parse(&args)?)
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mzd_pm_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn postmortem_requires_bundle_flag() {
        assert!(matches!(run_line(&["postmortem"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_line(&["postmortem", "--bundle", "/nonexistent/bundle"]),
            Err(CliError::Execution(_))
        ));
    }

    #[test]
    fn serve_dump_round_trips_through_postmortem() {
        let dir = temp_dir("roundtrip");
        let out = run_line(&[
            "serve",
            "--rounds",
            "12",
            "--streams",
            "8",
            "--seed",
            "11",
            "--postmortem-dir",
            dir.to_str().unwrap(),
            "--recorder-capacity",
            "8",
            "--dump-on-exit",
        ])
        .unwrap();
        assert!(out.contains("postmortem: manual ->"), "{out}");
        let bundle = dir.join("postmortem-r000011-manual");
        assert!(bundle.join("MANIFEST.json").is_file());
        let rendered = run_line(&["postmortem", "--bundle", bundle.to_str().unwrap()]).unwrap();
        assert!(
            rendered.contains("trigger: manual at round 11"),
            "{rendered}"
        );
        assert!(rendered.contains("holds on every disk-round"), "{rendered}");
        // Provenance echoed into the manifest supports the analytic diff.
        assert!(rendered.contains("disk=viking"), "{rendered}");
        assert!(rendered.contains("analytic decomposition"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_bundle_is_rejected() {
        let dir = temp_dir("tamper");
        run_line(&[
            "serve",
            "--rounds",
            "6",
            "--streams",
            "4",
            "--seed",
            "2",
            "--postmortem-dir",
            dir.to_str().unwrap(),
            "--dump-on-exit",
        ])
        .unwrap();
        let bundle = dir.join("postmortem-r000005-manual");
        let rounds = bundle.join("rounds.jsonl");
        let mut text = std::fs::read_to_string(&rounds).unwrap();
        text.push('\n');
        std::fs::write(&rounds, text).unwrap();
        let err = run_line(&["postmortem", "--bundle", bundle.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Execution(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
