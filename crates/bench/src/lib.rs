//! Experiment harness support: the [`plot`] renderer and the simulation
//! [`Budget`] shared by the `experiments` binary.
//!
//! The experiment implementations themselves live inside the binary
//! (`src/bin/experiments/`): they print finished reports to stdout, and
//! library targets in this workspace are kept print-free (see the
//! `no_prints_in_libraries` integration test). Each experiment produces
//! one artifact as an aligned text table with a `paper:` annotation
//! where the paper reports a number:
//!
//! ```text
//! cargo run --release -p mzd-bench --bin experiments -- fig1
//! cargo run --release -p mzd-bench --bin experiments -- all --quick
//! ```

#![warn(missing_docs)]

pub mod plot;

/// Simulation budget selector: `quick` divides round/batch budgets by ~10
/// so the full suite runs in well under a minute (CI); the default budget
/// resolves tail probabilities down to ~1e-4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Reduced budgets for smoke runs.
    pub quick: bool,
}

impl Budget {
    /// Scale a round count down when quick mode is on.
    #[must_use]
    pub fn scale(&self, full: u64) -> u64 {
        if self.quick {
            (full / 10).max(100)
        } else {
            full
        }
    }

    /// Scale a batch count (kept ≥ 4 so confidence intervals still exist).
    #[must_use]
    pub fn scale_batches(&self, full: u32) -> u32 {
        if self.quick {
            (full / 10).max(4)
        } else {
            full
        }
    }
}
