//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation, plus the ablations described in DESIGN.md.
//!
//! Each submodule of [`experiments`] produces one artifact and prints it
//! as an aligned text table with a `paper:` annotation where the paper
//! reports a number. The `experiments` binary dispatches on experiment id:
//!
//! ```text
//! cargo run --release -p mzd-bench --bin experiments -- fig1
//! cargo run --release -p mzd-bench --bin experiments -- all --quick
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod plot;

/// Simulation budget selector: `quick` divides round/batch budgets by ~10
/// so the full suite runs in well under a minute (CI); the default budget
/// resolves tail probabilities down to ~1e-4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Reduced budgets for smoke runs.
    pub quick: bool,
}

impl Budget {
    /// Scale a round count down when quick mode is on.
    #[must_use]
    pub fn scale(&self, full: u64) -> u64 {
        if self.quick {
            (full / 10).max(100)
        } else {
            full
        }
    }

    /// Scale a batch count (kept ≥ 4 so confidence intervals still exist).
    #[must_use]
    pub fn scale_batches(&self, full: u32) -> u32 {
        if self.quick {
            (full / 10).max(4)
        } else {
            full
        }
    }
}
