//! Minimal ASCII chart rendering for experiment output.
//!
//! The paper's Figure 1 is a log-scale plot of analytic vs simulated
//! `p_late` over `N`; [`log_chart`] renders the same picture in a
//! terminal so the regenerated figure is *visible*, not just tabulated.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: &'static str,
    /// Marker character.
    pub marker: char,
    /// The points (y must be positive to appear on a log chart).
    pub points: Vec<(f64, f64)>,
}

/// Render series on a log10-y chart of the given size. X is binned
/// linearly over the union of the series' x-ranges; y decades are chosen
/// from the data, clamped to at most `max_decades` below the top.
#[must_use]
pub fn log_chart(series: &[Series], width: usize, height: usize, max_decades: f64) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            xs.push(x);
            if y > 0.0 {
                ys.push(y);
            }
        }
    }
    if xs.is_empty() || ys.is_empty() {
        return String::from("(no data)\n");
    }
    let x_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let x_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let y_top = ys
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .log10()
        .ceil();
    let y_bot_data = ys
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .log10()
        .floor();
    let y_bot = y_bot_data.max(y_top - max_decades);

    let mut grid = vec![vec![' '; width]; height];
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_top - y_bot).max(1e-12);
    for s in series {
        for &(x, y) in &s.points {
            if y <= 0.0 {
                continue;
            }
            let ly = y.log10();
            if ly < y_bot {
                continue;
            }
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y_top - ly) / y_span) * (height - 1) as f64).round() as usize;
            let cell = &mut grid[row.min(height - 1)][col.min(width - 1)];
            // Overlapping markers become '#'.
            *cell = if *cell == ' ' { s.marker } else { '#' };
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let decade = y_top - y_span * r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || (height > 8 && r == height / 2) {
            format!("1e{decade:>4.1}")
        } else {
            String::from("      ")
        };
        out.push_str(&format!("{label:>7} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>7} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}{:<width$}\n",
        "",
        format!(
            "{x_min:.0}{}{x_max:.0}",
            " ".repeat(width.saturating_sub(8))
        ),
        width = width
    ));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} {}", s.marker, s.label))
        .collect();
    out.push_str(&format!("{:>9}{}\n", "", legend.join("    ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                label: "analytic",
                marker: 'a',
                points: (14..=34)
                    .map(|n| (f64::from(n), (f64::from(n) - 34.0).exp()))
                    .collect(),
            },
            Series {
                label: "simulated",
                marker: 's',
                points: (14..=34)
                    .map(|n| (f64::from(n), 0.2 * (f64::from(n) - 34.0).exp()))
                    .collect(),
            },
        ]
    }

    #[test]
    fn chart_contains_markers_and_legend() {
        let chart = log_chart(&demo_series(), 60, 16, 6.0);
        assert!(chart.contains('a'));
        assert!(chart.contains('s'));
        assert!(chart.contains("analytic"));
        assert!(chart.contains("simulated"));
        // Axis frame present.
        assert!(chart.contains('|'));
        assert!(chart.contains('+'));
        assert!(chart.contains("1e"));
    }

    #[test]
    fn overlap_renders_hash() {
        let s = vec![
            Series {
                label: "a",
                marker: 'x',
                points: vec![(1.0, 0.5), (2.0, 0.5)],
            },
            Series {
                label: "b",
                marker: 'o',
                points: vec![(1.0, 0.5)],
            },
        ];
        let chart = log_chart(&s, 20, 8, 4.0);
        assert!(chart.contains('#'));
    }

    #[test]
    fn zero_and_negative_y_are_skipped() {
        let s = vec![Series {
            label: "zeros",
            marker: 'z',
            points: vec![(1.0, 0.0), (2.0, -1.0)],
        }];
        assert_eq!(log_chart(&s, 20, 8, 4.0), "(no data)\n");
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let chart = log_chart(&demo_series(), 1, 1, 2.0);
        assert!(chart.lines().count() >= 6);
    }
}
