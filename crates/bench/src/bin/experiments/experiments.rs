//! The experiment implementations. See DESIGN.md's experiment index:
//! E1 = Figure 1, E2 = Table 2, E3–E5 = the worked examples of §3.1–§3.3,
//! E6 = the eq. 4.1 worst case, E7 = the §3.2 approximation validation,
//! E8 = the §5 admission lookup tables, A1–A3 = ablations.

use mzd_bench::Budget;
use mzd_core::transfer::TransferTimeModel;
use mzd_core::{GuaranteeModel, RoundService, TransferTimeDensity, WorstCaseRate, ZoneHandling};
use mzd_disk::profiles;
use mzd_sim::{estimate_p_error, estimate_p_late, SeekPolicy, SimConfig};
use mzd_workload::SizeDistribution;

/// E1 — Figure 1: analytically predicted vs simulated `p_late(N, t=1s)`.
pub fn fig1(budget: Budget) {
    println!("E1 / Figure 1: analytic vs simulated p_late, t = 1 s, Table 1 disk");
    println!("(paper: analytic 1% knee at N = 26; simulated system sustains 28)\n");
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let cfg = SimConfig::paper_reference().expect("reference sim");
    let rounds = budget.scale(20_000);
    let mut analytic = Vec::new();
    let mut simulated = Vec::new();
    println!("  N    analytic b_late    simulated p_late    95% CI");
    // Every N point keeps its historical seed (1000 + N) and the points
    // are independent, so fanning them out across the worker pool leaves
    // the printed table byte-identical to the serial run.
    let ns: Vec<u32> = (14..=34).collect();
    let points = mzd_par::par_map(&ns, |&n| {
        let a = model.p_late_bound(n, 1.0).expect("valid t");
        let s = estimate_p_late(&cfg, n, rounds, 1_000 + u64::from(n)).expect("valid sim");
        (n, a, s)
    });
    for (n, a, s) in &points {
        println!(
            "  {n:2}   {a:>13.5}      {:>13.5}    [{:.5}, {:.5}]",
            s.p_late, s.ci.lo, s.ci.hi
        );
        analytic.push((f64::from(*n), *a));
        simulated.push((f64::from(*n), s.p_late));
    }
    println!(
        "\n{}",
        mzd_bench::plot::log_chart(
            &[
                mzd_bench::plot::Series {
                    label: "analytic bound",
                    marker: 'a',
                    points: analytic
                },
                mzd_bench::plot::Series {
                    label: "simulated",
                    marker: 's',
                    points: simulated
                },
            ],
            64,
            18,
            5.0,
        )
    );
    println!("  rounds per point: {rounds}");
    println!("  expected shape: analytic >= simulated everywhere (conservative model),");
    println!("  both curves rising steeply past N ~ 28.");
}

/// E2 — Table 2: analytic vs simulated `p_error` for N = 28…32.
pub fn table2(budget: Budget) {
    println!("E2 / Table 2: p_error (>= 12 glitches in M = 1200 rounds), t = 1 s\n");
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let cfg = SimConfig::paper_reference().expect("reference sim");
    let batches = budget.scale_batches(40);
    println!(
        "  N    analytic p_error    exact model    simulated p_error    samples    paper (analytic / sim)"
    );
    let paper: [(u32, &str, &str); 5] = [
        (28, "0.00014", "0"),
        (29, "0.318", "0"),
        (30, "1", "0"),
        (31, "1", "0.00678"),
        (32, "1", "0.454"),
    ];
    // As in fig1: independent N points with their historical seeds
    // (2000 + N), run concurrently, printed in order.
    let rows = mzd_par::par_map(&paper, |&(n, pa, ps)| {
        let a = model.p_error_bound(n, 1.0, 1200, 12).expect("valid t");
        let e = model.p_error_exact(n, 1.0, 1200, 12).expect("valid t");
        let s =
            estimate_p_error(&cfg, n, 1200, 12, batches, 2_000 + u64::from(n)).expect("valid sim");
        (n, pa, ps, a, e, s)
    });
    for (n, pa, ps, a, e, s) in &rows {
        println!(
            "  {n}   {a:>15.5}   {e:>11.5}     {:>15.5}     {:>6}     {pa} / {ps}",
            s.p_error, s.stream_samples
        );
    }
    println!("\n  windows per N: {batches} x 1200 rounds");
}

/// E3 — §3.1 worked example: single-zone disk, explicit transfer moments.
pub fn ex31() {
    println!("E3 / §3.1 example: conventional disk, E[T_trans] = 0.02174 s,");
    println!("Var = 0.00011815 s^2, ROT = 8.34 ms, CYL = 6720, t = 1 s\n");
    let curve = profiles::quantum_viking_2_1();
    let seek_curve = mzd_disk::SeekCurve::paper_form(
        curve.seek_sqrt_offset,
        curve.seek_sqrt_coeff,
        curve.seek_lin_offset,
        curve.seek_lin_coeff,
        curve.seek_threshold,
    )
    .expect("valid curve");
    let transfer = TransferTimeModel::from_moments(0.02174, 0.00011815).expect("valid moments");
    for (n, paper) in [(26u32, 0.00225), (27, 0.0103)] {
        let seek = mzd_disk::oyang::seek_bound(&seek_curve, 6720, n);
        let svc = RoundService::new(seek, 0.00834, transfer, n).expect("valid model");
        let b = svc.p_late_bound(1.0);
        println!(
            "  N = {n}: SEEK = {seek:.5} s, p_late <= {:.5}   (paper: {paper})",
            b.probability
        );
    }
    println!("\n  paper: SEEK = 0.10932 s at N = 27");
}

/// E4 — §3.2 worked example: multi-zone disk, Table 1 parameters.
pub fn ex32() {
    println!("E4 / §3.2 example: Table 1 multi-zone disk, t = 1 s\n");
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let tm = model.transfer_model();
    println!(
        "  moment-matched transfer Gamma: E = {:.5} s, Var = {:.3e} s^2, alpha = {:.1}, beta = {:.3}\n",
        tm.mean(),
        tm.variance(),
        tm.alpha(),
        tm.beta()
    );
    for (n, paper) in [(26u32, 0.00324), (27, 0.0133)] {
        let p = model.p_late_bound(n, 1.0).expect("valid t");
        println!("  N = {n}: p_late <= {p:.5}   (paper: {paper})");
    }
    println!(
        "\n  N_max at delta = 1%: {}   (paper: 26)",
        model.n_max_late(1.0, 0.01).expect("valid search")
    );
}

/// E5 — §3.3 worked example + eq. 3.3.6 admission limit.
pub fn ex33() {
    println!("E5 / §3.3 example: per-stream glitch guarantee, M = 1200, g = 12\n");
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let p28 = model.p_error_bound(28, 1.0, 1200, 12).expect("valid t");
    println!("  N = 28: p_error <= {p28:.6}   (paper: <= 0.14e-3)");
    let n_max = model
        .n_max_error(1.0, 1200, 12, 0.01)
        .expect("valid search");
    println!("  N_max at epsilon = 1%: {n_max}   (paper: 28; simulation sustains 31)");
    let pg = model.p_glitch_bound(28, 1.0).expect("valid t");
    println!("  per-round glitch bound b_glitch(28, 1s) = {pg:.6}");
}

/// E6 — eq. 4.1: deterministic worst-case admission limits.
pub fn worst_case() {
    println!("E6 / eq. 4.1: deterministic worst-case admission\n");
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let n1 = model
        .n_max_worst_case(1.0, 0.99, WorstCaseRate::Innermost)
        .expect("valid");
    println!("  99-pct size over C_min/ROT:          N_max^wc = {n1}   (paper: 10)");
    let n2 = model
        .n_max_worst_case(1.0, 0.95, WorstCaseRate::MidRange)
        .expect("valid");
    println!("  95-pct size over (Cmin+Cmax)/2/ROT:  N_max^wc = {n2}   (paper: 14)");
    let stoch = model.n_max_error(1.0, 1200, 12, 0.01).expect("valid");
    println!(
        "\n  stochastic guarantee admits {stoch} streams: {:.1}x the worst case",
        f64::from(stoch) / f64::from(n1)
    );
}

/// E7 — §3.2 Gamma-approximation accuracy for the transfer-time density.
pub fn approx() {
    println!("E7 / §3.2: Gamma approximation of the transfer-time density");
    println!("(paper claim: < 2% relative error for t in [5 ms, 100 ms])\n");
    let disk = profiles::quantum_viking_2_1().build().expect("valid disk");
    let f = TransferTimeDensity::continuous(&disk, 200_000.0, 1e10).expect("valid density");
    let a = f.gamma_approximation().expect("valid approximation");
    println!("  t (ms)   exact f_trans   gamma f_apptrans   rel. error");
    for i in 0..20 {
        let t = 0.005 * f64::from(i + 1);
        let e = f.pdf(t);
        let g = a.pdf(t);
        println!(
            "  {:>5.0}    {e:>12.5}    {g:>14.5}    {:>+8.2}%",
            t * 1000.0,
            100.0 * (g - e) / e
        );
    }
    let bulk = f.max_relative_error(0.010, 0.055, 64).expect("valid");
    let full = f.max_relative_error(0.005, 0.100, 96).expect("valid");
    let tv = f.total_variation_error(0.25).expect("valid");
    println!(
        "\n  max relative error, 10-55 ms (97% of mass):  {:.2}%",
        bulk * 100.0
    );
    println!(
        "  max relative error, 5-100 ms (paper's range): {:.2}%",
        full * 100.0
    );
    println!(
        "  total-variation distance:                     {:.3}%",
        tv * 100.0
    );
    println!("\n  the paper's 2% figure holds on the bulk and in TV distance; the");
    println!("  pointwise error in the deep right tail (density < 0.1% of peak) grows.");
}

/// E8 — §5 admission lookup tables.
pub fn nmax_tables() {
    println!("E8 / §5: precomputed admission lookup tables, Table 1 disk, t = 1 s\n");
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let thresholds = [0.0001, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.25];
    println!("  per-round overrun target (eq. 3.1.7):");
    let table = model
        .admission_table_late(1.0, &thresholds)
        .expect("valid thresholds");
    println!("    delta      N_max");
    for (d, n) in table.rows() {
        println!("    {d:>7.4}    {n}");
    }
    println!("\n  per-stream glitch-rate target, M = 1200, g = 12 (eq. 3.3.6):");
    let table = model
        .admission_table_error(1.0, 1200, 12, &thresholds)
        .expect("valid thresholds");
    println!("    epsilon    N_max");
    for (e, n) in table.rows() {
        println!("    {e:>7.4}    {n}");
    }
}

/// A1 — ablation: zone handling (multi-zone vs flattenings), analytic and
/// simulated.
pub fn ablate_zone(budget: Budget) {
    println!("A1: zone-handling ablation, t = 1 s\n");
    let profile = profiles::quantum_viking_2_1();
    let multi = profile.build().expect("valid disk");
    let rounds = budget.scale(20_000);

    let exact =
        GuaranteeModel::new(multi.clone(), 200_000.0, 1e10, ZoneHandling::Discrete).expect("valid");
    let cont = GuaranteeModel::new(multi.clone(), 200_000.0, 1e10, ZoneHandling::Continuous)
        .expect("valid");
    let flat =
        GuaranteeModel::new(multi.clone(), 200_000.0, 1e10, ZoneHandling::MeanRate).expect("valid");
    let pess = GuaranteeModel::new(
        profile.pessimistic_single_zone().build().expect("valid"),
        200_000.0,
        1e10,
        ZoneHandling::Discrete,
    )
    .expect("valid");

    let cfg = SimConfig::paper_reference().expect("valid sim");
    println!("  N   discrete   continuous   mean-rate   innermost   simulated");
    for n in [24u32, 26, 28, 30] {
        let s = estimate_p_late(&cfg, n, rounds, 3_000 + u64::from(n)).expect("valid sim");
        println!(
            "  {n:2}  {:>9.5}  {:>10.5}  {:>10.5}  {:>10.5}  {:>9.5}",
            exact.p_late_bound(n, 1.0).expect("valid"),
            cont.p_late_bound(n, 1.0).expect("valid"),
            flat.p_late_bound(n, 1.0).expect("valid"),
            pess.p_late_bound(n, 1.0).expect("valid"),
            s.p_late
        );
    }
    println!("\n  N_max at 1%:");
    for (name, m) in [
        ("discrete  ", &exact),
        ("continuous", &cont),
        ("mean-rate ", &flat),
        ("innermost ", &pess),
    ] {
        println!("    {name}  {}", m.n_max_late(1.0, 0.01).expect("valid"));
    }
}

/// A2 — ablation: SCAN vs independent (FCFS) seeks, simulated.
pub fn ablate_scan(budget: Budget) {
    println!("A2: SCAN vs independent-seek (FCFS) scheduling, simulated, t = 1 s\n");
    let rounds = budget.scale(10_000);
    let mut scan_cfg = SimConfig::paper_reference().expect("valid sim");
    scan_cfg.seek_policy = SeekPolicy::Scan;
    let mut fcfs_cfg = scan_cfg.clone();
    fcfs_cfg.seek_policy = SeekPolicy::Fcfs;
    println!("  N    SCAN p_late   FCFS p_late   SCAN mean svc   FCFS mean svc");
    for n in [16u32, 20, 24, 26, 28] {
        let s = estimate_p_late(&scan_cfg, n, rounds, 4_000 + u64::from(n)).expect("valid");
        let f = estimate_p_late(&fcfs_cfg, n, rounds, 4_000 + u64::from(n)).expect("valid");
        println!(
            "  {n:2}   {:>10.5}   {:>10.5}   {:>10.4} s   {:>10.4} s",
            s.p_late, f.p_late, s.mean_service_time, f.mean_service_time
        );
    }
    println!("\n  expected: FCFS saturates at a much lower N — the reason the paper");
    println!("  models SCAN (via Oyang's bound) instead of independent seeks.");
}

/// A3 — ablation: fragment-size distribution family at matched moments.
pub fn ablate_dist(budget: Budget) {
    println!("A3: size-distribution ablation at matched moments (200 KB, sd 100 KB)\n");
    let rounds = budget.scale(20_000);
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let dists = [
        ("gamma    ", SizeDistribution::paper_default()),
        (
            "lognormal",
            SizeDistribution::log_normal(200_000.0, 1e10).expect("valid"),
        ),
        (
            "pareto   ",
            SizeDistribution::pareto(200_000.0, 1e10).expect("valid"),
        ),
        (
            "constant ",
            SizeDistribution::constant(200_000.0).expect("valid"),
        ),
    ];
    println!("  (analytic bound assumes Gamma; simulation swaps the true law)\n");
    println!("  N   analytic(gamma)   sim gamma   sim lognormal   sim pareto   sim constant");
    for n in [26u32, 28, 30] {
        let a = model.p_late_bound(n, 1.0).expect("valid");
        let mut row = format!("  {n:2}   {a:>14.5}");
        for (_, d) in &dists {
            let mut cfg = SimConfig::paper_reference().expect("valid");
            cfg.sizes = d.clone();
            let s = estimate_p_late(&cfg, n, rounds, 5_000 + u64::from(n)).expect("valid");
            row.push_str(&format!("   {:>9.5}", s.p_late));
        }
        println!("{row}");
    }
    println!("\n  expected: constant sizes glitch least (no size variance); the heavy");
    println!("  tails (lognormal/pareto) glitch slightly more than gamma at equal moments.");
}

/// B3 — saddlepoint vs Chernoff vs simulation: where the conservatism
/// of the paper's admission limit comes from.
pub fn saddlepoint(budget: Budget) {
    println!("B3: the cost of rigor — Chernoff bound vs saddlepoint estimate vs sim\n");
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let cfg = SimConfig::paper_reference().expect("valid sim");
    let rounds = budget.scale(20_000);
    println!("  N    chernoff bound   saddlepoint est.   exact (model)   simulated   (sim 95% CI)");
    for n in [25u32, 26, 27, 28, 29, 30, 31] {
        let ch = model.p_late_bound(n, 1.0).expect("valid");
        let sp = model.p_late_estimate(n, 1.0).expect("valid");
        let ex = model.p_late_exact(n, 1.0).expect("valid");
        let s = estimate_p_late(&cfg, n, rounds, 10_000 + u64::from(n)).expect("valid");
        println!(
            "  {n:2}   {ch:>12.5}   {sp:>14.5}   {ex:>12.5}   {:>9.5}   [{:.5}, {:.5}]",
            s.p_late, s.ci.lo, s.ci.hi
        );
    }
    let n_ch = model.n_max_late(1.0, 0.01).expect("valid");
    let n_sp = mzd_core::admission::n_max(|n| model.p_late_estimate(n, 1.0).expect("valid"), 0.01);
    let n_ex = mzd_core::admission::n_max(|n| model.p_late_exact(n, 1.0).expect("valid"), 0.01);
    println!(
        "\n  N_max at 1%: chernoff {n_ch} (guarantee), saddlepoint {n_sp}, exact model {n_ex}"
    );
    println!("  reading: the exact tail (Gil-Pelaez inversion of the model's");
    println!("  characteristic function) confirms the saddlepoint to ~10%; both say the");
    println!("  modeled system takes 28 streams at 1% — the simulated capacity. The");
    println!("  Chernoff prefactor costs 2 streams; the worst-case SEEK costs the");
    println!("  remaining sliver between the exact model and the simulation.");
}

/// B1 — baseline comparison: Chernoff+SCAN (the paper) vs the related
/// work's CLT/Chebyshev tails with independent seeks, vs simulation.
pub fn baselines(budget: Budget) {
    use mzd_core::baselines::{BaselineTail, SeekMoments, TailMethod};
    println!("B1: tail-method & seek-model baselines ([CZ94]/[CL96]) vs the paper\n");
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let disk = model.disk().clone();
    let ind_seek = SeekMoments::independent_uniform(disk.seek_curve(), disk.cylinders())
        .expect("valid moments");
    println!(
        "  independent-seek moments: mean {:.2} ms, sd {:.2} ms (SCAN amortized at N=27: {:.2} ms)\n",
        ind_seek.mean * 1e3,
        ind_seek.variance.sqrt() * 1e3,
        model.seek_constant(27) / 27.0 * 1e3
    );
    let cfg = SimConfig::paper_reference().expect("valid sim");
    let rounds = budget.scale(20_000);
    println!("  N   chernoff+scan   clt+scan   clt+ind.seeks   cheb+ind.seeks   simulated(scan)");
    for n in [22u32, 24, 26, 28, 30] {
        let chern = model.p_late_bound(n, 1.0).expect("valid");
        let scan_seek = SeekMoments::scan_amortized(model.seek_constant(n), n);
        let clt_scan = BaselineTail::new(
            scan_seek,
            0.00834,
            model.transfer_model(),
            n,
            TailMethod::Normal,
        )
        .expect("valid")
        .p_late(1.0);
        let clt_ind = BaselineTail::new(
            ind_seek,
            0.00834,
            model.transfer_model(),
            n,
            TailMethod::Normal,
        )
        .expect("valid")
        .p_late(1.0);
        let cheb_ind = BaselineTail::new(
            ind_seek,
            0.00834,
            model.transfer_model(),
            n,
            TailMethod::Chebyshev,
        )
        .expect("valid")
        .p_late(1.0);
        let s = estimate_p_late(&cfg, n, rounds, 6_000 + u64::from(n)).expect("valid");
        println!(
            "  {n:2}   {chern:>11.5}   {clt_scan:>9.5}   {clt_ind:>12.5}   {cheb_ind:>12.5}   {:>11.5}",
            s.p_late
        );
    }
    println!("\n  reading: CLT+SCAN *undershoots* the simulation at small tail levels");
    println!("  (not a bound!), the independent-seek variants waste most of the disk,");
    println!("  and Chebyshev is orders of magnitude looser than Chernoff.");
}

/// B2 — mixed continuous/discrete workload (§6 outlook): analytic
/// discrete capacity vs simulated throughput and response times.
pub fn mixed(budget: Budget) {
    use mzd_core::mixed::discrete_capacity;
    use mzd_core::transfer::TransferTimeModel;
    use mzd_sim::{MixedConfig, MixedSimulator};
    println!("B2: mixed workload — discrete requests in the streams' slack (§6)\n");
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let disk = model.disk().clone();
    let discrete_tm = TransferTimeModel::multi_zone(
        &disk,
        20_000.0,
        (20_000.0f64).powi(2),
        ZoneHandling::Discrete,
    )
    .expect("valid");
    let curve = disk.seek_curve().clone();
    let cyl = disk.cylinders();
    let rounds = budget.scale(3_000);
    println!("  discrete objects: 20 KB +- 20 KB; continuous: paper reference\n");
    println!("  N    analytic K_max(1%)   sim served/round   mean resp (rounds)   cont. p_late");
    for n in [12u32, 18, 22, 24, 26] {
        let k_max = discrete_capacity(
            *model.transfer_model(),
            discrete_tm,
            n,
            1.0,
            0.01,
            0.00834,
            |total| mzd_disk::oyang::seek_bound(&curve, cyl, total),
        )
        .expect("valid");
        // Offer arrivals at ~the analytic capacity to see the sim confirm it.
        let rate = f64::from(k_max.max(1)) as f64;
        let mcfg = MixedConfig::paper_reference(rate).expect("valid");
        let mut sim = MixedSimulator::new(mcfg, 7_000 + u64::from(n)).expect("valid");
        let stats = sim.run(n, rounds);
        println!(
            "  {n:2}   {k_max:>12}        {:>10.2}        {:>10.2}          {:>9.5}",
            stats.discrete_throughput(),
            stats.discrete_response_rounds.mean(),
            stats.p_late()
        );
    }
    println!("\n  reading: continuous p_late stays at its paper level because streams");
    println!("  keep strict priority. The analytic K_max assumes discrete requests");
    println!("  join the SCAN sweep; the simulated discipline serves them FCFS in the");
    println!("  slack, so at light continuous load (large K) the simulation serves");
    println!("  fewer per round than K_max — the gap is the price of not sorting");
    println!("  discrete requests into the sweep. At moderate N the two agree.");
}

/// A4 — placement ablation: uniform vs zone-restricted placements.
pub fn ablate_placement(budget: Budget) {
    use mzd_core::transfer::TransferTimeModel;
    use mzd_core::RoundService;
    use mzd_disk::PlacementPolicy;
    println!("A4: placement ablation — where the data lives changes the guarantee\n");
    let disk = profiles::quantum_viking_2_1().build().expect("valid disk");
    let rounds = budget.scale(20_000);
    let policies = [
        ("uniform-by-capacity", PlacementPolicy::UniformByCapacity),
        ("uniform-by-cylinder", PlacementPolicy::UniformByCylinder),
        (
            "outer 5 zones      ",
            PlacementPolicy::OuterZones { zones: 5 },
        ),
        (
            "inner 5 zones      ",
            PlacementPolicy::InnerZones { zones: 5 },
        ),
    ];
    println!(
        "  policy                 capacity   analytic p_late(26)   sim p_late(26)   N_max(1%)"
    );
    for (name, policy) in policies {
        let tm =
            TransferTimeModel::with_placement(&disk, policy, 200_000.0, 1e10).expect("valid model");
        let span = policy.cylinder_span(&disk).expect("valid");
        let p_late = |n: u32| {
            let seek = mzd_disk::oyang::seek_bound(disk.seek_curve(), span, n);
            RoundService::new(seek, disk.rotation_time(), tm, n)
                .expect("valid")
                .p_late_bound(1.0)
                .probability
        };
        let analytic = p_late(26);
        let n_max = mzd_core::admission::n_max(p_late, 0.01);
        let mut cfg = SimConfig::paper_reference().expect("valid");
        cfg.placement = policy;
        let s = estimate_p_late(&cfg, 26, rounds, 8_000).expect("valid");
        let cap = policy.capacity_fraction(&disk).expect("valid");
        println!(
            "  {name}   {:>6.1}%   {analytic:>15.5}   {:>12.5}   {n_max:>6}",
            cap * 100.0,
            s.p_late
        );
    }
    println!("\n  reading: outer-zone placement buys streams at the cost of capacity;");
    println!("  inner-zone placement is what you must assume if data can live anywhere");
    println!("  — which is why the paper's capacity-weighted mixture is the right");
    println!("  default for full-capacity servers.");
}

/// A5 — temporal-correlation ablation: i.i.d. fragments (the §3.3
/// assumption) vs scene-correlated GOP traces at matched marginals.
pub fn ablate_correlation(budget: Budget) {
    use mzd_sim::SimulationEngine;
    use mzd_workload::gop::GopModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    println!("A5: temporal correlation — does the §3.3 independence idealization hold?\n");
    let rounds = budget.scale(24_000);
    let n = 30u32;
    let g_per_window = 12u64;
    let window = 1200u64;

    // Correlated traces: MPEG GOP with strong, long scene modulation
    // (fragments aggregate 25 frames, so the scene factor — not the
    // frame-level noise — is what survives at round granularity), tuned
    // so the marginal sd lands near the paper's 100 KB. The control is
    // the SAME traces with each stream's fragments shuffled: identical
    // marginals by construction, temporal order destroyed.
    let correlated_traces: Vec<mzd_workload::Trace> = {
        let model = GopModel::mpeg2_default()
            .with_scene(0.65, 0.55, 300.0)
            .expect("valid")
            .with_bandwidth(4e6 * 200_000.0 / 500_000.0)
            .expect("valid");
        let mut rng = StdRng::seed_from_u64(11);
        (0..n)
            .map(|_| {
                model
                    .generate_trace(rounds as f64, 1.0, &mut rng)
                    .expect("valid")
            })
            .collect()
    };
    let shuffled_traces: Vec<mzd_workload::Trace> = {
        use rand::seq::SliceRandom as _;
        let mut rng = StdRng::seed_from_u64(12);
        correlated_traces
            .iter()
            .map(|t| {
                let mut sizes = t.sizes().to_vec();
                sizes.shuffle(&mut rng);
                mzd_workload::Trace::new(sizes, t.display_time()).expect("valid")
            })
            .collect()
    };

    println!("  variant        mean frag   sd frag   lag-1 corr    p_late   P[>= {g_per_window} glitches in {window}]");
    for (name, traces) in [
        ("shuffled  ", &shuffled_traces),
        ("correlated", &correlated_traces),
    ] {
        let traces = traces.as_slice();
        let lag1: f64 = traces
            .iter()
            .map(mzd_workload::Trace::lag1_autocorrelation)
            .sum::<f64>()
            / f64::from(n);
        let mean: f64 = traces.iter().map(mzd_workload::Trace::mean).sum::<f64>() / f64::from(n);
        let sd: f64 = (traces
            .iter()
            .map(mzd_workload::Trace::variance)
            .sum::<f64>()
            / f64::from(n))
        .sqrt();
        // Split the run into 1200-round windows: each window yields n
        // per-stream glitch-count samples for the p_error estimate.
        let windows = (rounds / window).max(1);
        let mut engine = SimulationEngine::new(SimConfig::paper_reference().expect("valid"), 9_000)
            .expect("valid");
        let mut failures = 0u64;
        let mut late_rounds = 0u64;
        for _ in 0..windows {
            let acc = engine.run_window_traced(traces, window);
            late_rounds += acc.late_rounds;
            failures += acc
                .glitches_per_stream
                .iter()
                .filter(|&&c| c >= g_per_window)
                .count() as u64;
        }
        let samples = windows * u64::from(n);
        println!(
            "  {name}   {:>8.0}   {:>8.0}   {:>8.3}   {:>7.5}   {:>7.5}",
            mean,
            sd,
            lag1,
            late_rounds as f64 / (windows * window) as f64,
            failures as f64 / samples as f64
        );
    }
    println!("\n  reading: scene correlation fattens the per-stream glitch-count tail");
    println!("  (glitches cluster in hot scenes), so the binomial model of eq. 3.3.4");
    println!("  is optimistic under strong correlation — quantifying the caveat the");
    println!("  paper handles by randomizing placement across disks.");
}

/// B4 — work-ahead buffering (§6 outlook): how much client buffer does
/// it take to absorb the overrun tail?
pub fn buffering(budget: Budget) {
    use mzd_sim::{WorkAheadConfig, WorkAheadSimulator};
    println!("B4: work-ahead prefetching — buying glitch immunity with client buffer\n");
    let rounds = budget.scale(12_000);
    println!("  N = 29 and 31 streams, paper workload, 1 s rounds, {rounds} rounds per cell\n");
    println!("  work-ahead   N=29 glitch rate   N=31 glitch rate   mean buffer (MB, N=29)");
    for wa in [0u32, 1, 2, 4, 8] {
        let mut row = format!("  {wa:>10}");
        let mut buffer_mb = 0.0;
        for n in [29u32, 31] {
            let cfg = WorkAheadConfig {
                base: SimConfig::paper_reference().expect("valid"),
                work_ahead: wa,
            };
            let mut sim = WorkAheadSimulator::new(cfg, 11_000 + u64::from(n)).expect("valid");
            let stats = sim.run(n, rounds);
            row.push_str(&format!("   {:>15.6}", stats.glitch_rate()));
            if n == 29 {
                buffer_mb = stats.buffer_bytes.mean() / 1e6;
            }
        }
        row.push_str(&format!("   {buffer_mb:>12.2}"));
        println!("{row}");
    }
    println!("\n  reading: a couple of prefetched fragments (a few hundred KB of client");
    println!("  buffer) absorb nearly all overruns at loads where the memoryless model");
    println!("  glitches steadily — the quantitative case for the paper's §6 buffering");
    println!("  direction. Note the diminishing returns: overruns cluster, so immunity");
    println!("  saturates once the buffer outlasts a typical overrun burst.");
}

/// B5 — fragment caching: glitch rate vs cache size vs Zipf skew on a
/// shared catalog (the mzd-cache layer's headline experiment).
pub fn cache(budget: Budget) {
    use mzd_sim::cache_sweep::{run_point, CacheSweepConfig};
    println!("B5: fragment cache — glitch rate vs cache size vs popularity skew\n");
    let mut base = CacheSweepConfig::reference().expect("valid config");
    base.streams = 40; // past the cacheless N_max = 28: glitches without help
    base.objects = 24;
    base.object_rounds = 600;
    base.rounds = budget.scale(2_000);
    let hot_set_mb = base.sizes.mean() * f64::from(base.object_rounds) / 1e6;
    println!(
        "  {} streams on one disk (cacheless N_max = 28), {}-object catalog,",
        base.streams, base.objects
    );
    println!(
        "  {:.0} MB per object, LRU cache, {} rounds per cell\n",
        hot_set_mb, base.rounds
    );
    println!("  cache (MB)   skew 0.0           skew 0.8           skew 1.2");
    println!("               glitch/hit         glitch/hit         glitch/hit");
    for (i, cache_mb) in [0.0f64, 60.0, 240.0, 960.0].iter().enumerate() {
        let mut row = format!("  {cache_mb:>9.0}");
        for (j, skew) in [0.0f64, 0.8, 1.2].iter().enumerate() {
            let mut cfg = base.clone();
            cfg.cache_bytes = cache_mb * 1e6;
            cfg.zipf_skew = *skew;
            let seed = 13_000 + (i as u64) * 16 + j as u64;
            let p = run_point(&cfg, seed).expect("valid point");
            row.push_str(&format!(
                "   {:>7.4}/{:>5.1}%",
                p.glitch_rate(),
                p.hit_ratio * 100.0
            ));
        }
        println!("{row}");
    }
    println!("\n  reading: at uniform popularity the cache barely helps (every object");
    println!("  is equally cold), while at video-store skew a cache holding a few");
    println!("  objects' worth of fragments absorbs most lookups and pulls an");
    println!("  over-admitted disk back under its glitch budget — the effect the");
    println!("  server's cache-aware admission mode converts into extra streams.");
}

/// B6 — drift injection: detection latency of the online conformance
/// checker when placement skews to the inner zones mid-run.
pub fn drift(budget: Budget) {
    use mzd_sim::{run_drift_scenario, DriftScenarioConfig};
    println!("B6: model drift — online conformance vs zone-skewed placement\n");
    let skew_at = 256u64;
    let rounds = budget.scale(4_096).max(skew_at + 512);
    println!("  scenario: 26 streams on the Table 1 disk; at round {skew_at} the");
    println!("  placement skews to the 4 innermost (slowest) zones while the");
    println!("  admission model keeps assuming capacity-uniform layout.");
    println!("  control: same seed, no skew ({rounds} rounds each)\n");
    println!("  run       raised at   latency   drifts   late rounds   tail>q95");
    for (label, skew) in [("skewed", Some(skew_at)), ("control", None)] {
        let cfg = DriftScenarioConfig::paper_default(rounds, skew);
        let r = run_drift_scenario(&cfg, 42).expect("valid scenario");
        let (raised, latency) = match r.drift_round {
            Some(round) => (
                format!("{round}"),
                format!("{}", round.saturating_sub(skew_at)),
            ),
            None => ("never".to_string(), "-".to_string()),
        };
        println!(
            "  {label:<8}  {raised:>9}   {latency:>7}   {:>6}   {:>11}   {:>7.1}%",
            r.drifts_raised,
            r.late_rounds,
            100.0 * r.final_tail_exceedance
        );
    }
    println!("\n  reading: the checker raises `slo.drift` within ~100 rounds of the");
    println!("  skew (the window must accumulate enough tail mass for the Wilson");
    println!("  bound to clear the tolerance), while the unskewed control never");
    println!("  alerts — the conservative seek model keeps its PIT tail below the");
    println!("  nominal 5%. This is the alarm that makes cache-aware");
    println!("  over-admission safe to run unattended.");
}

/// Machine-readable sweep outputs land under `out/` (gitignored), not
/// the repo root; CI diffs and uploads them from there.
fn out_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("out");
    std::fs::create_dir_all(dir).expect("create out/");
    dir.join(name)
}

/// B7 — fault injection: the fault-priced admission limit vs the
/// observed glitch rate under a media-error sweep. Also writes the
/// machine-readable `out/FAULT_sweep.json` that CI diffs against a
/// golden copy: the sweep is a pure function of (seed, rounds), so any
/// drift in the injector, the retry policy, or the analytic inflation
/// shows up as a byte diff.
pub fn faults(budget: Budget) {
    use mzd_fault::{FaultConfig, FaultModel};
    use mzd_sim::RoundSimulator;

    println!("B7: fault injection — fault-priced admission vs observed glitch rate\n");
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let rounds = budget.scale(4_000);
    let (m, g, eps, t) = (1_200u64, 12u64, 0.01, 1.0);
    let n_clean = model.n_max_error(t, m, g, eps).expect("clean n_max");
    println!("  Table 1 disk, paper workload, glitch guarantee (m = {m}, g = {g}, eps = {eps});");
    println!("  clean N_max = {n_clean}, {rounds} simulated rounds per cell\n");
    println!("  p_media   N_max(faulted)   glitch rate @ clean N   glitch rate @ faulted N");

    let media_rates = [0.0f64, 0.005, 0.01, 0.02, 0.05];
    let mut body = String::new();
    body.push_str(&format!(
        "{{\n  \"schema\": \"mzd-fault-sweep/v1\",\n  \"quick\": {},\n  \
         \"rounds\": {rounds},\n  \"n_max_clean\": {n_clean},\n  \"entries\": [\n",
        budget.quick
    ));
    for (i, p_media) in media_rates.iter().enumerate() {
        let fc = FaultConfig::parse(&format!("media={p_media}")).expect("valid spec");
        let n_faulted = model
            .with_faults(&FaultModel::from_config(&fc))
            .expect("valid fault model")
            .n_max_error(t, m, g, eps)
            .expect("faulted n_max");
        let glitch_rate = |n: u32| -> f64 {
            let cfg = SimConfig {
                faults: Some(fc.clone()),
                ..SimConfig::paper_reference().expect("reference sim")
            };
            let mut sim = RoundSimulator::new(cfg, 17_000 + i as u64).expect("valid sim");
            let mut glitches = 0u64;
            for _ in 0..rounds {
                glitches += sim.run_round(n).glitched_streams.len() as u64;
            }
            glitches as f64 / (u64::from(n) * rounds) as f64
        };
        let at_clean = glitch_rate(n_clean);
        let at_faulted = glitch_rate(n_faulted);
        println!("  {p_media:>7}   {n_faulted:>14}   {at_clean:>21.6}   {at_faulted:>23.6}");
        body.push_str(&format!(
            "    {{\"p_media\": {p_media}, \"n_max_faulted\": {n_faulted}, \
             \"glitch_rate_at_clean_n\": {at_clean:.6}, \
             \"glitch_rate_at_faulted_n\": {at_faulted:.6}}}{}\n",
            if i + 1 < media_rates.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(out_path("FAULT_sweep.json"), body).expect("write fault sweep");
    println!("\n  wrote out/FAULT_sweep.json");
    println!("\n  reading: pricing media errors into the transfer-time LST shrinks the");
    println!("  admission limit by about one stream per percent of error rate; the");
    println!("  simulated glitch rate at the *clean* limit climbs with p_media while");
    println!("  the rate at the fault-priced limit stays pinned near the budget —");
    println!("  the analytic inflation buys back the guarantee the faults ate.");
}

/// B8: the sharded fleet at acceptance scale — 64 nodes x 8 disks with
/// 8-second rounds (~200 streams per disk at the paper's quality
/// target), ~100k admitted streams, a scripted node outage mid-run, and
/// the composed cluster-wide guarantee. The whole run repeats at
/// jobs = 8 and is asserted byte-identical to the jobs = 1 run.
pub fn fleet(budget: Budget) {
    use mzd_cluster::{Cluster, ClusterConfig, NodeOutage};
    use mzd_workload::ObjectSpec;

    let (nodes, disks) = if budget.quick {
        (8u32, 2u32)
    } else {
        (64u32, 8u32)
    };
    let rounds = if budget.quick { 16u64 } else { 40 };
    println!("B8: sharded fleet — {nodes} nodes x {disks} disks, composed stochastic guarantee\n");
    let run = || {
        let mut cfg = ClusterConfig::paper_reference(nodes, disks).expect("valid fleet config");
        cfg.node.round_length = 8.0; // longer rounds: ~200 streams per disk
        cfg.lease_rounds = 3;
        cfg.outages.push(NodeOutage {
            node: nodes - 1,
            start: 6,
            rounds: 10,
        });
        let mut fleet = Cluster::new(cfg, 97).expect("valid fleet");
        let object =
            ObjectSpec::new("fleet", SizeDistribution::paper_default(), 1_200).expect("valid");
        for _ in 0..fleet.guarantee().fleet_capacity {
            fleet.submit(object.clone()).expect("submit");
        }
        let mut reports = Vec::new();
        for _ in 0..rounds {
            reports.push(fleet.run_round());
        }
        (fleet.guarantee().clone(), fleet.status(), reports)
    };
    mzd_par::set_jobs(1);
    let (g, status, reports) = run();
    mzd_par::set_jobs(8);
    let replay = run();
    mzd_par::set_jobs(0);
    let identical = replay.0 == g && replay.1 == status && replay.2 == reports;

    let stream_rounds = status.active_streams as u64 * rounds;
    // Outage charges are priced by the deterministic lease debit, not by
    // the stochastic per-round bound — compare like with like.
    let glitch_rate =
        (status.total_glitches - status.outage_glitches) as f64 / stream_rounds.max(1) as f64;
    println!(
        "  per-disk admission cap n* = {} (single-node cap {})",
        g.n_star, g.n_max_single
    );
    println!(
        "  fleet capacity {} streams across {} serving nodes (+{} spare), {} admitted",
        g.fleet_capacity,
        status.nodes - g.spares,
        g.spares,
        status.active_streams
    );
    println!(
        "  composed guarantee: p_error/stream <= {:.3e}, any-of-fleet <= {:.3e}",
        g.p_error_stream, g.p_error_any
    );
    println!(
        "  lease debit: {} outage rounds charged, glitch budget g = {} -> {}",
        g.outage_rounds, g.g, g.g_effective
    );
    println!(
        "  {rounds} rounds served; observed host glitch rate {glitch_rate:.6} per \
         stream-round (bound {:.6})",
        g.p_glitch_round
    );
    println!(
        "  node outage: {} streams migrated, {} outage glitches charged",
        status.migrations, status.outage_glitches
    );
    assert!(identical, "jobs = 8 replay diverged from the jobs = 1 run");
    println!(
        "\n  determinism: jobs = 8 replay byte-identical to jobs = 1 ({} reports)",
        rounds
    );
    println!("  reading: the composed bound survives sharding — the per-disk cap drops by");
    println!("  a few streams to pay for the lease window, every admitted stream keeps a");
    println!("  p_error within the paper's 1% target, and the any-of-fleet union bound");
    println!("  prices what a guarantee over ~100k streams honestly costs.");
}

/// B9 — gray-failure health sweep: one node creeps toward a swept peak
/// service-time inflation factor, the health subsystem on its default
/// detector config, and three observations per cell — how many rounds
/// detection took (first probation / first ejection), what the hedging
/// ledger spent, and whether the composed glitch budget held
/// observationally. A creeping ramp (rather than a step) is the
/// interesting adversary: suspicion crosses the probation band
/// gradually, so hedged dispatch actually engages before ejection, and
/// the crossing round shifts with the ramp's slope. Writes the
/// machine-readable `out/HEALTH_sweep.json` that CI diffs against a
/// golden copy: the whole sweep is a pure function of its pinned seed,
/// so drift in the detector math, the hedge settlement, or the
/// re-composition shows up as a byte diff.
pub fn health(budget: Budget) {
    use mzd_cluster::{Cluster, ClusterConfig};
    use mzd_workload::ObjectSpec;

    println!("B9: gray-failure health — inflation factor vs detection latency vs budget\n");
    let (nodes, disks, gray_node) = (8u32, 1u32, 2u32);
    let (rounds, ramp_start, ramp_len) = if budget.quick {
        (200u64, 40u64, 120u64)
    } else {
        (640, 40, 240)
    };
    let factors = [1.5f64, 2.0, 2.5, 3.0];
    let warmup = mzd_health::HealthConfig::default().warmup_rounds;
    println!(
        "  {nodes}-node fleet x {disks} disk(s)/node, node {gray_node} creeping to the peak \
         factor\n  over rounds {ramp_start}..{}, {rounds} rounds per cell",
        ramp_start + ramp_len
    );
    println!("  default detector config (warmup {warmup} rounds, suspicion raise 6 / eject 12)\n");
    println!(
        "  peak     gray probation@   gray ejection@   hedges (won)   effective cap   \
         glitch rate   bound      held"
    );

    let mut body = String::new();
    body.push_str(&format!(
        "{{\n  \"schema\": \"mzd-health-sweep/v1\",\n  \"quick\": {},\n  \
         \"nodes\": {nodes},\n  \"disks\": {disks},\n  \"gray_node\": {gray_node},\n  \
         \"rounds\": {rounds},\n  \"ramp_start\": {ramp_start},\n  \
         \"ramp_len\": {ramp_len},\n  \"entries\": [\n",
        budget.quick
    ));
    for (i, factor) in factors.iter().enumerate() {
        let mut cfg = ClusterConfig::paper_reference(nodes, disks).expect("valid fleet config");
        cfg.node.faults = Some(
            mzd_fault::FaultConfig::parse(&format!("gray=creep:{ramp_start}:{ramp_len}:{factor}"))
                .expect("valid gray spec"),
        );
        cfg.gray_node = gray_node;
        let mut fleet = Cluster::new(cfg, 113).expect("valid fleet");
        fleet
            .enable_health(mzd_health::HealthConfig::default())
            .expect("health config");
        let guarantee = fleet.guarantee().clone();
        let object =
            ObjectSpec::new("gray", SizeDistribution::paper_default(), 1_200).expect("valid");
        for _ in 0..guarantee.fleet_capacity {
            fleet.submit(object.clone()).expect("submit");
        }
        let mut host_glitches = 0u64;
        let mut stream_rounds = 0u64;
        let mut probation_round: Option<u64> = None;
        let mut ejection_round: Option<u64> = None;
        for _ in 0..rounds {
            stream_rounds += fleet.active_streams() as u64;
            let report = fleet.run_round();
            host_glitches += report.glitched_streams;
            // Track the gray node specifically, and only from creep
            // onset: fleet-wide counters also tick for the warmup
            // transient that grazes probation on whichever node ran
            // hottest (hedging covers it, hysteresis clears it).
            let gray = fleet.node_health(gray_node).expect("health enabled");
            if probation_round.is_none()
                && report.round >= ramp_start
                && gray == mzd_health::NodeHealth::Probation
            {
                probation_round = Some(report.round);
            }
            if ejection_round.is_none() && gray == mzd_health::NodeHealth::Ejected {
                ejection_round = Some(report.round);
            }
        }
        let h = fleet.health_status().expect("health enabled");
        let glitch_rate = host_glitches as f64 / stream_rounds.max(1) as f64;
        // The composed per-round bound prices the host glitch rate the
        // admission level was chosen for; holding it observationally
        // through a gray episode is what ejection + re-composition buy.
        let held = glitch_rate <= guarantee.p_glitch_round;
        let fmt_round = |r: Option<u64>| r.map_or_else(|| "never".into(), |v| format!("r{v}"));
        println!(
            "  {factor:>6.2}   {:>15}   {:>14}   {:>6} ({})   {:>13}   {glitch_rate:>11.6}   \
             {:<8.6}   {held}",
            fmt_round(probation_round),
            fmt_round(ejection_round),
            h.hedges_issued,
            h.hedges_won,
            h.recomposed.effective_capacity,
            guarantee.p_glitch_round,
        );
        let json_round = |r: Option<u64>| r.map_or_else(|| "null".into(), |v| v.to_string());
        body.push_str(&format!(
            "    {{\"factor\": {factor}, \"gray_probation_round\": {}, \
             \"gray_ejection_round\": {}, \"probations\": {}, \"clears\": {}, \
             \"hedges_issued\": {}, \"hedges_won\": {}, \"hedge_slack_debited\": {:.6}, \
             \"effective_capacity\": {}, \"degrade_rung\": {}, \"frozen\": {}, \
             \"glitch_rate\": {glitch_rate:.6}, \"glitch_bound\": {:.6}, \
             \"budget_held\": {held}}}{}\n",
            json_round(probation_round),
            json_round(ejection_round),
            h.probations,
            h.clears,
            h.hedges_issued,
            h.hedges_won,
            h.hedge_slack_debited,
            h.recomposed.effective_capacity,
            h.recomposed.degrade_rung,
            h.recomposed.frozen,
            guarantee.p_glitch_round,
            if i + 1 < factors.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(out_path("HEALTH_sweep.json"), body).expect("write health sweep");
    println!("\n  wrote out/HEALTH_sweep.json");
    println!("\n  reading: detection latency shrinks as the peak factor grows — a steep");
    println!("  ramp crosses the suspicion thresholds within a few rounds of onset,");
    println!("  while a shallow creeper hides near the detector's noise floor for");
    println!("  longer. Hedged dispatch covers the probation window in every cell, and");
    println!("  ejection lands while the creep is still mild — before the inflated");
    println!("  sweeps start overrunning rounds — so the observed host glitch rate");
    println!("  stays at or under the composed per-round bound the admission level");
    println!("  was priced for.");
}

/// Run everything in DESIGN.md order.
pub fn all(budget: Budget) {
    let line = "=".repeat(72);
    for (i, f) in [
        fig1 as fn(Budget),
        table2,
        |_| ex31(),
        |_| ex32(),
        |_| ex33(),
        |_| worst_case(),
        |_| approx(),
        |_| nmax_tables(),
        ablate_zone,
        ablate_scan,
        ablate_dist,
        ablate_placement,
        ablate_correlation,
        baselines,
        mixed,
        saddlepoint,
        buffering,
        cache,
        drift,
        faults,
        fleet,
        health,
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            println!("\n{line}\n");
        }
        f(budget);
    }
}

// ---------------------------------------------------------------------------
// bench-summary: machine-readable perf numbers for CI artifacts.

/// One timed operation at one worker-pool width.
struct BenchEntry {
    name: &'static str,
    jobs: usize,
    ns_per_op: f64,
}

/// Median of several timed batches (one warmup batch first). The vendored
/// criterion shim has no JSON output, so the summary measures with plain
/// `Instant` loops — coarser than criterion, but stable enough for the
/// jobs=1 vs jobs=4 speedup ratios CI tracks.
fn median_ns_per_op(iters: u32, mut op: impl FnMut()) -> f64 {
    let iters = iters.max(1);
    for _ in 0..iters.div_ceil(4) {
        op();
    }
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            op();
        }
        samples.push(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn write_summary(path: &str, suite: &str, entries: &[BenchEntry]) {
    // jobs = 4 speedups only materialize when the host actually has the
    // threads; record the hardware width so CI readers can interpret a
    // ~1x ratio on a single-core runner correctly.
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut body = String::new();
    body.push_str(&format!(
        "{{\n  \"schema\": \"mzd-bench-summary/v1\",\n  \"suite\": \"{suite}\",\n  \
         \"host_threads\": {host_threads},\n  \"entries\": [\n"
    ));
    for (i, e) in entries.iter().enumerate() {
        let speedup = if e.jobs > 1 {
            entries
                .iter()
                .find(|base| base.name == e.name && base.jobs == 1)
                .map(|base| base.ns_per_op / e.ns_per_op)
        } else {
            None
        };
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"jobs\": {}, \"ns_per_op\": {:.1}",
            e.name, e.jobs, e.ns_per_op
        ));
        if let Some(s) = speedup {
            body.push_str(&format!(", \"speedup_vs_jobs1\": {s:.2}"));
        }
        body.push('}');
        body.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write bench summary");
    println!("  wrote {path}");
}

/// Run a named operation at jobs = 1 and jobs = 4 and push both timings.
fn timed_pair(entries: &mut Vec<BenchEntry>, name: &'static str, iters: u32, mut op: impl FnMut()) {
    for jobs in [1usize, 4] {
        mzd_par::set_jobs(jobs);
        entries.push(BenchEntry {
            name,
            jobs,
            ns_per_op: median_ns_per_op(iters, &mut op),
        });
    }
    mzd_par::set_jobs(0);
}

/// Measure every summary entry under `budget`. Shared by `bench-summary`
/// (artifact generation) and `bench-check` (regression gate) so the two
/// commands can never drift apart in what they time.
///
/// The first core entry is `calibration_p_late_bound` — a fixed, purely
/// CPU-bound Chernoff evaluation with no allocation or parallelism. Its
/// ratio against the committed baseline estimates how fast the current
/// host is relative to the baseline host, letting the regression gate
/// rescale thresholds instead of flagging slow CI runners as
/// regressions.
fn measure_entries(budget: Budget) -> (Vec<BenchEntry>, Vec<BenchEntry>) {
    use std::hint::black_box;
    let model = GuaranteeModel::paper_reference().expect("reference model");
    let thresholds = [0.0001, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25];
    let table_iters = if budget.quick { 2 } else { 8 };
    let cdf_iters = if budget.quick { 2 } else { 8 };

    let mut core = Vec::new();
    core.push(BenchEntry {
        name: "calibration_p_late_bound",
        jobs: 1,
        ns_per_op: median_ns_per_op(if budget.quick { 400 } else { 4000 }, || {
            black_box(
                model
                    .p_late_bound(black_box(27), black_box(1.0))
                    .expect("valid t"),
            );
        }),
    });
    timed_pair(
        &mut core,
        "admission_table_late_8_thresholds",
        table_iters,
        || {
            black_box(
                model
                    .admission_table_late(black_box(1.0), black_box(&thresholds))
                    .expect("valid"),
            );
        },
    );
    timed_pair(
        &mut core,
        "admission_table_error_8_thresholds",
        table_iters,
        || {
            black_box(
                model
                    .admission_table_error(1.0, 1200, 12, black_box(&thresholds))
                    .expect("valid"),
            );
        },
    );
    timed_pair(&mut core, "cdf_build_n28_257pt", cdf_iters, || {
        black_box(
            mzd_core::ServiceTimeCdf::with_resolution(&model, black_box(28), 257).expect("builds"),
        );
    });

    let cfg = SimConfig::paper_reference().expect("reference sim");
    let rep_rounds = budget.scale(1600);
    let mut sim = Vec::new();
    timed_pair(&mut sim, "replicated_p_late_16_reps", 1, || {
        black_box(
            mzd_sim::estimate_p_late_par(&cfg, black_box(27), rep_rounds, 16, 42)
                .expect("valid sim"),
        );
    });
    {
        let mut one = mzd_sim::RoundSimulator::new(cfg.clone(), 7).expect("valid");
        sim.push(BenchEntry {
            name: "simulate_round_n27",
            jobs: 1,
            ns_per_op: median_ns_per_op(if budget.quick { 200 } else { 2000 }, || {
                black_box(one.run_round(27));
            }),
        });
    }
    {
        // Event-engine hot path: the same N = 27 round, but with the
        // request arena and draw buffer preallocated to the round size
        // (`with_capacity`), so the steady state is allocation-free —
        // the contract asserted by crates/sim/tests/alloc_steady_state.rs.
        // `simulate_round_n27` above is retained for artifact continuity
        // with the pre-rewrite baselines.
        let mut one = mzd_sim::RoundSimulator::with_capacity(cfg.clone(), 7, 27).expect("valid");
        sim.push(BenchEntry {
            name: "engine_round_n27",
            jobs: 1,
            ns_per_op: median_ns_per_op(if budget.quick { 200 } else { 2000 }, || {
                black_box(one.run_round(27));
            }),
        });
    }
    {
        use mzd_cache::{CacheConfig, CachePolicy, FragmentCache, FragmentKey};
        let mut cache = FragmentCache::new(CacheConfig {
            capacity_bytes: 4096.0 * 200_000.0,
            policy: CachePolicy::Lru,
        })
        .expect("valid config");
        for f in 0..4096u32 {
            cache.insert(
                FragmentKey {
                    object: u64::from(f % 32),
                    fragment: f / 32,
                },
                200_000.0,
                0.02,
            );
        }
        let mut f = 0u32;
        sim.push(BenchEntry {
            name: "cache_hit_lookup",
            jobs: 1,
            ns_per_op: median_ns_per_op(100_000, || {
                f = (f + 1) % 128;
                black_box(cache.lookup(FragmentKey {
                    object: u64::from(f % 32),
                    fragment: f / 32,
                }));
            }),
        });
    }
    {
        // One full fleet round — dispatch pulls, node steps, report
        // folding — on a 4-node fleet held at capacity with effectively
        // endless objects, so every iteration does the same work.
        // jobs = 1 only: the multi-worker timing of `run_round` measures
        // the scheduler on starved CI hosts, not the code.
        let cfg = mzd_cluster::ClusterConfig::paper_reference(4, 1).expect("valid fleet config");
        let mut fleet = mzd_cluster::Cluster::new(cfg, 11).expect("valid fleet");
        let object =
            mzd_workload::ObjectSpec::new("bench", SizeDistribution::paper_default(), 1_000_000)
                .expect("valid object");
        for _ in 0..fleet.guarantee().fleet_capacity {
            fleet.submit(object.clone()).expect("submit");
        }
        mzd_par::set_jobs(1); // run_round parallelizes node steps internally
        sim.push(BenchEntry {
            name: "cluster_dispatch_round_4n",
            jobs: 1,
            ns_per_op: median_ns_per_op(if budget.quick { 200 } else { 2000 }, || {
                black_box(fleet.run_round());
            }),
        });
        // Every per-disk round in the fleet now routes through the event
        // core, so this measures the same dispatch/step/fold cycle under
        // its post-rewrite canonical name; `cluster_dispatch_round_4n`
        // stays for continuity with the pre-rewrite artifact trail.
        sim.push(BenchEntry {
            name: "engine_fleet_dispatch_4n",
            jobs: 1,
            ns_per_op: median_ns_per_op(if budget.quick { 200 } else { 2000 }, || {
                black_box(fleet.run_round());
            }),
        });
        mzd_par::set_jobs(0);
    }
    (core, sim)
}

/// Machine-readable micro-benchmark summary: writes `BENCH_core.json`
/// (solver-side costs), `BENCH_sim.json` (simulator-side costs) and a
/// combined `BENCH_baseline.json` into the current directory, each entry
/// in ns/op with jobs = 1 vs jobs = 4 speedups for the parallelized
/// paths. To refresh the regression-gate baseline, copy the combined
/// file over `crates/bench/golden/BENCH_baseline.json` — the committed
/// golden is generated with `--quick`, and `bench-check` always measures
/// with the quick protocol so the two stay comparable.
pub fn bench_summary(budget: Budget) {
    println!("bench-summary: ns/op at jobs = 1 vs jobs = 4\n");
    let (core, sim) = measure_entries(budget);
    write_summary("BENCH_core.json", "core", &core);
    write_summary("BENCH_sim.json", "sim", &sim);
    let combined: Vec<BenchEntry> = core
        .iter()
        .chain(&sim)
        .map(|e| BenchEntry {
            name: e.name,
            jobs: e.jobs,
            ns_per_op: e.ns_per_op,
        })
        .collect();
    write_summary("BENCH_baseline.json", "baseline", &combined);

    for e in &combined {
        println!(
            "  {:<38} jobs={}  {:>14.1} ns/op",
            e.name, e.jobs, e.ns_per_op
        );
    }

    // Pre-rewrite round cost, pinned from the committed golden at the
    // last per-request-loop commit, with its calibration entry from the
    // same run. Scaling the legacy number by this host's calibration
    // ratio (same clamp as bench-check) turns the pin into an estimate
    // of what the old loop would cost *here*, so the reported speedup
    // compares like with like instead of two different machines.
    const LEGACY_ROUND_NS: f64 = 2789.6;
    const LEGACY_CAL_NS: f64 = 1837.4;
    let at_jobs1 = |name: &str| {
        combined
            .iter()
            .find(|e| e.name == name && e.jobs == 1)
            .map(|e| e.ns_per_op)
    };
    if let (Some(cal), Some(engine)) = (
        at_jobs1("calibration_p_late_bound"),
        at_jobs1("engine_round_n27"),
    ) {
        let scaled_legacy = LEGACY_ROUND_NS * (cal / LEGACY_CAL_NS).clamp(0.25, 4.0);
        println!(
            "\n  event-engine round (N=27): {engine:.1} ns/op vs {scaled_legacy:.1} ns/op \
             legacy loop (host-scaled) -> {:.2}x rounds/sec",
            scaled_legacy / engine
        );
    }
}

/// Perf-regression gate: re-measure every summary entry with the quick
/// protocol and compare against the committed
/// `crates/bench/golden/BENCH_baseline.json`.
///
/// Host-speed normalization: the baseline's thresholds are scaled by the
/// calibration ratio (fresh / baseline time of the fixed
/// `calibration_p_late_bound` op), clamped to `[0.25, 4]` so a wildly
/// mis-measured calibration cannot silence the gate entirely. An entry
/// fails when `fresh > scaled_baseline * 1.25 + 500 ns` — 25% headroom
/// for measurement noise plus an absolute slack that keeps sub-µs ops
/// from tripping on scheduler jitter. Exits non-zero on any regression
/// or on a catalog mismatch (entry measured but absent from the golden).
///
/// Only `jobs = 1` entries gate. Multi-worker timings on a host with
/// fewer free cores than workers measure the OS scheduler, not the
/// code (observed 2x swings run-to-run on a 1-CPU container), so
/// `jobs = 4` rows are printed for the artifact trail but never fail
/// the build — the jobs=1 row of the same operation catches any real
/// code regression.
pub fn bench_check(_: Budget) {
    // The committed golden is generated with --quick; always measure the
    // same protocol, whatever flag the caller passed. (budget.scale
    // changes the per-op *work* of replicated_p_late, so quick and full
    // runs time different operations and are not comparable.)
    let budget = Budget { quick: true };
    println!("bench-check: fresh --quick measurement vs committed baseline\n");

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/BENCH_baseline.json");
    let text = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("cannot read {golden_path}: {e}"));
    let doc = mzd_telemetry::json::parse(&text).expect("baseline parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("mzd-bench-summary/v1"),
        "unexpected baseline schema in {golden_path}"
    );
    // (name, jobs) -> baseline ns/op.
    let mut baseline: Vec<(String, usize, f64)> = Vec::new();
    for e in doc
        .get("entries")
        .and_then(mzd_telemetry::json::Value::as_array)
        .expect("baseline has entries")
    {
        let name = e.get("name").and_then(|v| v.as_str()).expect("entry name");
        let jobs = e.get("jobs").and_then(|v| v.as_f64()).expect("entry jobs") as usize;
        let ns = e
            .get("ns_per_op")
            .and_then(|v| v.as_f64())
            .expect("entry ns_per_op");
        baseline.push((name.to_string(), jobs, ns));
    }
    let lookup = |name: &str, jobs: usize| {
        baseline
            .iter()
            .find(|(n, j, _)| n == name && *j == jobs)
            .map(|(_, _, ns)| *ns)
    };

    let (core, sim) = measure_entries(budget);
    let fresh: Vec<&BenchEntry> = core.iter().chain(&sim).collect();

    // The event-engine entries are load-bearing: they are the only
    // timings of the post-rewrite hot path, so the catalog must always
    // measure them at jobs = 1 (and the golden must carry them — a
    // missing golden row fails below as MISSING).
    for required in ["engine_round_n27", "engine_fleet_dispatch_4n"] {
        assert!(
            fresh.iter().any(|e| e.name == required && e.jobs == 1),
            "bench catalog no longer measures {required} at jobs = 1"
        );
    }

    let cal_fresh = fresh
        .iter()
        .find(|e| e.name == "calibration_p_late_bound")
        .expect("calibration entry measured")
        .ns_per_op;
    let cal_base = lookup("calibration_p_late_bound", 1)
        .expect("baseline has calibration_p_late_bound — refresh the golden with bench-summary");
    let ratio = (cal_fresh / cal_base).clamp(0.25, 4.0);
    println!(
        "  host calibration: fresh {cal_fresh:.0} ns vs baseline {cal_base:.0} ns \
         -> threshold scale {ratio:.2}x\n"
    );

    println!(
        "  {:<38} jobs {:>12} {:>12} {:>12}  status",
        "entry", "baseline", "allowed", "fresh"
    );
    let mut failures = 0u32;
    for e in &fresh {
        if e.name == "calibration_p_late_bound" {
            continue;
        }
        let gated = e.jobs == 1;
        let Some(base) = lookup(e.name, e.jobs) else {
            println!(
                "  {:<38}    {}  {:>12} {:>12} {:>12.0}  MISSING from golden",
                e.name, e.jobs, "-", "-", e.ns_per_op
            );
            if gated {
                failures += 1;
            }
            continue;
        };
        let allowed = base * ratio * 1.25 + 500.0;
        let regressed = gated && e.ns_per_op > allowed;
        if regressed {
            failures += 1;
        }
        println!(
            "  {:<38}    {}  {:>12.0} {:>12.0} {:>12.0}  {}",
            e.name,
            e.jobs,
            base,
            allowed,
            e.ns_per_op,
            if regressed {
                "REGRESSED"
            } else if gated {
                "ok"
            } else {
                "info (jobs>1 not gated)"
            }
        );
    }
    if failures > 0 {
        eprintln!(
            "\nbench-check FAILED: {failures} entr{} regressed beyond 25% (+500 ns) of the \
             host-scaled baseline.\nIf the slowdown is intended, refresh the golden:\n  \
             cargo run --release -p mzd-bench --bin experiments -- bench-summary --quick\n  \
             cp BENCH_baseline.json crates/bench/golden/BENCH_baseline.json",
            if failures == 1 { "y" } else { "ies" }
        );
        std::process::exit(1);
    }
    println!("\nbench-check passed: no entry beyond the noise-adjusted threshold.");
}
