//! Experiment dispatcher: regenerate any table or figure of the paper.
//!
//! ```text
//! experiments <id> [--quick] [--jobs N]
//!
//! ids: fig1 table2 ex31 ex32 ex33 wc approx nmax
//!      ablate-zone ablate-scan ablate-dist cache bench-summary all
//! ```

use mzd_bench::Budget;

mod experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut id: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(jobs) => mzd_par::set_jobs(jobs),
                    None => {
                        eprintln!("--jobs expects a worker count");
                        std::process::exit(2);
                    }
                }
            }
            a if !a.starts_with("--") => id = id.or(Some(a)),
            _ => {}
        }
        i += 1;
    }
    let budget = Budget { quick };

    match id {
        Some("fig1") => experiments::fig1(budget),
        Some("table2") => experiments::table2(budget),
        Some("ex31") => experiments::ex31(),
        Some("ex32") => experiments::ex32(),
        Some("ex33") => experiments::ex33(),
        Some("wc") => experiments::worst_case(),
        Some("approx") => experiments::approx(),
        Some("nmax") => experiments::nmax_tables(),
        Some("ablate-zone") => experiments::ablate_zone(budget),
        Some("ablate-scan") => experiments::ablate_scan(budget),
        Some("ablate-dist") => experiments::ablate_dist(budget),
        Some("ablate-place") => experiments::ablate_placement(budget),
        Some("ablate-corr") => experiments::ablate_correlation(budget),
        Some("baselines") => experiments::baselines(budget),
        Some("mixed") => experiments::mixed(budget),
        Some("saddle") => experiments::saddlepoint(budget),
        Some("buffering") => experiments::buffering(budget),
        Some("cache") => experiments::cache(budget),
        Some("drift") => experiments::drift(budget),
        Some("faults") => experiments::faults(budget),
        Some("fleet") => experiments::fleet(budget),
        Some("health") => experiments::health(budget),
        Some("bench-summary") => experiments::bench_summary(budget),
        Some("bench-check") => experiments::bench_check(budget),
        Some("all") => experiments::all(budget),
        other => {
            if let Some(o) = other {
                eprintln!("unknown experiment id: {o}\n");
            }
            eprintln!(
                "usage: experiments <id> [--quick] [--jobs N]\n\n\
                 ids:\n  \
                 fig1         Figure 1: analytic vs simulated p_late(N)\n  \
                 table2       Table 2: analytic vs simulated p_error\n  \
                 ex31         §3.1 worked example (single-zone)\n  \
                 ex32         §3.2 worked example (multi-zone)\n  \
                 ex33         §3.3 worked example (glitch guarantee)\n  \
                 wc           eq. 4.1 worst-case admission limits\n  \
                 approx       §3.2 Gamma-approximation accuracy\n  \
                 nmax         §5 admission lookup tables\n  \
                 ablate-zone  zone-handling ablation\n  \
                 ablate-scan  SCAN vs FCFS ablation\n  \
                 ablate-dist  size-distribution ablation\n  \
                 ablate-place placement-policy ablation\n  \
                 ablate-corr  temporal-correlation ablation\n  \
                 baselines    CLT/Chebyshev/independent-seek baselines\n  \
                 mixed        mixed continuous+discrete workload\n  \
                 saddle       saddlepoint vs Chernoff vs simulation\n  \
                 buffering    work-ahead prefetching (\u{a7}6 buffering)\n  \
                 cache        fragment cache: glitch rate vs size vs Zipf skew\n  \
                 drift        model drift: conformance checker vs zone skew\n  \
                 faults       fault injection: fault-priced N_max vs observed\n               \
                 glitch rate (writes out/FAULT_sweep.json)\n  \
                 fleet        sharded fleet at scale: 64 nodes x 8 disks, ~100k\n               \
                 streams, composed p_error, jobs=1 vs jobs=8 determinism\n  \
                 health       gray-failure health: inflation factor vs detection\n               \
                 latency vs budget held (writes out/HEALTH_sweep.json)\n  \
                 bench-summary  write BENCH_core.json / BENCH_sim.json /\n                 \
                 BENCH_baseline.json (ns/op, jobs=1 vs jobs=4 speedups)\n  \
                 bench-check  perf-regression gate: fresh --quick measurement vs\n               \
                 crates/bench/golden/BENCH_baseline.json (exit 1 on >25%\n               \
                 host-scaled regression)\n  \
                 all          everything, in order\n\n\
                 --jobs N     worker threads for parallel phases\n               \
                 (results are byte-identical for any N)"
            );
            std::process::exit(2);
        }
    }
}
