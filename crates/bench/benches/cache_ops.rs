//! Cost of the fragment cache's hot-path operations.
//!
//! The cache sits in front of every per-stream disk request, so a lookup
//! runs once per stream per round. Targets: a hit lookup is one hash
//! probe plus an intrusive-list splice — O(1) and nanosecond-scale; a
//! miss-and-fill (begin_fetch + complete_fetch) stays well under a
//! microsecond; a fill that must evict to make room adds only the
//! victim-selection walk for the policy in play.

use criterion::{criterion_group, criterion_main, Criterion};
use mzd_cache::{CacheConfig, CachePolicy, FragmentCache, FragmentKey, Lookup};
use std::hint::black_box;

const FRAGMENT_BYTES: f64 = 200_000.0;

fn key(object: u64, fragment: u32) -> FragmentKey {
    FragmentKey { object, fragment }
}

fn filled_cache(policy: CachePolicy, fragments: u32) -> FragmentCache {
    let mut cache = FragmentCache::new(CacheConfig {
        capacity_bytes: f64::from(fragments) * FRAGMENT_BYTES,
        policy,
    })
    .expect("valid config");
    for f in 0..fragments {
        cache.insert(key(u64::from(f % 32), f / 32), FRAGMENT_BYTES, 0.02);
    }
    cache
}

fn bench_cache_ops(c: &mut Criterion) {
    // Hit lookup: resident key, no eviction, no fill.
    let mut cache = filled_cache(CachePolicy::Lru, 4096);
    let mut f = 0u32;
    c.bench_function("cache_hit_lookup", |b| {
        b.iter(|| {
            f = (f + 1) % 128;
            let got = cache.lookup(black_box(key(u64::from(f % 32), f / 32)));
            assert!(matches!(got, Lookup::Hit));
        });
    });

    // Miss + fill into a cache with free room: lookup, begin_fetch, then
    // complete_fetch inserting the fragment (each iteration evicts the
    // fragment again so the cache never saturates).
    let mut cache = filled_cache(CachePolicy::Lru, 64);
    let cold = key(999, 0);
    c.bench_function("cache_miss_and_fill", |b| {
        b.iter(|| {
            cache.evict(cold);
            assert!(matches!(cache.lookup(black_box(cold)), Lookup::Miss));
            cache.begin_fetch(cold);
            cache.complete_fetch(cold, FRAGMENT_BYTES, black_box(0.02));
        });
    });

    // Evicting fill: the cache is at capacity, so every insert must pick
    // and push out a victim first. Benchmarked per policy since victim
    // selection is where they differ.
    for policy in [CachePolicy::Lru, CachePolicy::CostAware] {
        let mut cache = filled_cache(policy, 1024);
        let mut next = 10_000u64;
        c.bench_function(&format!("cache_evicting_fill_{}", policy.name()), |b| {
            b.iter(|| {
                next += 1;
                cache.insert(black_box(key(next, 0)), FRAGMENT_BYTES, 0.02);
            });
        });
    }
}

criterion_group!(benches, bench_cache_ops);
criterion_main!(benches);
