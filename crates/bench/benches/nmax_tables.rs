//! Cost of precomputing the §5 admission lookup tables — the operation an
//! operator re-runs whenever the disk configuration or the workload
//! statistics change.

use criterion::{criterion_group, criterion_main, Criterion};
use mzd_core::GuaranteeModel;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let model = GuaranteeModel::paper_reference().expect("valid model");
    let thresholds = [0.0001, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25];

    c.bench_function("admission_table_late_8_thresholds", |b| {
        b.iter(|| {
            model
                .admission_table_late(black_box(1.0), black_box(&thresholds))
                .expect("valid")
        })
    });

    c.bench_function("admission_table_error_8_thresholds", |b| {
        b.iter(|| {
            model
                .admission_table_error(
                    black_box(1.0),
                    black_box(1200),
                    black_box(12),
                    black_box(&thresholds),
                )
                .expect("valid")
        })
    });

    // The same table builds with the worker pool pinned: jobs = 1 is the
    // serial baseline (identical output, same code path), jobs = 4 the
    // speedup target the PR acceptance demands.
    for jobs in [1usize, 4] {
        c.bench_function(
            &format!("admission_table_late_8_thresholds_jobs{jobs}"),
            |b| {
                mzd_par::set_jobs(jobs);
                b.iter(|| {
                    model
                        .admission_table_late(black_box(1.0), black_box(&thresholds))
                        .expect("valid")
                });
                mzd_par::set_jobs(0);
            },
        );
        c.bench_function(
            &format!("admission_table_error_8_thresholds_jobs{jobs}"),
            |b| {
                mzd_par::set_jobs(jobs);
                b.iter(|| {
                    model
                        .admission_table_error(
                            black_box(1.0),
                            black_box(1200),
                            black_box(12),
                            black_box(&thresholds),
                        )
                        .expect("valid")
                });
                mzd_par::set_jobs(0);
            },
        );
    }

    c.bench_function("guarantee_model_construction", |b| {
        let disk = mzd_disk::profiles::quantum_viking_2_1()
            .build()
            .expect("valid disk");
        b.iter(|| {
            GuaranteeModel::new(
                black_box(disk.clone()),
                black_box(200_000.0),
                black_box(1e10),
                mzd_core::ZoneHandling::Discrete,
            )
            .expect("valid")
        })
    });
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
