//! Cost of the profiling/flight-recorder layer itself.
//!
//! The phase profiler and flight recorder ride inside `run_round`, so
//! their disabled cost is paid by *every* serving round. Targets:
//!
//! * `phase_disabled` — a [`mzd_prof::phase`] guard with profiling off
//!   is one relaxed atomic load plus an inert guard: single-digit ns.
//! * `phase_enabled` — with profiling on, enter+exit is a thread-local
//!   stack push/pop, one `Instant` read pair and a map merge on pop;
//!   the budget is ~1 µs (it runs once per round section, not per
//!   request, so even the enabled cost is invisible next to a
//!   millisecond-scale sweep).
//! * `recorder_push` — one ring-slot write behind a mutex; the snapshot
//!   clone dominates. Budget: low single-digit µs per round.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sample_snapshot() -> mzd_prof::RoundSnapshot {
    mzd_prof::RoundSnapshot {
        round: 41,
        active_streams: 27,
        waiting_streams: 3,
        glitches: 1,
        rung: 0,
        burn_fast: 0.8,
        burn_slow: 0.4,
        burn_long: 0.2,
        cache_hits: 9,
        cache_delayed_hits: 1,
        cache_misses: 17,
        cache_occupancy_bytes: 4.2e7,
        load: vec![14, 13],
        rng_positions: vec![41, 41],
        disks: (0..2)
            .map(|d| mzd_prof::DiskPhases {
                disk: d,
                requests: 14,
                service_time: 0.81,
                late: false,
                seek_time: 0.11,
                rotational_time: 0.29,
                transfer_time: 0.41,
                stall_time: 0.0,
                fault_time: 0.0,
            })
            .collect(),
        faults: mzd_prof::FaultTotals::default(),
    }
}

fn bench_prof(c: &mut Criterion) {
    // The price every unprofiled run pays: guard creation + drop with
    // the global enable flag off.
    mzd_prof::set_profiling(false);
    c.bench_function("phase_disabled", |b| {
        b.iter(|| {
            let _g = mzd_prof::phase(black_box("server.round"));
        });
    });

    mzd_prof::reset_profile();
    mzd_prof::set_profiling(true);
    c.bench_function("phase_enabled", |b| {
        b.iter(|| {
            let _outer = mzd_prof::phase("server.round");
            let _inner = mzd_prof::phase(black_box("sweep"));
        });
    });
    mzd_prof::set_profiling(false);

    let dir = std::env::temp_dir().join(format!("mzd_prof_bench_{}", std::process::id()));
    let recorder = mzd_prof::Recorder::new(mzd_prof::RecorderSettings::new(&dir));
    let snapshot = sample_snapshot();
    c.bench_function("recorder_push", |b| {
        b.iter(|| recorder.push(black_box(snapshot.clone())));
    });

    c.bench_function("flame_render_small", |b| {
        let folded = mzd_prof::collapsed();
        b.iter(|| black_box(mzd_prof::render_flame_svg(black_box(&folded))));
    });
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_prof);
criterion_main!(benches);
