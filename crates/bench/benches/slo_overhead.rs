//! Cost of the SLO monitoring layer.
//!
//! The burn-rate engine and the conformance checker run once per server
//! round, and the tracer records a handful of spans per stream per
//! round — all on the scheduling hot path. Targets: a burn observation
//! is ring-buffer arithmetic (tens of ns), a PIT observation is one CDF
//! interpolation plus bin bookkeeping (sub-µs), and a span record is a
//! vector push. Building the predicted CDF table is the one genuinely
//! expensive step (numerical inversion per grid point) — it happens once
//! per distinct batch size and is benchmarked separately to justify the
//! caching in the server.

use criterion::{criterion_group, criterion_main, Criterion};
use mzd_core::{GuaranteeModel, ServiceTimeCdf};
use mzd_slo::{BurnConfig, BurnRateEngine, ConformanceChecker, ConformanceConfig, Tracer};
use std::hint::black_box;

fn bench_slo(c: &mut Criterion) {
    c.bench_function("burn_observe_round", |b| {
        let mut engine = BurnRateEngine::new(BurnConfig::for_budget(0.01)).expect("valid config");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(engine.observe_round(black_box(28), black_box(i % 2)));
        });
    });

    let model = GuaranteeModel::paper_reference().expect("reference model");
    let cdf = ServiceTimeCdf::with_resolution(&model, 26, 65).expect("valid table");

    c.bench_function("cdf_evaluate", |b| {
        let mut t = 0.5f64;
        b.iter(|| {
            t = if t > 1.4 { 0.5 } else { t + 1e-4 };
            black_box(cdf.evaluate(black_box(t)));
        });
    });

    c.bench_function("conformance_observe", |b| {
        let mut checker =
            ConformanceChecker::new(ConformanceConfig::default()).expect("valid config");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let u = (i % 1000) as f64 / 1000.0;
            black_box(checker.observe(black_box(u)));
        });
    });

    c.bench_function("tracer_record_span", |b| {
        let mut tracer = Tracer::new();
        let root = tracer.root(1);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            let ctx = tracer.child(&root);
            tracer.record(
                "stream.round",
                "stream",
                1,
                black_box(7),
                ts,
                1_000_000,
                ctx,
                &[("round", ts), ("disk", 0)],
            );
        });
    });

    // The one expensive step: building a predicted-CDF table by exact
    // inversion. Run once per distinct per-disk batch size, then cached —
    // this bench is the justification for that cache. Since the CF table
    // refactor (mzd-par PR), one build shares the t-independent φ(ω)
    // evaluations across all grid points instead of re-integrating from
    // scratch per point: the 257-point build at N = 28 dropped from
    // ~345 ms to ~44 ms serial (~8×) on the reference container, and the
    // remaining per-point rotation sweeps fan out across the worker pool
    // on multi-core hosts.
    c.bench_function("cdf_build_n26_65pt", |b| {
        b.iter(|| {
            black_box(ServiceTimeCdf::with_resolution(&model, black_box(26), 65).expect("builds"))
        });
    });
}

criterion_group!(benches, bench_slo);
criterion_main!(benches);
