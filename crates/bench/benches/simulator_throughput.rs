//! Simulator throughput: rounds per second at the paper's reference
//! multiprogramming levels — determines how long the Figure 1 / Table 2
//! regeneration takes and how fine a confidence interval is affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mzd_sim::{RoundSimulator, SeekPolicy, SimConfig};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_round");
    for n in [8u32, 27, 64] {
        group.throughput(Throughput::Elements(u64::from(n)));
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, &n| {
            let mut sim = RoundSimulator::new(SimConfig::paper_reference().expect("valid"), 7)
                .expect("valid");
            b.iter(|| black_box(sim.run_round(n)));
        });
        group.bench_with_input(BenchmarkId::new("fcfs", n), &n, |b, &n| {
            let mut cfg = SimConfig::paper_reference().expect("valid");
            cfg.seek_policy = SeekPolicy::Fcfs;
            let mut sim = RoundSimulator::new(cfg, 7).expect("valid");
            b.iter(|| black_box(sim.run_round(n)));
        });
    }
    group.finish();

    // Replicated p_late estimation across the worker pool: jobs = 1 is
    // the serial baseline (byte-identical estimate, same code path),
    // jobs = 4 the speedup target the PR acceptance demands.
    for jobs in [1usize, 4] {
        c.bench_function(&format!("replicated_p_late_16_reps_jobs{jobs}"), |b| {
            mzd_par::set_jobs(jobs);
            let cfg = SimConfig::paper_reference().expect("valid");
            b.iter(|| {
                black_box(
                    mzd_sim::estimate_p_late_par(&cfg, black_box(27), 1600, 16, 42)
                        .expect("valid sim"),
                )
            });
            mzd_par::set_jobs(0);
        });
    }

    c.bench_function("server_round_4_disks_100_streams", |b| {
        use mzd_server::{ServerConfig, VideoServer};
        use mzd_workload::ObjectSpec;
        let mut server =
            VideoServer::new(ServerConfig::paper_reference(4).expect("valid"), 11).expect("valid");
        for _ in 0..100 {
            server
                .open_stream(ObjectSpec::paper_default())
                .expect("under the admission limit");
        }
        b.iter(|| black_box(server.run_round()));
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
