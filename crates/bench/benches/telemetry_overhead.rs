//! Cost of the observability substrate itself.
//!
//! Telemetry rides on every hot path — each simulated round records four
//! histograms, each admission decision bumps a counter — so the per-call
//! cost must be negligible next to the work being measured. Targets: a
//! counter increment is one relaxed atomic add (single-digit ns), a
//! histogram record stays under ~50 ns, and emitting an event against the
//! disabled [`NullSink`](mzd_telemetry::event::NullSink) costs one atomic
//! load (the `events_enabled` fast path) rather than the cost of
//! formatting the event.

use criterion::{criterion_group, criterion_main, Criterion};
use mzd_telemetry::event::{set_sink, Event, MemorySink, NullSink};
use mzd_telemetry::Registry;
use std::hint::black_box;
use std::sync::Arc;

fn bench_telemetry(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let gauge = registry.gauge("bench.gauge");
    let histogram = registry.histogram("bench.histogram");

    c.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    c.bench_function("gauge_set", |b| {
        b.iter(|| gauge.set(black_box(42.5)));
    });

    c.bench_function("histogram_record", |b| {
        b.iter(|| histogram.record(black_box(0.0123)));
    });

    c.bench_function("histogram_quantile_p99", |b| {
        for i in 1..=10_000u32 {
            histogram.record(f64::from(i) * 1e-4);
        }
        b.iter(|| histogram.quantile(black_box(0.99)));
    });

    // Event emission with the sink disabled: the guard is the price every
    // uninstrumented run pays, so it must be branch-plus-atomic-load cheap.
    let previous = set_sink(Arc::new(NullSink));
    c.bench_function("event_emit_disabled", |b| {
        b.iter(|| {
            if mzd_telemetry::events_enabled() {
                mzd_telemetry::emit(
                    Event::new("bench.round")
                        .u64("round", black_box(7))
                        .f64("service_time", black_box(0.81)),
                );
            }
        });
    });

    // Full price with a live sink: build, serialize, store.
    set_sink(Arc::new(MemorySink::new()));
    c.bench_function("event_emit_memory_sink", |b| {
        b.iter(|| {
            mzd_telemetry::emit(
                Event::new("bench.round")
                    .u64("round", black_box(7))
                    .f64("service_time", black_box(0.81))
                    .bool("late", black_box(false)),
            );
        });
    });
    set_sink(previous);

    c.bench_function("registry_snapshot_json", |b| {
        b.iter(|| registry.snapshot().to_json());
    });
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
