//! Cost of evaluating the multi-zone transfer-time machinery (§3.2):
//! the exact density (discrete mixture and quadrature forms), its
//! moments, and the moment-matched Gamma construction.

use criterion::{criterion_group, criterion_main, Criterion};
use mzd_core::{TransferTimeDensity, TransferTimeModel, ZoneHandling};
use std::hint::black_box;

fn bench_density(c: &mut Criterion) {
    let disk = mzd_disk::profiles::quantum_viking_2_1()
        .build()
        .expect("valid disk");

    let discrete = TransferTimeDensity::discrete(&disk, 200_000.0, 1e10).expect("valid");
    c.bench_function("density_pdf_discrete_mixture", |b| {
        b.iter(|| discrete.pdf(black_box(0.025)))
    });

    let continuous = TransferTimeDensity::continuous(&disk, 200_000.0, 1e10).expect("valid");
    c.bench_function("density_pdf_continuous_gl64", |b| {
        b.iter(|| continuous.pdf(black_box(0.025)))
    });

    c.bench_function("density_moments_closed_form", |b| {
        b.iter(|| black_box(&discrete).moments())
    });

    c.bench_function("moment_matched_gamma_build", |b| {
        b.iter(|| {
            TransferTimeModel::multi_zone(
                black_box(&disk),
                black_box(200_000.0),
                black_box(1e10),
                ZoneHandling::Discrete,
            )
            .expect("valid")
        })
    });

    c.bench_function("approximation_total_variation", |b| {
        b.iter(|| {
            discrete
                .total_variation_error(black_box(0.25))
                .expect("valid")
        })
    });
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
