//! Latency of the admission-control fast and slow paths.
//!
//! The paper argues (§5) that run-time admission decisions must be cheap:
//! the analytic model is evaluated offline into a lookup table, and the
//! per-request decision is a comparison. These benches measure all three
//! tiers: a single Chernoff bound evaluation, a full N_max search, and the
//! table lookup that actually sits on the request path.

use criterion::{criterion_group, criterion_main, Criterion};
use mzd_core::GuaranteeModel;
use std::hint::black_box;

fn bench_admission(c: &mut Criterion) {
    let model = GuaranteeModel::paper_reference().expect("valid model");

    c.bench_function("chernoff_p_late_single_eval", |b| {
        b.iter(|| {
            model
                .p_late_bound(black_box(27), black_box(1.0))
                .expect("valid")
        })
    });

    c.bench_function("p_glitch_bound_n28", |b| {
        b.iter(|| {
            model
                .p_glitch_bound(black_box(28), black_box(1.0))
                .expect("valid")
        })
    });

    c.bench_function("p_error_bound_n28_m1200", |b| {
        b.iter(|| {
            model
                .p_error_bound(
                    black_box(28),
                    black_box(1.0),
                    black_box(1200),
                    black_box(12),
                )
                .expect("valid")
        })
    });

    c.bench_function("n_max_late_search", |b| {
        b.iter(|| {
            model
                .n_max_late(black_box(1.0), black_box(0.01))
                .expect("valid")
        })
    });

    c.bench_function("n_max_error_search", |b| {
        b.iter(|| {
            model
                .n_max_error(
                    black_box(1.0),
                    black_box(1200),
                    black_box(12),
                    black_box(0.01),
                )
                .expect("valid")
        })
    });

    let table = model
        .admission_table_late(1.0, &[0.001, 0.005, 0.01, 0.05, 0.1])
        .expect("valid table");
    c.bench_function("admission_table_lookup", |b| {
        b.iter(|| table.lookup(black_box(0.013)))
    });

    c.bench_function("saddlepoint_p_late_single_eval", |b| {
        b.iter(|| {
            model
                .p_late_estimate(black_box(28), black_box(1.0))
                .expect("valid")
        })
    });

    c.bench_function("exact_p_late_gil_pelaez", |b| {
        b.iter(|| {
            model
                .p_late_exact(black_box(28), black_box(1.0))
                .expect("valid")
        })
    });
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
