//! Multi-round simulation with per-stream glitch accounting.
//!
//! [`SimulationEngine`] drives a [`RoundSimulator`] over many rounds and
//! aggregates what the paper's §4 experiments measure: the distribution of
//! the round service time, the rate of late rounds, and — for stream
//! lifetimes of `M` rounds — the per-stream glitch counts that define
//! `p_error`.

use crate::round::{RoundSimulator, SimConfig};
use crate::SimError;
use mzd_numerics::stats::OnlineStats;

/// Per-stream glitch accounting over a window of rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct GlitchAccounting {
    /// Number of rounds simulated.
    pub rounds: u64,
    /// Number of rounds that overran the deadline.
    pub late_rounds: u64,
    /// Per-stream glitch counts (index = stream id).
    pub glitches_per_stream: Vec<u64>,
    /// Service-time statistics across rounds.
    pub service_time: OnlineStats,
    /// Seek-time statistics across rounds.
    pub seek_time: OnlineStats,
}

impl GlitchAccounting {
    /// Fraction of rounds that overran.
    #[must_use]
    pub fn p_late(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.late_rounds as f64 / self.rounds as f64
        }
    }

    /// Fraction of streams with at least `g` glitches — the empirical
    /// per-stream failure rate behind `p_error`.
    #[must_use]
    pub fn stream_failure_fraction(&self, g: u64) -> f64 {
        if self.glitches_per_stream.is_empty() {
            return 0.0;
        }
        let failures = self.glitches_per_stream.iter().filter(|&&c| c >= g).count();
        failures as f64 / self.glitches_per_stream.len() as f64
    }

    /// Mean glitches per stream over the window.
    #[must_use]
    pub fn mean_glitches_per_stream(&self) -> f64 {
        if self.glitches_per_stream.is_empty() {
            return 0.0;
        }
        self.glitches_per_stream.iter().sum::<u64>() as f64 / self.glitches_per_stream.len() as f64
    }
}

/// Drives rounds and aggregates statistics.
#[derive(Debug)]
pub struct SimulationEngine {
    sim: RoundSimulator,
}

impl SimulationEngine {
    /// Create an engine over the given configuration and seed.
    ///
    /// # Errors
    /// Propagates configuration validation.
    pub fn new(cfg: SimConfig, seed: u64) -> Result<Self, SimError> {
        Ok(Self {
            sim: RoundSimulator::new(cfg, seed)?,
        })
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        self.sim.config()
    }

    /// Run `rounds` rounds with `n` concurrent streams, accounting
    /// glitches per stream (stream ids are stable across the window —
    /// this models `n` streams whose lifetime spans the window, as in the
    /// paper's Table 2 setup where all streams run for `M` rounds).
    pub fn run_window(&mut self, n: u32, rounds: u64) -> GlitchAccounting {
        let mut acc = GlitchAccounting {
            rounds,
            late_rounds: 0,
            glitches_per_stream: vec![0; n as usize],
            service_time: OnlineStats::new(),
            seek_time: OnlineStats::new(),
        };
        for _ in 0..rounds {
            let out = self.sim.run_round(n);
            acc.service_time.push(out.service_time);
            acc.seek_time.push(out.seek_time);
            if out.late {
                acc.late_rounds += 1;
            }
            for &s in &out.glitched_streams {
                acc.glitches_per_stream[s as usize] += 1;
            }
        }
        acc
    }

    /// Run a window where each stream's fragment sizes come from its own
    /// recorded trace, played sequentially (wrapping) — preserving the
    /// temporal correlation of real VBR video that the i.i.d. draws of
    /// [`Self::run_window`] idealize away (§3.3 assumes independence; this
    /// entry point measures what correlation costs).
    ///
    /// Stream `i` in round `r` requests `traces[i].size(r mod len_i)`
    /// bytes.
    pub fn run_window_traced(
        &mut self,
        traces: &[mzd_workload::Trace],
        rounds: u64,
    ) -> GlitchAccounting {
        let n = traces.len();
        let mut acc = GlitchAccounting {
            rounds,
            late_rounds: 0,
            glitches_per_stream: vec![0; n],
            service_time: OnlineStats::new(),
            seek_time: OnlineStats::new(),
        };
        let mut sizes = vec![0.0f64; n];
        for r in 0..rounds {
            for (i, t) in traces.iter().enumerate() {
                sizes[i] = t.size((r % t.len() as u64) as usize);
            }
            let out = self.sim.run_round_sized(&sizes);
            acc.service_time.push(out.service_time);
            acc.seek_time.push(out.seek_time);
            if out.late {
                acc.late_rounds += 1;
            }
            for &s in &out.glitched_streams {
                acc.glitches_per_stream[s as usize] += 1;
            }
        }
        acc
    }

    /// Run `batches` independent windows of `m` rounds each with `n`
    /// streams, concatenating the per-stream glitch counts — yielding
    /// `batches × n` independent stream-lifetime samples for `p_error`
    /// estimation (Table 2).
    pub fn run_stream_lifetimes(&mut self, n: u32, m: u64, batches: u32) -> GlitchAccounting {
        let mut all = GlitchAccounting {
            rounds: 0,
            late_rounds: 0,
            glitches_per_stream: Vec::with_capacity(batches as usize * n as usize),
            service_time: OnlineStats::new(),
            seek_time: OnlineStats::new(),
        };
        for _ in 0..batches {
            let w = self.run_window(n, m);
            all.rounds += w.rounds;
            all.late_rounds += w.late_rounds;
            all.glitches_per_stream.extend(w.glitches_per_stream);
            all.service_time.merge(&w.service_time);
            all.seek_time.merge(&w.seek_time);
        }
        all
    }
}

/// Run `reps` independent replications of an `n`-stream window totalling
/// `rounds` rounds, fanned out across the worker pool.
///
/// Replication `i` gets its own engine seeded
/// `mzd_par::derive_seed(seed, i)` and `rounds / reps` rounds, with the
/// remainder spread over the first replications. Results merge in
/// replication order: per-stream glitch counts concatenate (yielding
/// `reps × n` stream samples, as in [`SimulationEngine::run_stream_lifetimes`])
/// and the round statistics merge. The output is a pure function of
/// `(cfg, n, rounds, reps, seed)` — the worker count only moves
/// wall-clock time, and `reps = 1` runs the very same code path as a
/// wide fan-out.
///
/// # Errors
/// Propagates configuration validation.
pub fn run_replicated_windows(
    cfg: &SimConfig,
    n: u32,
    rounds: u64,
    reps: u32,
    seed: u64,
) -> Result<GlitchAccounting, SimError> {
    let reps = u64::from(reps.max(1));
    let base = rounds / reps;
    let extra = rounds % reps;
    let parts = mzd_par::par_map_indexed(reps as usize, |i| {
        let share = base + u64::from((i as u64) < extra);
        let mut engine = SimulationEngine::new(cfg.clone(), mzd_par::derive_seed(seed, i as u64))?;
        Ok::<GlitchAccounting, SimError>(engine.run_window(n, share))
    });
    let mut all = GlitchAccounting {
        rounds: 0,
        late_rounds: 0,
        glitches_per_stream: Vec::with_capacity(reps as usize * n as usize),
        service_time: OnlineStats::new(),
        seek_time: OnlineStats::new(),
    };
    for part in parts {
        let w = part?;
        all.rounds += w.rounds;
        all.late_rounds += w.late_rounds;
        all.glitches_per_stream.extend(w.glitches_per_stream);
        all.service_time.merge(&w.service_time);
        all.seek_time.merge(&w.seek_time);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(seed: u64) -> SimulationEngine {
        SimulationEngine::new(SimConfig::paper_reference().unwrap(), seed).unwrap()
    }

    #[test]
    fn window_bookkeeping_is_consistent() {
        let mut e = engine(1);
        let acc = e.run_window(20, 500);
        assert_eq!(acc.rounds, 500);
        assert_eq!(acc.glitches_per_stream.len(), 20);
        assert_eq!(acc.service_time.count(), 500);
        assert!(acc.late_rounds <= 500);
        // Total glitches is at least the number of late rounds (a late
        // round glitches ≥ 1 stream).
        let total: u64 = acc.glitches_per_stream.iter().sum();
        assert!(total >= acc.late_rounds);
        assert!(acc.p_late() <= 1.0);
    }

    #[test]
    fn light_load_never_glitches() {
        let mut e = engine(2);
        let acc = e.run_window(5, 500);
        assert_eq!(acc.late_rounds, 0);
        assert_eq!(acc.p_late(), 0.0);
        assert_eq!(acc.mean_glitches_per_stream(), 0.0);
        assert_eq!(acc.stream_failure_fraction(1), 0.0);
    }

    #[test]
    fn heavy_load_always_glitches() {
        let mut e = engine(3);
        let acc = e.run_window(60, 100);
        assert_eq!(acc.late_rounds, 100);
        assert_eq!(acc.p_late(), 1.0);
        assert!(acc.stream_failure_fraction(1) > 0.9);
    }

    #[test]
    fn stream_lifetimes_concatenate_batches() {
        let mut e = engine(4);
        let acc = e.run_stream_lifetimes(10, 50, 8);
        assert_eq!(acc.rounds, 400);
        assert_eq!(acc.glitches_per_stream.len(), 80);
        assert_eq!(acc.service_time.count(), 400);
    }

    #[test]
    fn failure_fraction_thresholds_are_monotone() {
        let mut e = engine(5);
        let acc = e.run_window(31, 1200);
        let mut prev = 1.0;
        for g in [0u64, 1, 2, 5, 12, 100] {
            let f = acc.stream_failure_fraction(g);
            assert!(f <= prev, "g = {g}");
            prev = f;
        }
        assert_eq!(acc.stream_failure_fraction(0), 1.0);
    }

    #[test]
    fn traced_window_uses_trace_sizes_in_order() {
        use mzd_workload::Trace;
        // Constant traces at the paper's mean must behave like the
        // constant-size law: no glitches at N = 20.
        let traces: Vec<Trace> = (0..20)
            .map(|_| Trace::new(vec![200_000.0; 7], 1.0).unwrap())
            .collect();
        let mut e = engine(6);
        let acc = e.run_window_traced(&traces, 300);
        assert_eq!(acc.rounds, 300);
        assert_eq!(acc.glitches_per_stream.len(), 20);
        assert_eq!(acc.late_rounds, 0);
    }

    #[test]
    fn traced_window_with_burst_traces_glitches_in_bursts() {
        use mzd_workload::Trace;
        // All streams share a trace with one huge fragment: every len-th
        // round all streams spike together and the round overruns.
        let trace = Trace::new(vec![100_000.0, 100_000.0, 2_000_000.0], 1.0).unwrap();
        let traces: Vec<Trace> = (0..20).map(|_| trace.clone()).collect();
        let mut e = engine(7);
        let acc = e.run_window_traced(&traces, 300);
        // Exactly one round in three spikes: 100 late rounds.
        assert_eq!(acc.late_rounds, 100);
    }

    #[test]
    fn empty_accounting_edge_cases() {
        let acc = GlitchAccounting {
            rounds: 0,
            late_rounds: 0,
            glitches_per_stream: vec![],
            service_time: OnlineStats::new(),
            seek_time: OnlineStats::new(),
        };
        assert_eq!(acc.p_late(), 0.0);
        assert_eq!(acc.stream_failure_fraction(1), 0.0);
        assert_eq!(acc.mean_glitches_per_stream(), 0.0);
    }
}
