//! Mixed continuous/discrete workload simulation — the §6 outlook.
//!
//! Discrete requests (web pages, images, index lookups) arrive as a
//! Poisson stream and queue; each round the disk first serves every
//! continuous stream's fragment in the SCAN sweep, then drains the
//! discrete queue FCFS for as long as requests still *complete* within
//! the round. Measured outputs: continuous glitch behaviour (is the
//! stream guarantee preserved?) and discrete response times in rounds
//! (how long do best-effort requests wait?).
//!
//! Model simplification: a queued discrete request re-draws its placement
//! when retried in a later round (its true position is fixed on a real
//! disk); placements are i.i.d. uniform either way, so the queue-level
//! statistics are unaffected.

use crate::round::{RoundSimulator, SimConfig};
use crate::SimError;
use mzd_numerics::rng::Poisson;
use mzd_numerics::stats::OnlineStats;
use mzd_workload::SizeDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Configuration of a mixed-workload simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedConfig {
    /// The continuous-service configuration (disk, sizes, round length).
    pub base: SimConfig,
    /// Size law of discrete requests, bytes.
    pub discrete_sizes: SizeDistribution,
    /// Mean discrete arrivals per round (Poisson).
    pub arrivals_per_round: f64,
    /// Queue capacity; arrivals beyond it are dropped (counted).
    pub queue_capacity: usize,
}

impl MixedConfig {
    /// A reference mixed setup: the paper's continuous workload plus
    /// 20 KB ± 20 KB discrete objects at the given arrival rate.
    ///
    /// # Errors
    /// Propagates configuration validation.
    pub fn paper_reference(arrivals_per_round: f64) -> Result<Self, SimError> {
        Ok(Self {
            base: SimConfig::paper_reference()?,
            discrete_sizes: SizeDistribution::gamma(20_000.0, (20_000.0f64).powi(2))
                .map_err(|e| SimError::Invalid(e.to_string()))?,
            arrivals_per_round,
            queue_capacity: 10_000,
        })
    }
}

/// Aggregate results of a mixed-workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRunStats {
    /// Rounds simulated.
    pub rounds: u64,
    /// Continuous rounds that overran.
    pub late_rounds: u64,
    /// Per-stream continuous glitch counts.
    pub glitches_per_stream: Vec<u64>,
    /// Discrete requests that arrived.
    pub discrete_arrived: u64,
    /// Discrete requests served.
    pub discrete_served: u64,
    /// Discrete requests dropped at the queue cap.
    pub discrete_dropped: u64,
    /// Response time of served discrete requests, in rounds (0 = served
    /// in the round it arrived).
    pub discrete_response_rounds: OnlineStats,
    /// Queue length sampled at each round end.
    pub queue_length: OnlineStats,
    /// Fraction of each round spent on discrete service.
    pub discrete_utilization: OnlineStats,
}

impl MixedRunStats {
    /// Continuous overrun rate.
    #[must_use]
    pub fn p_late(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.late_rounds as f64 / self.rounds as f64
        }
    }

    /// Discrete throughput per round.
    #[must_use]
    pub fn discrete_throughput(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.discrete_served as f64 / self.rounds as f64
        }
    }
}

/// A queued discrete request.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueuedRequest {
    bytes: f64,
    arrival_round: u64,
}

/// Mixed-workload simulator: continuous streams with priority, discrete
/// queue drained in slack.
#[derive(Debug)]
pub struct MixedSimulator {
    cfg: MixedConfig,
    sim: RoundSimulator,
    arrivals: Poisson,
    rng: StdRng,
    queue: VecDeque<QueuedRequest>,
    round: u64,
    dropped: u64,
    arrived: u64,
}

impl MixedSimulator {
    /// Create a simulator with the given seed.
    ///
    /// # Errors
    /// [`SimError::Invalid`] for a non-positive arrival rate or zero
    /// queue capacity; propagates base-configuration validation.
    pub fn new(cfg: MixedConfig, seed: u64) -> Result<Self, SimError> {
        if !(cfg.arrivals_per_round > 0.0) || !cfg.arrivals_per_round.is_finite() {
            return Err(SimError::Invalid(format!(
                "arrival rate must be positive, got {}",
                cfg.arrivals_per_round
            )));
        }
        if cfg.queue_capacity == 0 {
            return Err(SimError::Invalid("queue capacity must be positive".into()));
        }
        let arrivals =
            Poisson::new(cfg.arrivals_per_round).map_err(|e| SimError::Invalid(e.to_string()))?;
        let sim = RoundSimulator::new(cfg.base.clone(), seed)?;
        Ok(Self {
            cfg,
            sim,
            arrivals,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            queue: VecDeque::new(),
            round: 0,
            dropped: 0,
            arrived: 0,
        })
    }

    /// Current discrete queue length.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Run `rounds` rounds with `n` continuous streams.
    pub fn run(&mut self, n: u32, rounds: u64) -> MixedRunStats {
        let mut stats = MixedRunStats {
            rounds,
            late_rounds: 0,
            glitches_per_stream: vec![0; n as usize],
            discrete_arrived: 0,
            discrete_served: 0,
            discrete_dropped: 0,
            discrete_response_rounds: OnlineStats::new(),
            queue_length: OnlineStats::new(),
            discrete_utilization: OnlineStats::new(),
        };
        let round_length = self.cfg.base.round_length;
        for _ in 0..rounds {
            // Arrivals for this round.
            let k = self.arrivals.sample_count(&mut self.rng);
            for _ in 0..k {
                self.arrived += 1;
                if self.queue.len() >= self.cfg.queue_capacity {
                    self.dropped += 1;
                    stats.discrete_dropped += 1;
                } else {
                    self.queue.push_back(QueuedRequest {
                        bytes: self.cfg.discrete_sizes.sample(&mut self.rng),
                        arrival_round: self.round,
                    });
                }
            }
            stats.discrete_arrived += k;

            // Offer the head of the queue to the round's slack.
            let offered: Vec<f64> = self.queue.iter().map(|q| q.bytes).collect();
            let (outcome, discrete) = self.sim.run_round_with_discrete(n, &offered);
            if outcome.late {
                stats.late_rounds += 1;
            }
            for &s in &outcome.glitched_streams {
                stats.glitches_per_stream[s as usize] += 1;
            }
            for _ in 0..discrete.served {
                let q = self.queue.pop_front().expect("served <= queue length");
                stats
                    .discrete_response_rounds
                    .push((self.round - q.arrival_round) as f64);
            }
            stats.discrete_served += discrete.served as u64;
            stats
                .discrete_utilization
                .push(discrete.time_used / round_length);
            stats.queue_length.push(self.queue.len() as f64);
            self.round += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_mixed_load_serves_everything_immediately() {
        // 10 streams leave ~0.7 s of slack: 5 small requests per round are
        // trivially absorbed with near-zero response time.
        let cfg = MixedConfig::paper_reference(5.0).unwrap();
        let mut sim = MixedSimulator::new(cfg, 1).unwrap();
        let stats = sim.run(10, 500);
        assert_eq!(stats.late_rounds, 0);
        assert!(
            stats.discrete_served > 2_000,
            "served {}",
            stats.discrete_served
        );
        assert!(
            stats.discrete_response_rounds.mean() < 0.05,
            "mean response {} rounds",
            stats.discrete_response_rounds.mean()
        );
        assert_eq!(stats.discrete_dropped, 0);
        // Conservation: arrived = served + still queued + dropped.
        assert_eq!(
            stats.discrete_arrived,
            stats.discrete_served + sim.queue_len() as u64 + stats.discrete_dropped
        );
    }

    #[test]
    fn continuous_guarantee_unaffected_by_discrete_backlog() {
        // Even with an absurd discrete arrival rate, continuous streams
        // keep priority: p_late at N = 26 stays at its paper level.
        let cfg = MixedConfig::paper_reference(500.0).unwrap();
        let mut sim = MixedSimulator::new(cfg, 2).unwrap();
        let stats = sim.run(26, 2_000);
        assert!(
            stats.p_late() < 0.005,
            "continuous p_late {} degraded by discrete load",
            stats.p_late()
        );
        // The queue grows without bound (500 arrivals/round >> capacity
        // to serve): utilization saturates the slack.
        assert!(stats.queue_length.max() > 1_000.0);
        assert!(stats.discrete_utilization.mean() > 0.05);
    }

    #[test]
    fn heavier_continuous_load_squeezes_discrete_throughput() {
        let cfg = MixedConfig::paper_reference(200.0).unwrap();
        let mut a = MixedSimulator::new(cfg.clone(), 3).unwrap();
        let mut b = MixedSimulator::new(cfg, 3).unwrap();
        let light = a.run(12, 500);
        let heavy = b.run(24, 500);
        assert!(
            light.discrete_throughput() > 1.5 * heavy.discrete_throughput(),
            "light {} vs heavy {}",
            light.discrete_throughput(),
            heavy.discrete_throughput()
        );
    }

    #[test]
    fn queue_capacity_drops_excess() {
        let mut cfg = MixedConfig::paper_reference(100.0).unwrap();
        cfg.queue_capacity = 50;
        let mut sim = MixedSimulator::new(cfg, 4).unwrap();
        let stats = sim.run(26, 200);
        assert!(stats.discrete_dropped > 0);
        assert!(sim.queue_len() <= 50);
    }

    #[test]
    fn response_times_grow_with_saturation() {
        let mild = MixedSimulator::new(MixedConfig::paper_reference(5.0).unwrap(), 5)
            .unwrap()
            .run(24, 800);
        let saturated = MixedSimulator::new(MixedConfig::paper_reference(40.0).unwrap(), 5)
            .unwrap()
            .run(24, 800);
        assert!(
            saturated.discrete_response_rounds.mean() > mild.discrete_response_rounds.mean(),
            "saturated {} vs mild {}",
            saturated.discrete_response_rounds.mean(),
            mild.discrete_response_rounds.mean()
        );
    }

    #[test]
    fn validation() {
        let cfg = MixedConfig::paper_reference(0.0);
        assert!(cfg.is_ok()); // constructor builds; simulator rejects:
        assert!(MixedSimulator::new(cfg.unwrap(), 0).is_err());
        let mut cfg = MixedConfig::paper_reference(1.0).unwrap();
        cfg.queue_capacity = 0;
        assert!(MixedSimulator::new(cfg, 0).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = MixedConfig::paper_reference(10.0).unwrap();
        let a = MixedSimulator::new(cfg.clone(), 7).unwrap().run(20, 100);
        let b = MixedSimulator::new(cfg, 7).unwrap().run(20, 100);
        assert_eq!(a, b);
    }
}
