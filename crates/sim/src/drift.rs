//! Drift-injection scenario: does the online conformance checker notice
//! when the workload quietly stops matching the §3 analytic model?
//!
//! The scenario runs the round simulator under the paper-reference
//! configuration with a fixed stream count, PIT-transforms every observed
//! round service time through the analytic predicted CDF
//! ([`mzd_core::ServiceTimeCdf`]), and feeds the PIT values to an
//! [`mzd_slo::ConformanceChecker`]. At a configurable round the placement
//! policy is swapped to inner-zone-only ([`PlacementPolicy::InnerZones`])
//! — modeling a layout migration or a mis-modeled allocator that
//! concentrates fragments on the slowest zones — while the model keeps
//! assuming capacity-uniform placement. A healthy monitor raises
//! `slo.drift` shortly after the skew and stays quiet on an unskewed
//! control run.

use crate::round::{RoundSimulator, SimConfig};
use crate::SimError;
use mzd_core::{GuaranteeModel, ServiceTimeCdf};
use mzd_disk::PlacementPolicy;
use mzd_slo::{ConformanceChecker, ConformanceConfig, DriftTransition};

/// Grid resolution for the predicted CDF. Coarser than the library
/// default because the scenario evaluates one fixed `n`: 129 points keep
/// interpolation error well under the conformance tail tolerance while
/// halving the (exact-inversion) table build cost.
const CDF_GRID_POINTS: usize = 129;

/// Parameters of a drift-injection run.
#[derive(Debug, Clone)]
pub struct DriftScenarioConfig {
    /// Streams served every round (constant load, as in Figure 1).
    pub n: u32,
    /// Total rounds to simulate.
    pub rounds: u64,
    /// Round at which placement skews to the inner zones; `None` runs the
    /// unskewed control.
    pub skew_at: Option<u64>,
    /// How many innermost (slowest) zones the skewed placement uses.
    pub skew_zones: usize,
    /// Conformance-checker tuning.
    pub conformance: ConformanceConfig,
}

impl DriftScenarioConfig {
    /// The paper-reference scenario: 26 streams (the Chernoff-admitted
    /// load of Table 1 at moderate tolerance) with default conformance
    /// tuning and a 4-zone inner skew.
    #[must_use]
    pub fn paper_default(rounds: u64, skew_at: Option<u64>) -> Self {
        Self {
            n: 26,
            rounds,
            skew_at,
            skew_zones: 4,
            conformance: ConformanceConfig::default(),
        }
    }
}

/// What a drift-injection run observed.
#[derive(Debug, Clone)]
pub struct DriftScenarioReport {
    /// Rounds actually simulated.
    pub rounds: u64,
    /// First round (0-based) at which the checker raised drift, if any.
    pub drift_round: Option<u64>,
    /// Total raise transitions over the run.
    pub drifts_raised: u64,
    /// Whether the drift alert was still active at the end of the run.
    pub drift_active: bool,
    /// Rounds whose sweep overran the round length.
    pub late_rounds: u64,
    /// KS-style max deviation of the PIT histogram at the end of the run.
    pub final_ks: f64,
    /// Fraction of the final window beyond the model's tail quantile.
    pub final_tail_exceedance: f64,
}

/// Run the drift-injection scenario.
///
/// Emits an `slo.drift` event on every checker transition when an event
/// sink is installed (same enable gate as the simulator's own
/// `sim.round` events), so `--events-out` captures detection latency.
///
/// # Errors
/// [`SimError::Invalid`] if the configuration is degenerate (`n == 0`,
/// `skew_zones == 0`, more skew zones than the disk has) or the model /
/// checker construction fails.
pub fn run_drift_scenario(
    cfg: &DriftScenarioConfig,
    seed: u64,
) -> Result<DriftScenarioReport, SimError> {
    if cfg.n == 0 {
        return Err(SimError::Invalid("drift scenario needs n >= 1".into()));
    }
    if cfg.skew_zones == 0 {
        return Err(SimError::Invalid(
            "drift scenario needs skew_zones >= 1".into(),
        ));
    }
    let sim_cfg = SimConfig::paper_reference()?;
    let model = GuaranteeModel::paper_reference().map_err(|e| SimError::Invalid(e.to_string()))?;
    let cdf = ServiceTimeCdf::with_resolution(&model, cfg.n, CDF_GRID_POINTS)
        .map_err(|e| SimError::Invalid(e.to_string()))?;
    let mut checker =
        ConformanceChecker::new(cfg.conformance).map_err(|e| SimError::Invalid(e.to_string()))?;
    let mut sim = RoundSimulator::new(sim_cfg, seed)?;
    // Fail fast on an impossible skew instead of erroring mid-run.
    PlacementPolicy::InnerZones {
        zones: cfg.skew_zones,
    }
    .validate(&sim.config().disk)
    .map_err(|e| SimError::Invalid(e.to_string()))?;

    let mut drift_round = None;
    let mut late_rounds = 0u64;
    for round in 0..cfg.rounds {
        if cfg.skew_at == Some(round) {
            sim.set_placement(PlacementPolicy::InnerZones {
                zones: cfg.skew_zones,
            })?;
        }
        let outcome = sim.run_round(cfg.n);
        if outcome.late {
            late_rounds += 1;
        }
        let u = cdf.evaluate(outcome.service_time);
        if let Some(transition) = checker.observe(u) {
            if transition == DriftTransition::Raised && drift_round.is_none() {
                drift_round = Some(round);
            }
            if mzd_telemetry::events_enabled() {
                mzd_telemetry::emit(
                    mzd_telemetry::Event::new("slo.drift")
                        .str(
                            "transition",
                            match transition {
                                DriftTransition::Raised => "raised",
                                DriftTransition::Cleared => "cleared",
                            },
                        )
                        .u64("round", round)
                        .f64("ks", checker.ks_statistic())
                        .f64("tail_exceedance", checker.tail_exceedance()),
                );
            }
        }
    }
    Ok(DriftScenarioReport {
        rounds: cfg.rounds,
        drift_round,
        drifts_raised: checker.drifts_raised(),
        drift_active: checker.drift_active(),
        late_rounds,
        final_ks: checker.ks_statistic(),
        final_tail_exceedance: checker.tail_exceedance(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_configs() {
        let mut cfg = DriftScenarioConfig::paper_default(4, None);
        cfg.n = 0;
        assert!(run_drift_scenario(&cfg, 1).is_err());
        let mut cfg = DriftScenarioConfig::paper_default(4, None);
        cfg.skew_zones = 0;
        assert!(run_drift_scenario(&cfg, 1).is_err());
        let mut cfg = DriftScenarioConfig::paper_default(4, None);
        cfg.skew_zones = 10_000;
        assert!(run_drift_scenario(&cfg, 1).is_err());
    }

    #[test]
    fn skew_raises_service_time_distribution() {
        // Not a full detection-latency test (that lives in the integration
        // suite); just check the injected skew visibly shifts the PIT mass
        // toward the model's tail relative to the control.
        let rounds = 96;
        let control =
            run_drift_scenario(&DriftScenarioConfig::paper_default(rounds, None), 90).unwrap();
        let skewed =
            run_drift_scenario(&DriftScenarioConfig::paper_default(rounds, Some(0)), 90).unwrap();
        assert_eq!(control.rounds, rounds);
        assert!(skewed.final_tail_exceedance > control.final_tail_exceedance);
        assert!(skewed.late_rounds >= control.late_rounds);
    }

    #[test]
    fn set_placement_skew_is_reproducible() {
        let cfg = DriftScenarioConfig::paper_default(32, Some(8));
        let a = run_drift_scenario(&cfg, 7).unwrap();
        let b = run_drift_scenario(&cfg, 7).unwrap();
        assert_eq!(a.late_rounds, b.late_rounds);
        assert_eq!(a.drift_round, b.drift_round);
        assert!((a.final_ks - b.final_ks).abs() < 1e-15);
    }
}
