//! Estimators for the paper's measured quantities.
//!
//! * [`estimate_p_late`] — the probability that a round of `N` requests
//!   overruns the round length (the simulated curve of **Figure 1**);
//! * [`estimate_p_error`] — the probability that a stream of `M` rounds
//!   suffers `≥ g` glitches (the simulation column of **Table 2**).
//!
//! Both report Wilson 95% confidence intervals; the analytic bounds are
//! expected to lie at or above the interval (the model is conservative).

use crate::engine::SimulationEngine;
use crate::round::SimConfig;
use crate::SimError;
use mzd_numerics::stats::{wilson_interval, ConfidenceInterval};

/// Result of a `p_late` estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PLateEstimate {
    /// Stream count per round.
    pub n: u32,
    /// Rounds simulated.
    pub rounds: u64,
    /// Rounds that overran.
    pub late_rounds: u64,
    /// Point estimate `late_rounds / rounds`.
    pub p_late: f64,
    /// Wilson 95% confidence interval.
    pub ci: ConfidenceInterval,
    /// Mean round service time, seconds.
    pub mean_service_time: f64,
    /// Maximum observed round service time, seconds.
    pub max_service_time: f64,
}

/// Estimate `p_late(n, t)` by simulating `rounds` rounds.
///
/// # Errors
/// Propagates configuration validation.
pub fn estimate_p_late(
    cfg: &SimConfig,
    n: u32,
    rounds: u64,
    seed: u64,
) -> Result<PLateEstimate, SimError> {
    let mut engine = SimulationEngine::new(cfg.clone(), seed)?;
    let acc = engine.run_window(n, rounds);
    Ok(PLateEstimate {
        n,
        rounds,
        late_rounds: acc.late_rounds,
        p_late: acc.p_late(),
        ci: wilson_interval(acc.late_rounds, rounds, 0.95),
        mean_service_time: acc.service_time.mean(),
        max_service_time: acc.service_time.max(),
    })
}

/// [`estimate_p_late`] with the `rounds` budget split over `reps`
/// independent replications executed across the worker pool (see
/// [`crate::engine::run_replicated_windows`]). The estimate is a pure
/// function of `(cfg, n, rounds, reps, seed)` — byte-identical for any
/// worker count. Replications use index-derived seeds, so the `reps = 1`
/// result is a different (equally valid) sample than [`estimate_p_late`]
/// with the same seed.
///
/// # Errors
/// Propagates configuration validation.
pub fn estimate_p_late_par(
    cfg: &SimConfig,
    n: u32,
    rounds: u64,
    reps: u32,
    seed: u64,
) -> Result<PLateEstimate, SimError> {
    let acc = crate::engine::run_replicated_windows(cfg, n, rounds, reps, seed)?;
    Ok(PLateEstimate {
        n,
        rounds: acc.rounds,
        late_rounds: acc.late_rounds,
        p_late: acc.p_late(),
        ci: wilson_interval(acc.late_rounds, acc.rounds, 0.95),
        mean_service_time: acc.service_time.mean(),
        max_service_time: acc.service_time.max(),
    })
}

/// Result of a `p_error` estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PErrorEstimate {
    /// Stream count per round.
    pub n: u32,
    /// Stream lifetime in rounds (`M`).
    pub m: u64,
    /// Glitch tolerance (`g`).
    pub g: u64,
    /// Independent stream-lifetime samples observed.
    pub stream_samples: u64,
    /// Samples with `≥ g` glitches.
    pub failures: u64,
    /// Point estimate.
    pub p_error: f64,
    /// Wilson 95% confidence interval.
    pub ci: ConfidenceInterval,
    /// Mean glitches per stream over its lifetime.
    pub mean_glitches: f64,
    /// Empirical per-round lateness over all simulated rounds.
    pub p_late: f64,
}

/// Estimate `p_error(n, t, m, g)` from `batches` independent windows of
/// `m` rounds (each window yields `n` stream-lifetime samples).
///
/// # Errors
/// Propagates configuration validation.
pub fn estimate_p_error(
    cfg: &SimConfig,
    n: u32,
    m: u64,
    g: u64,
    batches: u32,
    seed: u64,
) -> Result<PErrorEstimate, SimError> {
    let mut engine = SimulationEngine::new(cfg.clone(), seed)?;
    let acc = engine.run_stream_lifetimes(n, m, batches);
    let samples = acc.glitches_per_stream.len() as u64;
    let failures = acc.glitches_per_stream.iter().filter(|&&c| c >= g).count() as u64;
    Ok(PErrorEstimate {
        n,
        m,
        g,
        stream_samples: samples,
        failures,
        p_error: if samples == 0 {
            0.0
        } else {
            failures as f64 / samples as f64
        },
        ci: wilson_interval(failures, samples, 0.95),
        mean_glitches: acc.mean_glitches_per_stream(),
        p_late: acc.p_late(),
    })
}

/// [`estimate_p_error`] with the `batches` independent windows executed
/// across the worker pool, one engine per batch seeded
/// `derive_seed(seed, batch)`. Byte-identical for any worker count;
/// like [`estimate_p_late_par`], a different (equally valid) sample than
/// the serial estimator at the same seed.
///
/// # Errors
/// Propagates configuration validation.
pub fn estimate_p_error_par(
    cfg: &SimConfig,
    n: u32,
    m: u64,
    g: u64,
    batches: u32,
    seed: u64,
) -> Result<PErrorEstimate, SimError> {
    let batches = batches.max(1);
    let parts = mzd_par::par_map_indexed(batches as usize, |i| {
        let mut engine = SimulationEngine::new(cfg.clone(), mzd_par::derive_seed(seed, i as u64))?;
        Ok::<_, SimError>(engine.run_window(n, m))
    });
    let mut acc = crate::engine::GlitchAccounting {
        rounds: 0,
        late_rounds: 0,
        glitches_per_stream: Vec::with_capacity(batches as usize * n as usize),
        service_time: mzd_numerics::stats::OnlineStats::new(),
        seek_time: mzd_numerics::stats::OnlineStats::new(),
    };
    for part in parts {
        let w = part?;
        acc.rounds += w.rounds;
        acc.late_rounds += w.late_rounds;
        acc.glitches_per_stream.extend(w.glitches_per_stream);
        acc.service_time.merge(&w.service_time);
        acc.seek_time.merge(&w.seek_time);
    }
    let samples = acc.glitches_per_stream.len() as u64;
    let failures = acc.glitches_per_stream.iter().filter(|&&c| c >= g).count() as u64;
    Ok(PErrorEstimate {
        n,
        m,
        g,
        stream_samples: samples,
        failures,
        p_error: if samples == 0 {
            0.0
        } else {
            failures as f64 / samples as f64
        },
        ci: wilson_interval(failures, samples, 0.95),
        mean_glitches: acc.mean_glitches_per_stream(),
        p_late: acc.p_late(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::paper_reference().unwrap()
    }

    #[test]
    fn p_late_estimate_consistency() {
        let e = estimate_p_late(&cfg(), 27, 2000, 11).unwrap();
        assert_eq!(e.n, 27);
        assert_eq!(e.rounds, 2000);
        assert!((e.p_late - e.late_rounds as f64 / 2000.0).abs() < 1e-12);
        assert!(e.ci.contains(e.p_late));
        assert!(e.mean_service_time > 0.5 && e.mean_service_time < 1.1);
        assert!(e.max_service_time >= e.mean_service_time);
    }

    #[test]
    fn p_late_grows_with_n() {
        // Not necessarily strictly monotone in a finite sample, but the
        // trend across a wide span must hold.
        let lo = estimate_p_late(&cfg(), 24, 4000, 12).unwrap();
        let hi = estimate_p_late(&cfg(), 31, 4000, 12).unwrap();
        assert!(hi.p_late > lo.p_late);
    }

    #[test]
    fn paper_figure_1_shape_simulated() {
        // §4: simulations sustain 28 streams at p_late ≈ 1%; by N = 31–32
        // lateness is frequent. Coarse check with a modest budget.
        let e28 = estimate_p_late(&cfg(), 28, 4000, 13).unwrap();
        assert!(
            e28.p_late < 0.03,
            "p_late(28) = {} should be around or below 1-2%",
            e28.p_late
        );
        let e33 = estimate_p_late(&cfg(), 33, 2000, 13).unwrap();
        assert!(e33.p_late > 0.15, "p_late(33) = {}", e33.p_late);
    }

    #[test]
    fn p_error_estimate_consistency() {
        let e = estimate_p_error(&cfg(), 31, 300, 3, 8, 14).unwrap();
        assert_eq!(e.stream_samples, 31 * 8);
        assert!(e.failures <= e.stream_samples);
        assert!(e.ci.contains(e.p_error));
        assert!(e.mean_glitches >= 0.0);
        assert!(e.p_late <= 1.0);
    }

    #[test]
    fn p_error_zero_under_light_load() {
        let e = estimate_p_error(&cfg(), 10, 200, 1, 4, 15).unwrap();
        assert_eq!(e.failures, 0);
        assert_eq!(e.p_error, 0.0);
    }

    #[test]
    fn replicated_estimates_are_deterministic_and_consistent() {
        let a = estimate_p_late_par(&cfg(), 27, 2000, 4, 11).unwrap();
        let b = estimate_p_late_par(&cfg(), 27, 2000, 4, 11).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.rounds, 2000);
        assert!(a.ci.contains(a.p_late));
        // The replicated estimator lands in the same statistical regime
        // as the serial one at matched budget.
        let serial = estimate_p_late(&cfg(), 27, 2000, 11).unwrap();
        assert!((a.p_late - serial.p_late).abs() < 0.05);
        // Uneven split still accounts every round.
        let odd = estimate_p_late_par(&cfg(), 27, 1001, 4, 11).unwrap();
        assert_eq!(odd.rounds, 1001);
    }

    #[test]
    fn replicated_p_error_is_deterministic_and_consistent() {
        let a = estimate_p_error_par(&cfg(), 31, 300, 3, 8, 14).unwrap();
        let b = estimate_p_error_par(&cfg(), 31, 300, 3, 8, 14).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.stream_samples, 31 * 8);
        assert!(a.failures <= a.stream_samples);
        assert!(a.ci.contains(a.p_error));
    }

    #[test]
    fn estimates_deterministic_for_seed() {
        let a = estimate_p_late(&cfg(), 27, 500, 7).unwrap();
        let b = estimate_p_late(&cfg(), 27, 500, 7).unwrap();
        assert_eq!(a, b);
        let c = estimate_p_late(&cfg(), 27, 500, 8).unwrap();
        assert!(a.late_rounds != c.late_rounds || a.mean_service_time != c.mean_service_time);
    }
}
