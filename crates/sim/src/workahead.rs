//! Work-ahead prefetching — the §6 buffering outlook.
//!
//! "Buffering data on the server and/or the client would enable a more
//! efficient disk scheduling by preloading fragments ahead of time and
//! saving resources for heavy-load periods later."
//!
//! This simulator implements exactly that discipline on one disk:
//!
//! * a stream with an empty buffer credit issues a **mandatory** fetch
//!   (its next-round fragment) served in the SCAN sweep — late delivery
//!   glitches it, as in the base model;
//! * a stream holding credit skips the sweep and consumes from its
//!   buffer;
//! * in the round's **slack**, streams below the `work_ahead` credit cap
//!   prefetch future fragments (least-credit first), building up
//!   insurance against later overruns.
//!
//! `work_ahead = 0` reduces to the paper's model exactly. The measured
//! question: how many fragments of client buffer does it take to absorb
//! the overrun tail at a given `N`?

use crate::round::{RoundSimulator, SimConfig};
use crate::SimError;
use mzd_numerics::stats::OnlineStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a work-ahead run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkAheadConfig {
    /// Base per-disk configuration (disk, size law, round length).
    pub base: SimConfig,
    /// Maximum buffered fragments per stream beyond the one being
    /// displayed (0 = the paper's double-buffering baseline).
    pub work_ahead: u32,
}

/// Aggregate results of a work-ahead run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkAheadStats {
    /// Rounds simulated.
    pub rounds: u64,
    /// Per-stream glitch counts.
    pub glitches_per_stream: Vec<u64>,
    /// Rounds whose mandatory sweep overran the deadline.
    pub late_rounds: u64,
    /// Prefetches completed across the run.
    pub prefetches: u64,
    /// Mean buffer credit (fragments) across streams, sampled per round.
    pub credit: OnlineStats,
    /// Client buffer occupancy in bytes (credit fragments), sampled per
    /// round per stream; high-water mark = provisioning requirement.
    pub buffer_bytes: OnlineStats,
}

impl WorkAheadStats {
    /// Total glitches over all streams.
    #[must_use]
    pub fn total_glitches(&self) -> u64 {
        self.glitches_per_stream.iter().sum()
    }

    /// Per-stream-round glitch rate.
    #[must_use]
    pub fn glitch_rate(&self) -> f64 {
        let stream_rounds = self.rounds * self.glitches_per_stream.len() as u64;
        if stream_rounds == 0 {
            0.0
        } else {
            self.total_glitches() as f64 / stream_rounds as f64
        }
    }
}

/// The work-ahead simulator.
#[derive(Debug)]
pub struct WorkAheadSimulator {
    cfg: WorkAheadConfig,
    sim: RoundSimulator,
    /// Size-sampling RNG (decoupled from the kinematics RNG inside the
    /// round simulator so both streams stay reproducible).
    rng: StdRng,
    /// Buffered fragments per stream (beyond the one displaying).
    credits: Vec<u32>,
    /// Bytes held per stream (the buffered fragments' sizes).
    held_bytes: Vec<f64>,
}

impl WorkAheadSimulator {
    /// Create a simulator with the given seed.
    ///
    /// # Errors
    /// Propagates base-configuration validation.
    pub fn new(cfg: WorkAheadConfig, seed: u64) -> Result<Self, SimError> {
        let sim = RoundSimulator::new(cfg.base.clone(), seed)?;
        Ok(Self {
            cfg,
            sim,
            rng: StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d),
            credits: Vec::new(),
            held_bytes: Vec::new(),
        })
    }

    /// Run `rounds` rounds with `n` streams (all starting with empty
    /// buffers).
    pub fn run(&mut self, n: u32, rounds: u64) -> WorkAheadStats {
        let n_us = n as usize;
        self.credits = vec![0; n_us];
        self.held_bytes = vec![0.0; n_us];
        let mut stats = WorkAheadStats {
            rounds,
            glitches_per_stream: vec![0; n_us],
            late_rounds: 0,
            prefetches: 0,
            credit: OnlineStats::new(),
            buffer_bytes: OnlineStats::new(),
        };
        // Pre-draw scratch buffers.
        let mut mandatory_streams: Vec<usize> = Vec::with_capacity(n_us);
        let mut mandatory_sizes: Vec<f64> = Vec::with_capacity(n_us);
        let mut prefetch_streams: Vec<usize> = Vec::with_capacity(n_us);
        let mut prefetch_sizes: Vec<f64> = Vec::with_capacity(n_us);

        for _ in 0..rounds {
            mandatory_streams.clear();
            mandatory_sizes.clear();
            prefetch_streams.clear();
            prefetch_sizes.clear();

            for (i, &credit) in self.credits.iter().enumerate() {
                if credit == 0 {
                    mandatory_streams.push(i);
                }
            }
            // Prefetch plan: offer slots level by level (all streams get
            // a chance to reach credit 1 before anyone goes for 2, etc.),
            // so the insurance spreads evenly and a stream can gain more
            // than one fragment per round when there is slack.
            let mut planned: Vec<u32> = self.credits.clone();
            loop {
                let mut order: Vec<usize> = (0..n_us)
                    .filter(|&i| planned[i] < self.cfg.work_ahead)
                    .collect();
                if order.is_empty() {
                    break;
                }
                order.sort_by_key(|&i| planned[i]);
                let level = planned[order[0]];
                let this_level: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&i| planned[i] == level)
                    .collect();
                for i in this_level {
                    prefetch_streams.push(i);
                    planned[i] += 1;
                }
            }

            // Draw sizes. (All prefetch sizes are drawn up front; only
            // the served prefix is consumed by the simulator, but drawing
            // all keeps the accounting simple and the RNG stream aligned.)
            let law = &self.cfg.base.sizes;
            for _ in &mandatory_streams {
                mandatory_sizes.push(law.sample(&mut self.rng));
            }
            for _ in &prefetch_streams {
                prefetch_sizes.push(law.sample(&mut self.rng));
            }

            let (outcome, extra) = self
                .sim
                .run_round_sized_with_extras(&mandatory_sizes, &prefetch_sizes);
            if outcome.late {
                stats.late_rounds += 1;
            }
            // Mandatory fetches that completed late glitch their stream.
            for &slot in &outcome.glitched_streams {
                let stream = mandatory_streams[slot as usize];
                stats.glitches_per_stream[stream] += 1;
            }
            // Prefetches served: +1 credit each.
            for (&stream, &bytes) in prefetch_streams
                .iter()
                .zip(prefetch_sizes.iter())
                .take(extra.served)
            {
                self.credits[stream] += 1;
                self.held_bytes[stream] += bytes;
                stats.prefetches += 1;
            }
            // Consumption: streams holding credit burn one; mandatory
            // streams consumed the fragment that was just fetched.
            for i in 0..n_us {
                if self.credits[i] > 0 && !mandatory_streams.contains(&i) {
                    self.credits[i] -= 1;
                    // FIFO byte accounting at fragment-mean granularity:
                    // remove a proportional share.
                    let share = self.held_bytes[i] / f64::from(self.credits[i] + 1);
                    self.held_bytes[i] -= share;
                }
                stats.credit.push(f64::from(self.credits[i]));
                stats.buffer_bytes.push(self.held_bytes[i]);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(work_ahead: u32) -> WorkAheadConfig {
        WorkAheadConfig {
            base: SimConfig::paper_reference().unwrap(),
            work_ahead,
        }
    }

    #[test]
    fn zero_work_ahead_matches_baseline_glitch_accounting() {
        // With work_ahead = 0 every stream is mandatory every round; the
        // glitch totals must match a plain engine run at equal N.
        let mut wa = WorkAheadSimulator::new(config(0), 5).unwrap();
        let stats = wa.run(30, 2_000);
        assert_eq!(stats.prefetches, 0);
        assert_eq!(stats.credit.max(), 0.0);
        assert!(stats.late_rounds > 0, "N = 30 must overrun sometimes");
        assert!(stats.total_glitches() >= stats.late_rounds);
    }

    #[test]
    fn work_ahead_reduces_glitches_markedly() {
        let glitch_rate = |wa: u32| {
            let mut sim = WorkAheadSimulator::new(config(wa), 6).unwrap();
            sim.run(30, 4_000).glitch_rate()
        };
        let base = glitch_rate(0);
        let buffered = glitch_rate(3);
        assert!(base > 0.0);
        assert!(
            buffered < base / 3.0,
            "work-ahead 3 should cut glitches >=3x: {base} -> {buffered}"
        );
    }

    #[test]
    fn credits_respect_the_cap() {
        let mut sim = WorkAheadSimulator::new(config(2), 7).unwrap();
        let stats = sim.run(20, 500);
        assert!(stats.credit.max() <= 2.0);
        assert!(stats.prefetches > 0);
        assert!(stats.buffer_bytes.max() > 0.0);
    }

    #[test]
    fn light_load_fills_buffers_to_steady_state() {
        // With lots of slack every stream refills to the cap each round
        // and consumes one: the post-consumption steady state is cap − 1.
        let mut sim = WorkAheadSimulator::new(config(4), 8).unwrap();
        let stats = sim.run(8, 500);
        assert!(
            (stats.credit.mean() - 3.0).abs() < 0.2,
            "mean credit {} away from cap - 1",
            stats.credit.mean()
        );
        assert_eq!(stats.total_glitches(), 0);
    }
}
