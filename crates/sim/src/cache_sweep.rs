//! Glitch rate vs cache size vs popularity skew.
//!
//! The paper's validation (§4) simulates independent streams; a fragment
//! cache changes the picture only when streams *share* objects. This
//! module provides a compact shared-catalog round simulator: `N` streams
//! play stored objects drawn from a [`Zipf`] popularity law, every round
//! each stream's next fragment is looked up in a [`FragmentCache`] and
//! only the misses go to the disk's SCAN sweep. Delayed hits coalesce
//! onto the in-flight fetch and inherit its lateness, exactly as the
//! server layer does.
//!
//! [`sweep`] maps out the experiment of the caching story: how the
//! per-stream glitch rate falls as the cache grows, and how strongly that
//! depends on the Zipf skew.

use crate::round::{OverrunPolicy, RoundSimulator, SeekPolicy, SimConfig};
use crate::SimError;
use mzd_cache::{CacheConfig, CachePolicy, FragmentCache, FragmentKey, Lookup};
use mzd_disk::Disk;
use mzd_workload::{SizeDistribution, Zipf};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::HashMap;

/// Configuration of one cache-sweep simulation point.
#[derive(Debug, Clone)]
pub struct CacheSweepConfig {
    /// Disk model serving the misses.
    pub disk: Disk,
    /// Round length, seconds.
    pub round_length: f64,
    /// Concurrent streams.
    pub streams: u32,
    /// Catalog size (number of stored objects).
    pub objects: u32,
    /// Length of every object, rounds.
    pub object_rounds: u32,
    /// Fragment-size law of the stored objects.
    pub sizes: SizeDistribution,
    /// Zipf skew of object popularity (0 = uniform).
    pub zipf_skew: f64,
    /// Cache byte budget (0 disables the cache).
    pub cache_bytes: f64,
    /// Cache replacement policy.
    pub policy: CachePolicy,
    /// Rounds to simulate.
    pub rounds: u64,
}

impl CacheSweepConfig {
    /// A reference configuration: the paper's disk and fragment law, a
    /// 40-object catalog of 20-minute videos, Zipf(1.0) popularity.
    ///
    /// # Errors
    /// Propagates disk-profile construction errors.
    pub fn reference() -> Result<Self, SimError> {
        let disk = mzd_disk::profiles::quantum_viking_2_1()
            .build()
            .map_err(|e| SimError::Invalid(e.to_string()))?;
        Ok(Self {
            disk,
            round_length: 1.0,
            streams: 28,
            objects: 40,
            object_rounds: 1200,
            sizes: SizeDistribution::paper_default(),
            zipf_skew: 1.0,
            cache_bytes: 0.0,
            policy: CachePolicy::Lru,
            rounds: 2_000,
        })
    }
}

/// Measured outcome of one `(cache size, skew)` simulation point.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSweepPoint {
    /// Cache byte budget simulated.
    pub cache_bytes: f64,
    /// Zipf skew simulated.
    pub zipf_skew: f64,
    /// Stream-rounds simulated (streams × rounds).
    pub stream_rounds: u64,
    /// Total glitches over all streams (late fetches plus the coalesced
    /// waiters they delayed).
    pub glitches: u64,
    /// Requests that reached a disk sweep.
    pub disk_requests: u64,
    /// Fraction of lookups the cache absorbed (hits + delayed hits).
    pub hit_ratio: f64,
    /// Fraction of lookups that were delayed hits.
    pub delayed_hit_share: f64,
}

impl CacheSweepPoint {
    /// Glitches per stream-round.
    #[must_use]
    pub fn glitch_rate(&self) -> f64 {
        if self.stream_rounds == 0 {
            return 0.0;
        }
        self.glitches as f64 / self.stream_rounds as f64
    }
}

struct Stream {
    object: u32,
    position: u32,
}

/// Simulate one point: `cfg.streams` concurrent readers over a shared
/// Zipf-popular catalog, with the configured cache in front of one disk.
/// Deterministic for a given `(cfg, seed)`.
///
/// # Errors
/// [`SimError::Invalid`] for zero streams/objects/rounds or invalid skew.
pub fn run_point(cfg: &CacheSweepConfig, seed: u64) -> Result<CacheSweepPoint, SimError> {
    if cfg.streams == 0 || cfg.objects == 0 || cfg.object_rounds == 0 || cfg.rounds == 0 {
        return Err(SimError::Invalid(
            "cache sweep needs at least one stream, object and round".into(),
        ));
    }
    let zipf = Zipf::new(cfg.objects as usize, cfg.zipf_skew)
        .map_err(|e| SimError::Invalid(e.to_string()))?;
    let mut cache = if cfg.cache_bytes > 0.0 {
        Some(
            FragmentCache::new(CacheConfig {
                capacity_bytes: cfg.cache_bytes,
                policy: cfg.policy,
            })
            .map_err(|e| SimError::Invalid(e.to_string()))?,
        )
    } else {
        None
    };
    let sim_cfg = SimConfig {
        disk: cfg.disk.clone(),
        sizes: cfg.sizes.clone(),
        round_length: cfg.round_length,
        seek_policy: SeekPolicy::Scan,
        overrun: OverrunPolicy::CompleteAll,
        placement: mzd_disk::PlacementPolicy::UniformByCapacity,
        recalibration: None,
        faults: None,
    };
    let mut disk = RoundSimulator::new(sim_cfg, seed.wrapping_add(1))?;
    let mut rng = StdRng::seed_from_u64(seed);

    // Staggered start positions so trailing readers can hit what leaders
    // fetched; object choice is Zipf.
    let mut streams: Vec<Stream> = (0..cfg.streams)
        .map(|_| Stream {
            object: zipf.sample(&mut rng) as u32,
            position: rng.random_range(0..cfg.object_rounds),
        })
        .collect();

    let rot_half = cfg.disk.rotation_time() / 2.0;
    let inv_rate = cfg.disk.inverse_rate_moment(1);
    let mut glitches = 0u64;
    let mut disk_requests = 0u64;
    let mut batch_sizes: Vec<f64> = Vec::new();
    let mut batch_keys: Vec<FragmentKey> = Vec::new();
    let mut waiters: HashMap<FragmentKey, u64> = HashMap::new();

    for _ in 0..cfg.rounds {
        batch_sizes.clear();
        batch_keys.clear();
        waiters.clear();
        for (i, s) in streams.iter().enumerate() {
            let key = FragmentKey {
                object: u64::from(s.object),
                fragment: s.position,
            };
            // Content seed `object + 1` keeps object 0 distinct from the
            // 0-seed degenerate stream.
            let bytes = cfg.sizes.sample_at(u64::from(s.object) + 1, s.position);
            match &mut cache {
                Some(c) => {
                    c.update_reader(i as u64, key.object, s.position);
                    match c.lookup(key) {
                        Lookup::Hit => {}
                        Lookup::DelayedHit => {
                            *waiters.entry(key).or_insert(0) += 1;
                        }
                        Lookup::Miss => {
                            c.begin_fetch(key);
                            batch_sizes.push(bytes);
                            batch_keys.push(key);
                        }
                    }
                }
                None => {
                    batch_sizes.push(bytes);
                    batch_keys.push(key);
                }
            }
        }
        disk_requests += batch_sizes.len() as u64;
        let out = disk.run_round_sized(&batch_sizes);
        for &slot in &out.glitched_streams {
            // The fetching stream glitches, and so does every stream that
            // coalesced onto its fetch.
            glitches += 1;
            let key = batch_keys[slot as usize];
            glitches += waiters.get(&key).copied().unwrap_or(0);
        }
        if let Some(c) = &mut cache {
            for (slot, &key) in batch_keys.iter().enumerate() {
                let bytes = batch_sizes[slot];
                c.complete_fetch(key, bytes, rot_half + bytes * inv_rate);
            }
        }
        for (i, s) in streams.iter_mut().enumerate() {
            s.position += 1;
            if s.position >= cfg.object_rounds {
                // Play-out finished: the slot is immediately reused by a
                // fresh request (constant load), drawn from the same law.
                s.object = zipf.sample(&mut rng) as u32;
                s.position = 0;
                if let Some(c) = &mut cache {
                    c.update_reader(i as u64, u64::from(s.object), 0);
                }
            }
        }
    }

    let stream_rounds = u64::from(cfg.streams) * cfg.rounds;
    let (hit_ratio, delayed_hit_share) = match &cache {
        Some(c) => {
            let s = c.stats();
            let lookups = s.lookups().max(1);
            (
                s.disk_avoidance_ratio(),
                s.delayed_hits as f64 / lookups as f64,
            )
        }
        None => (0.0, 0.0),
    };
    Ok(CacheSweepPoint {
        cache_bytes: cfg.cache_bytes,
        zipf_skew: cfg.zipf_skew,
        stream_rounds,
        glitches,
        disk_requests,
        hit_ratio,
        delayed_hit_share,
    })
}

/// Run the full grid: every `(cache size, skew)` combination on the base
/// configuration. Each point uses a seed derived from `seed` and its grid
/// coordinates, so the grid is reproducible and points are independent —
/// which also makes them safe to fan out across the worker pool. Results
/// come back in grid order (cache sizes outer, skews inner), identical
/// to the serial nesting for any worker count.
///
/// # Errors
/// Propagates the first (in grid order) failing point's error, if any.
pub fn sweep(
    base: &CacheSweepConfig,
    cache_sizes: &[f64],
    skews: &[f64],
    seed: u64,
) -> Result<Vec<CacheSweepPoint>, SimError> {
    let cells: Vec<(usize, usize)> = (0..cache_sizes.len())
        .flat_map(|i| (0..skews.len()).map(move |j| (i, j)))
        .collect();
    mzd_par::par_map(&cells, |&(i, j)| {
        let mut cfg = base.clone();
        cfg.cache_bytes = cache_sizes[i];
        cfg.zipf_skew = skews[j];
        let point_seed = seed
            .wrapping_add((i as u64) << 32)
            .wrapping_add(j as u64 + 1);
        run_point(&cfg, point_seed)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CacheSweepConfig {
        let mut cfg = CacheSweepConfig::reference().unwrap();
        cfg.streams = 20;
        cfg.objects = 8;
        cfg.object_rounds = 60;
        cfg.rounds = 300;
        cfg
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut cfg = quick();
        cfg.streams = 0;
        assert!(run_point(&cfg, 1).is_err());
        let mut cfg = quick();
        cfg.rounds = 0;
        assert!(run_point(&cfg, 1).is_err());
        let mut cfg = quick();
        cfg.zipf_skew = -1.0;
        assert!(run_point(&cfg, 1).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let mut cfg = quick();
        cfg.cache_bytes = 50e6;
        let a = run_point(&cfg, 7).unwrap();
        let b = run_point(&cfg, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cache_absorbs_disk_traffic() {
        let mut cfg = quick();
        let cacheless = run_point(&cfg, 11).unwrap();
        assert_eq!(cacheless.hit_ratio, 0.0);
        assert_eq!(cacheless.disk_requests, cacheless.stream_rounds);
        cfg.cache_bytes = 200e6;
        let cached = run_point(&cfg, 11).unwrap();
        assert!(cached.hit_ratio > 0.2, "hit ratio {}", cached.hit_ratio);
        assert!(cached.disk_requests < cacheless.disk_requests);
        assert_eq!(
            cached.disk_requests + (cached.hit_ratio * cached.stream_rounds as f64).round() as u64,
            cached.stream_rounds,
            "hits + disk visits account for every lookup"
        );
    }

    #[test]
    fn skew_increases_cache_value() {
        let mut cfg = quick();
        cfg.cache_bytes = 60e6;
        cfg.zipf_skew = 0.0;
        let flat = run_point(&cfg, 13).unwrap();
        cfg.zipf_skew = 1.4;
        let steep = run_point(&cfg, 13).unwrap();
        assert!(
            steep.hit_ratio > flat.hit_ratio,
            "steep {} vs flat {}",
            steep.hit_ratio,
            flat.hit_ratio
        );
    }

    #[test]
    fn overload_glitches_fall_with_cache_size() {
        // 40 streams on one Viking disk is past the admission limit:
        // without a cache the sweep overruns chronically; a large cache
        // thins the batches back under control.
        let mut cfg = quick();
        cfg.streams = 40;
        let hot = run_point(&cfg, 17).unwrap();
        assert!(hot.glitch_rate() > 0.05, "rate {}", hot.glitch_rate());
        cfg.cache_bytes = 400e6;
        let cooled = run_point(&cfg, 17).unwrap();
        assert!(
            cooled.glitch_rate() < hot.glitch_rate() / 2.0,
            "cooled {} vs hot {}",
            cooled.glitch_rate(),
            hot.glitch_rate()
        );
    }

    #[test]
    fn sweep_runs_the_grid() {
        let cfg = quick();
        let points = sweep(&cfg, &[0.0, 100e6], &[0.5, 1.0], 19).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].cache_bytes, 0.0);
        assert_eq!(points[3].zipf_skew, 1.0);
        for p in &points {
            assert!(p.glitch_rate() >= 0.0);
            assert!((0.0..=1.0).contains(&p.hit_ratio));
        }
    }
}
