//! Single-round mechanics: request generation, sweep ordering and
//! completion times.
//!
//! A round serves one request per active stream. Requests are placed
//! uniformly over the disk's *capacity* (outer zones proportionally more
//! likely, eq. 3.2.1), sorted into SCAN order, and served with
//!
//! ```text
//! completion_i = completion_{i−1} + seek(gap_i) + rot_i + bytes_i / rate(zone_i)
//! ```
//!
//! where `rot_i ~ U(0, ROT)` and the arm alternates sweep direction
//! between rounds (elevator). A stream glitches when its request completes
//! after the round deadline.
//!
//! Since the event-core rewrite, every entry point here is a thin wrapper
//! over the crate-private `event::EventCore` — batched RNG draws, struct-of-arrays
//! round state and logical-time event ordering — with a draw schedule
//! bit-identical to the original per-request loop (the test-only `legacy`
//! module below keeps the original loop verbatim as the equivalence
//! oracle).

use crate::event::{Event, EventCore, RoundSizes};
use crate::SimError;
use mzd_disk::placement::PlacementPolicy;
use mzd_disk::scan::SweepDirection;
use mzd_disk::Disk;
use mzd_fault::{FaultConfig, FaultCounters, FaultInjector};
use mzd_workload::SizeDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Index of the fault injector's sub-stream under `mzd_par::derive_seed`:
/// the injector draws from an independent stream keyed off the simulator
/// seed, so fault draws never perturb the simulator's own RNG (a
/// zero-fault profile is byte-identical to running without an injector).
const FAULT_SEED_STREAM: u64 = 0xFA17;

/// Default per-round request capacity preallocated by
/// [`RoundSimulator::new`]; callers that know their admission cap should
/// use [`RoundSimulator::with_capacity`].
const DEFAULT_ROUND_CAPACITY: usize = 64;

/// Global-registry handles cached per simulator so the per-round hot
/// path never touches the registry's lock.
#[derive(Debug)]
struct RoundMetrics {
    rounds: mzd_telemetry::Counter,
    late: mzd_telemetry::Counter,
    service_time: mzd_telemetry::Histogram,
    seek_time: mzd_telemetry::Histogram,
    rotational_time: mzd_telemetry::Histogram,
    transfer_time: mzd_telemetry::Histogram,
}

impl RoundMetrics {
    fn new() -> Self {
        let g = mzd_telemetry::global();
        Self {
            rounds: g.counter("sim.rounds"),
            late: g.counter("sim.round.late"),
            service_time: g.histogram("sim.round.service_time"),
            seek_time: g.histogram("sim.round.seek_time"),
            rotational_time: g.histogram("sim.round.rotational_time"),
            transfer_time: g.histogram("sim.round.transfer_time"),
        }
    }
}

/// `fault.*` metric handles. Registered eagerly at simulator construction
/// — even fault-free runs expose the full (zeroed) family, so clean and
/// faulted runs present identical metric catalogs to scrapers and the
/// Prometheus exposition.
#[derive(Debug)]
struct FaultMetrics {
    media_errors: mzd_telemetry::Counter,
    retries: mzd_telemetry::Counter,
    stalls: mzd_telemetry::Counter,
    remaps: mzd_telemetry::Counter,
    failed_reads: mzd_telemetry::Counter,
    unavailable_rounds: mzd_telemetry::Counter,
    fault_time: mzd_telemetry::Histogram,
}

impl FaultMetrics {
    fn new() -> Self {
        let g = mzd_telemetry::global();
        Self {
            media_errors: g.counter("fault.media_errors"),
            retries: g.counter("fault.retries"),
            stalls: g.counter("fault.stalls"),
            remaps: g.counter("fault.remaps"),
            failed_reads: g.counter("fault.failed_reads"),
            unavailable_rounds: g.counter("fault.unavailable_rounds"),
            fault_time: g.histogram("fault.round_time"),
        }
    }

    fn observe(&self, delta: &FaultCounters) {
        self.media_errors.add(delta.media_errors);
        self.retries.add(delta.retries);
        self.stalls.add(delta.stalls);
        self.remaps.add(delta.remaps);
        self.failed_reads.add(delta.failed_reads);
        self.unavailable_rounds.add(delta.unavailable_rounds);
        self.fault_time.record(delta.fault_time);
    }
}

/// Disk-arm scheduling policy within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeekPolicy {
    /// SCAN (elevator): serve in cylinder order, alternating direction
    /// per round — the paper's policy (§2.3).
    #[default]
    Scan,
    /// First-come-first-served in arrival (stream) order with independent
    /// seeks — the baseline assumed by the related work the paper improves
    /// on (\[CZ94\], \[CL96\]).
    Fcfs,
}

/// What happens to requests still unserved at the round deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverrunPolicy {
    /// The round runs to completion; late streams glitch but the next
    /// round starts on schedule (server-push with per-round deadlines —
    /// the paper's model, where rounds are independent).
    #[default]
    CompleteAll,
    /// The sweep is aborted at the deadline: unserved requests glitch and
    /// are dropped, and the arm stays where the deadline caught it.
    AbortAtDeadline,
}

/// Configuration of a per-disk round simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The disk being simulated.
    pub disk: Disk,
    /// Fragment-size law (per stream per round, i.i.d.).
    pub sizes: SizeDistribution,
    /// Round length `t`, seconds.
    pub round_length: f64,
    /// Arm scheduling policy.
    pub seek_policy: SeekPolicy,
    /// Deadline-overrun handling.
    pub overrun: OverrunPolicy,
    /// Where fragments live on the disk.
    pub placement: PlacementPolicy,
    /// Optional thermal-recalibration model (\[RW94\]: drives of the era
    /// paused for tens to hundreds of milliseconds every few tens of
    /// seconds to re-measure head alignment — a classic hazard for
    /// real-time service that AV-rated drives suppressed).
    pub recalibration: Option<Recalibration>,
    /// Optional fault injection: media-error rereads, transient stalls,
    /// unavailability windows, remap detours and chaos scenarios
    /// ([`mzd_fault::FaultConfig`]). `None` — and a config whose profile
    /// is all-zero — leaves every simulated round byte-identical to the
    /// fault-free simulator. (`only_disk` is a server-layer concern and
    /// ignored here: the per-disk simulator injects whatever it is
    /// given.)
    pub faults: Option<FaultConfig>,
}

/// Thermal-recalibration behaviour: every round, with probability
/// `1/mean_interval_rounds`, the disk stalls for `duration` seconds
/// before serving its sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recalibration {
    /// Mean rounds between recalibrations (geometric).
    pub mean_interval_rounds: f64,
    /// Stall duration, seconds.
    pub duration: f64,
}

impl SimConfig {
    /// The paper's §4 validation setup: Quantum Viking 2.1, Gamma
    /// (200 KB, (100 KB)²) fragments, 1-second rounds, SCAN.
    ///
    /// # Errors
    /// Never in practice; propagated for uniformity.
    pub fn paper_reference() -> Result<Self, SimError> {
        let disk = mzd_disk::profiles::quantum_viking_2_1()
            .build()
            .map_err(|e| SimError::Invalid(e.to_string()))?;
        Ok(Self {
            disk,
            sizes: SizeDistribution::paper_default(),
            round_length: 1.0,
            seek_policy: SeekPolicy::Scan,
            overrun: OverrunPolicy::CompleteAll,
            placement: PlacementPolicy::UniformByCapacity,
            recalibration: None,
            faults: None,
        })
    }

    /// Validate the configuration.
    ///
    /// # Errors
    /// [`SimError::Invalid`] for a non-positive round length.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.round_length > 0.0) || !self.round_length.is_finite() {
            return Err(SimError::Invalid(format!(
                "round length must be positive, got {}",
                self.round_length
            )));
        }
        self.placement
            .validate(&self.disk)
            .map_err(|e| SimError::Invalid(e.to_string()))?;
        if let Some(r) = self.recalibration {
            if !(r.mean_interval_rounds >= 1.0) || !(r.duration >= 0.0) || !r.duration.is_finite() {
                return Err(SimError::Invalid(format!(
                    "recalibration needs interval >= 1 round and duration >= 0,                      got interval {} and duration {}",
                    r.mean_interval_rounds, r.duration
                )));
            }
        }
        if let Some(f) = &self.faults {
            f.validate().map_err(|e| SimError::Invalid(e.to_string()))?;
        }
        Ok(())
    }
}

/// Outcome of one simulated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Total service time of the round's sweep, seconds (the simulated
    /// `T_N` of eq. 3.1.1).
    pub service_time: f64,
    /// Whether the round overran the deadline (`service_time > t`).
    pub late: bool,
    /// Stream indices (0-based) whose requests completed *after* the
    /// deadline — the glitched streams of this round.
    pub glitched_streams: Vec<u32>,
    /// Decomposition: total seek time of the sweep.
    pub seek_time: f64,
    /// Decomposition: total rotational latency.
    pub rotational_time: f64,
    /// Decomposition: total transfer time.
    pub transfer_time: f64,
    /// Decomposition: thermal-recalibration stall, if one fired this
    /// round (0 otherwise).
    pub stall_time: f64,
    /// Decomposition: time added by injected faults — retry rereads,
    /// backoff waits, transient stalls and remap detours (0 when no
    /// injector is configured or no fault fired).
    pub fault_time: f64,
}

/// Outcome of the discrete best-effort phase of a mixed round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteOutcome {
    /// Discrete requests completed within the round.
    pub served: usize,
    /// Time spent on them, seconds.
    pub time_used: f64,
}

/// Simulates successive rounds on one disk for a fixed stream count.
///
/// Holds the arm state (position + sweep direction) across rounds; the
/// RNG is owned so runs are reproducible from the seed. All rounds run
/// through the discrete-event core ([`crate::event`]): batched draws,
/// preallocated struct-of-arrays state, and (in traced mode) the
/// `(time, kind_rank, seq)`-ordered event stream.
///
/// ```
/// use mzd_sim::{RoundSimulator, SimConfig};
/// let mut sim = RoundSimulator::new(SimConfig::paper_reference().unwrap(), 42).unwrap();
/// let outcome = sim.run_round(27);
/// // A typical N = 27 round takes ~0.8 s of the 1 s budget.
/// assert!(outcome.service_time > 0.4 && outcome.service_time < 1.3);
/// ```
#[derive(Debug)]
pub struct RoundSimulator {
    cfg: SimConfig,
    rng: StdRng,
    arm_position: u32,
    direction: SweepDirection,
    /// The discrete-event round core: draw buffer, arenas, placement
    /// tables, event queue.
    core: EventCore,
    /// Rounds served so far — the logical round id of emitted events.
    rounds_run: u64,
    metrics: RoundMetrics,
    /// Fault injector, when `cfg.faults` is set. Owns a private RNG
    /// stream so the simulator's own draws are untouched.
    injector: Option<FaultInjector>,
    fault_metrics: FaultMetrics,
    /// Injector counters as of the last observed round, for per-round
    /// deltas.
    last_fault_counters: FaultCounters,
}

impl RoundSimulator {
    /// Create a simulator with the given seed.
    ///
    /// # Errors
    /// Propagates configuration validation.
    pub fn new(cfg: SimConfig, seed: u64) -> Result<Self, SimError> {
        Self::with_capacity(cfg, seed, DEFAULT_ROUND_CAPACITY)
    }

    /// Create a simulator preallocating round state (arenas, draw
    /// buffer) for up to `streams` requests per round — the server
    /// passes its admission cap here. Rounds at or below that size do
    /// zero steady-state allocations; larger rounds still work and just
    /// grow the arenas once.
    ///
    /// # Errors
    /// Propagates configuration validation.
    pub fn with_capacity(cfg: SimConfig, seed: u64, streams: usize) -> Result<Self, SimError> {
        cfg.validate()?;
        let weights = cfg
            .placement
            .zone_weights(&cfg.disk)
            .map_err(|e| SimError::Invalid(e.to_string()))?;
        let injector = cfg
            .faults
            .as_ref()
            .map(|fc| FaultInjector::new(fc, mzd_par::derive_seed(seed, FAULT_SEED_STREAM)));
        let core = EventCore::new(&cfg.disk, &weights, streams);
        Ok(Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            arm_position: 0,
            direction: SweepDirection::Up,
            core,
            rounds_run: 0,
            metrics: RoundMetrics::new(),
            injector,
            fault_metrics: FaultMetrics::new(),
            last_fault_counters: FaultCounters::default(),
        })
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Rounds served so far — the logical position of this simulator's
    /// RNG stream. Two simulators with the same seed and the same
    /// `rounds_run` have consumed the same draws, so this is the stream
    /// position flight-recorder snapshots carry (the vendored RNG
    /// exposes no internal counter).
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Cumulative fault-injector counters as of the last observed round.
    /// All-zero when no injector is configured (or none has fired yet) —
    /// callers get one shape for clean and faulted runs alike.
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        self.last_fault_counters
    }

    /// Swap the placement policy mid-run — the drift-injection primitive:
    /// a layout migration (or a mis-modeled allocator) changes where new
    /// requests land while the analytic model still assumes the old law.
    /// Validates against the disk and recomputes the per-zone selection
    /// weights; arm state, RNG stream and round counter are untouched, so
    /// a seeded run stays reproducible across the switch.
    ///
    /// # Errors
    /// [`SimError::Invalid`] if the policy does not fit the disk (e.g.
    /// more zones than the disk has).
    pub fn set_placement(&mut self, placement: PlacementPolicy) -> Result<(), SimError> {
        placement
            .validate(&self.cfg.disk)
            .map_err(|e| SimError::Invalid(e.to_string()))?;
        let weights = placement
            .zone_weights(&self.cfg.disk)
            .map_err(|e| SimError::Invalid(e.to_string()))?;
        self.core.set_weights(&self.cfg.disk, &weights);
        self.cfg.placement = placement;
        Ok(())
    }

    /// Simulate one round serving `n` streams (stream indices `0..n`),
    /// with fragment sizes drawn i.i.d. from the configured law.
    pub fn run_round(&mut self, n: u32) -> RoundOutcome {
        let outcome = self.core.round(
            &self.cfg,
            RoundSizes::Law {
                n,
                law: &self.cfg.sizes,
            },
            &mut self.rng,
            self.injector.as_mut(),
            &mut self.arm_position,
            &mut self.direction,
            None,
        );
        self.observe_round(&outcome, n as usize);
        outcome
    }

    /// Like [`Self::run_round`], additionally draining the round's full
    /// logical-time event stream — request issues, seek and transfer
    /// completions, fault retries, the round boundary — into `events`
    /// (replacing its contents), ordered by the `(time, kind_rank, seq)`
    /// total order. The outcome is byte-identical to the untraced round
    /// for the same seed and round index.
    pub fn run_round_traced(&mut self, n: u32, events: &mut Vec<Event>) -> RoundOutcome {
        let outcome = self.core.round(
            &self.cfg,
            RoundSizes::Law {
                n,
                law: &self.cfg.sizes,
            },
            &mut self.rng,
            self.injector.as_mut(),
            &mut self.arm_position,
            &mut self.direction,
            Some(events),
        );
        self.observe_round(&outcome, n as usize);
        outcome
    }

    /// Simulate one round with caller-provided fragment sizes (bytes):
    /// stream `i` requests `sizes[i]`. Placement and rotational latency
    /// are still drawn by the simulator. Used by the server layer, where
    /// each stream has its own object and size law.
    pub fn run_round_sized(&mut self, sizes: &[f64]) -> RoundOutcome {
        let outcome = self.core.round(
            &self.cfg,
            RoundSizes::Given(sizes),
            &mut self.rng,
            self.injector.as_mut(),
            &mut self.arm_position,
            &mut self.direction,
            None,
        );
        self.observe_round(&outcome, sizes.len());
        outcome
    }

    /// Draw one placement under the configured policy: a zone by the
    /// policy's weights (binary search over prefix sums), then a
    /// cylinder uniform within the zone.
    fn place(&mut self) -> (u32, usize) {
        self.core.place(&mut self.rng)
    }

    /// Serve one round of `n` continuous streams, then as many of the
    /// `discrete` requests (FCFS, given sizes in bytes) as *complete*
    /// within the remaining round time — the mixed-workload discipline of
    /// the paper's §6 outlook: continuous requests keep priority, discrete
    /// requests are served best-effort in the slack.
    ///
    /// Returns the continuous outcome plus the number of discrete requests
    /// served and the time they consumed.
    pub fn run_round_with_discrete(
        &mut self,
        n: u32,
        discrete: &[f64],
    ) -> (RoundOutcome, DiscreteOutcome) {
        let outcome = self.run_round(n);
        let extra = self.serve_extras(outcome.service_time, discrete);
        (outcome, extra)
    }

    /// Like [`Self::run_round_with_discrete`] but with caller-provided
    /// sizes for the priority batch too — the work-ahead prefetching
    /// discipline uses this (mandatory fetches in the SCAN sweep,
    /// prefetches best-effort in the slack).
    pub fn run_round_sized_with_extras(
        &mut self,
        sizes: &[f64],
        extras: &[f64],
    ) -> (RoundOutcome, DiscreteOutcome) {
        let outcome = self.run_round_sized(sizes);
        let extra = self.serve_extras(outcome.service_time, extras);
        (outcome, extra)
    }

    /// Serve `extras` FCFS from the current arm position for as long as
    /// each request still completes before the deadline.
    fn serve_extras(&mut self, start_clock: f64, extras: &[f64]) -> DiscreteOutcome {
        let deadline = self.cfg.round_length;
        let mut clock = start_clock;
        let mut served = 0usize;
        let mut time_used = 0.0;
        for &bytes in extras {
            if clock >= deadline {
                break;
            }
            // Cost the request before committing: the scheduler knows the
            // target position and can bound the service time.
            let (cylinder, zone) = self.place();
            let seek = self
                .cfg
                .disk
                .seek_curve()
                .seek_time_cyl(self.arm_position.abs_diff(cylinder));
            let rotational = self.core.rotational(&mut self.rng);
            let cost = seek + rotational + self.core.transfer_time(zone, bytes);
            if clock + cost > deadline {
                break;
            }
            clock += cost;
            time_used += cost;
            served += 1;
            self.arm_position = cylinder;
        }
        DiscreteOutcome { served, time_used }
    }

    /// Record the round into the metrics registry and (when a sink is
    /// installed) the event log. Keyed by the logical round id, so a
    /// seeded replay emits a byte-identical event stream.
    fn observe_round(&mut self, outcome: &RoundOutcome, n: usize) {
        let round = self.rounds_run;
        self.rounds_run += 1;
        let m = &self.metrics;
        m.rounds.inc();
        if outcome.late {
            m.late.inc();
        }
        m.service_time.record(outcome.service_time);
        m.seek_time.record(outcome.seek_time);
        m.rotational_time.record(outcome.rotational_time);
        m.transfer_time.record(outcome.transfer_time);
        if let Some(inj) = &self.injector {
            let now = inj.counters();
            self.fault_metrics
                .observe(&now.minus(&self.last_fault_counters));
            self.last_fault_counters = now;
        }
        if mzd_telemetry::events_enabled() {
            let glitched: Vec<u64> = outcome
                .glitched_streams
                .iter()
                .map(|&s| u64::from(s))
                .collect();
            mzd_telemetry::emit(
                mzd_telemetry::Event::new("sim.round")
                    .u64("round", round)
                    .u64("n", n as u64)
                    .f64("service_time", outcome.service_time)
                    .f64("seek", outcome.seek_time)
                    .f64("rot", outcome.rotational_time)
                    .f64("transfer", outcome.transfer_time)
                    .f64("stall", outcome.stall_time)
                    .f64("fault", outcome.fault_time)
                    .bool("late", outcome.late)
                    .u64_list("glitched", &glitched),
            );
        }
    }
}

/// The pre-event-core round loop, kept verbatim (minus telemetry) as the
/// equivalence oracle: the tests below byte-diff `RoundOutcome` streams
/// of [`RoundSimulator`] against this reference on the paper anchors.
#[cfg(test)]
mod legacy {
    use super::*;
    use rand::RngExt as _;

    #[derive(Debug, Clone, Copy)]
    struct Request {
        stream: u32,
        cylinder: u32,
        zone: usize,
        bytes: f64,
        rotational: f64,
    }

    pub struct LegacySimulator {
        cfg: SimConfig,
        rng: StdRng,
        arm_position: u32,
        direction: SweepDirection,
        zone_cdf: Vec<f64>,
        requests: Vec<Request>,
        injector: Option<FaultInjector>,
    }

    impl LegacySimulator {
        pub fn new(cfg: SimConfig, seed: u64) -> Self {
            let zone_cdf = cfg.placement.zone_weights(&cfg.disk).unwrap();
            let injector = cfg
                .faults
                .as_ref()
                .map(|fc| FaultInjector::new(fc, mzd_par::derive_seed(seed, FAULT_SEED_STREAM)));
            Self {
                cfg,
                rng: StdRng::seed_from_u64(seed),
                arm_position: 0,
                direction: SweepDirection::Up,
                zone_cdf,
                requests: Vec::new(),
                injector,
            }
        }

        pub fn run_round(&mut self, n: u32) -> RoundOutcome {
            self.requests.clear();
            let rot = self.cfg.disk.rotation_time();
            for stream in 0..n {
                let (cylinder, zone) = self.place();
                let bytes = self.cfg.sizes.sample(&mut self.rng);
                let rotational = self.rng.random_range(0.0..rot);
                self.requests.push(Request {
                    stream,
                    cylinder,
                    zone,
                    bytes,
                    rotational,
                });
            }
            self.order_and_serve()
        }

        pub fn run_round_sized(&mut self, sizes: &[f64]) -> RoundOutcome {
            self.requests.clear();
            let rot = self.cfg.disk.rotation_time();
            for (stream, &bytes) in sizes.iter().enumerate() {
                let (cylinder, zone) = self.place();
                let rotational = self.rng.random_range(0.0..rot);
                self.requests.push(Request {
                    stream: stream as u32,
                    cylinder,
                    zone,
                    bytes,
                    rotational,
                });
            }
            self.order_and_serve()
        }

        pub fn run_round_sized_with_extras(
            &mut self,
            sizes: &[f64],
            extras: &[f64],
        ) -> (RoundOutcome, DiscreteOutcome) {
            let outcome = self.run_round_sized(sizes);
            let extra = self.serve_extras(outcome.service_time, extras);
            (outcome, extra)
        }

        fn place(&mut self) -> (u32, usize) {
            let u: f64 = self.rng.random();
            let zone = {
                let target = u.clamp(0.0, 1.0);
                let mut acc = 0.0;
                let mut chosen = self.zone_cdf.len() - 1;
                for (i, &w) in self.zone_cdf.iter().enumerate() {
                    acc += w;
                    if target < acc {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            let first = self.cfg.disk.zone_first_cylinder(zone);
            let count = self.cfg.disk.zone_cylinder_count(zone);
            let cyl = first + self.rng.random_range(0..count);
            (cyl, zone)
        }

        fn serve_extras(&mut self, start_clock: f64, extras: &[f64]) -> DiscreteOutcome {
            let deadline = self.cfg.round_length;
            let mut clock = start_clock;
            let mut served = 0usize;
            let mut time_used = 0.0;
            let rot = self.cfg.disk.rotation_time();
            for &bytes in extras {
                if clock >= deadline {
                    break;
                }
                let (cylinder, zone) = self.place();
                let seek = self
                    .cfg
                    .disk
                    .seek_curve()
                    .seek_time_cyl(self.arm_position.abs_diff(cylinder));
                let rotational = self.rng.random_range(0.0..rot);
                let cost = seek + rotational + self.cfg.disk.transfer_time(zone, bytes);
                if clock + cost > deadline {
                    break;
                }
                clock += cost;
                time_used += cost;
                served += 1;
                self.arm_position = cylinder;
            }
            DiscreteOutcome { served, time_used }
        }

        fn order_and_serve(&mut self) -> RoundOutcome {
            match self.cfg.seek_policy {
                SeekPolicy::Scan => match self.direction {
                    SweepDirection::Up => self.requests.sort_by_key(|r| r.cylinder),
                    SweepDirection::Down => {
                        self.requests.sort_by_key(|r| std::cmp::Reverse(r.cylinder));
                    }
                },
                SeekPolicy::Fcfs => {}
            }
            let stall = match self.cfg.recalibration {
                Some(r) if self.rng.random::<f64>() < 1.0 / r.mean_interval_rounds => r.duration,
                _ => 0.0,
            };
            let disk = &self.cfg.disk;
            let curve = disk.seek_curve();
            let deadline = self.cfg.round_length;
            let full_seek = curve.max_seek_time(disk.cylinders());
            let mut injector = self.injector.as_mut();
            if let Some(inj) = injector.as_deref_mut() {
                inj.begin_round();
            }
            let mut clock = stall;
            let mut seek_total = 0.0;
            let mut rot_total = 0.0;
            let mut trans_total = 0.0;
            let mut fault_total = 0.0;
            let mut glitched = Vec::new();
            let mut pos = self.arm_position;
            for req in &self.requests {
                if self.cfg.overrun == OverrunPolicy::AbortAtDeadline && clock > deadline {
                    glitched.push(req.stream);
                    continue;
                }
                let dist = pos.abs_diff(req.cylinder);
                let seek = curve.seek_time_cyl(dist);
                let transfer = disk.transfer_time(req.zone, req.bytes);
                clock += seek + req.rotational + transfer;
                seek_total += seek;
                rot_total += req.rotational;
                trans_total += transfer;
                pos = req.cylinder;
                let mut failed = false;
                if let Some(inj) = injector.as_deref_mut() {
                    let pert = inj.perturb_read(
                        req.zone as u32,
                        transfer,
                        disk.rotation_time(),
                        full_seek,
                        deadline - clock,
                    );
                    clock += pert.extra_time;
                    fault_total += pert.extra_time;
                    failed = pert.failed;
                }
                if failed || clock > deadline {
                    glitched.push(req.stream);
                }
            }
            self.arm_position = pos;
            self.direction = self.direction.reversed();
            RoundOutcome {
                service_time: clock,
                late: clock > deadline,
                glitched_streams: glitched,
                seek_time: seek_total,
                rotational_time: rot_total,
                transfer_time: trans_total,
                stall_time: stall,
                fault_time: fault_total,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use mzd_disk::oyang;
    use rand::RngExt as _;

    fn sim(seed: u64) -> RoundSimulator {
        RoundSimulator::new(SimConfig::paper_reference().unwrap(), seed).unwrap()
    }

    /// Every field bit-for-bit: the event core must reproduce the legacy
    /// loop's exact f64 stream, not just values within tolerance.
    fn assert_bit_identical(a: &RoundOutcome, b: &RoundOutcome, ctx: &str) {
        assert_eq!(
            a.service_time.to_bits(),
            b.service_time.to_bits(),
            "{ctx}: service_time {} vs {}",
            a.service_time,
            b.service_time
        );
        assert_eq!(a.seek_time.to_bits(), b.seek_time.to_bits(), "{ctx}: seek");
        assert_eq!(
            a.rotational_time.to_bits(),
            b.rotational_time.to_bits(),
            "{ctx}: rot"
        );
        assert_eq!(
            a.transfer_time.to_bits(),
            b.transfer_time.to_bits(),
            "{ctx}: transfer"
        );
        assert_eq!(
            a.stall_time.to_bits(),
            b.stall_time.to_bits(),
            "{ctx}: stall"
        );
        assert_eq!(
            a.fault_time.to_bits(),
            b.fault_time.to_bits(),
            "{ctx}: fault"
        );
        assert_eq!(a.late, b.late, "{ctx}: late");
        assert_eq!(a.glitched_streams, b.glitched_streams, "{ctx}: glitched");
    }

    #[test]
    fn event_core_matches_legacy_on_figure1_anchors() {
        // Figure 1 sweeps N at the paper-reference config.
        for n in [14u32, 20, 27, 34] {
            let seed = 1000 + u64::from(n);
            let cfg = SimConfig::paper_reference().unwrap();
            let mut new = RoundSimulator::new(cfg.clone(), seed).unwrap();
            let mut old = legacy::LegacySimulator::new(cfg, seed);
            for round in 0..300 {
                let a = new.run_round(n);
                let b = old.run_round(n);
                assert_bit_identical(&a, &b, &format!("fig1 n={n} round={round}"));
            }
        }
    }

    #[test]
    fn event_core_matches_legacy_on_table2_anchors() {
        // Table 2 reads off p_error near the admission boundary.
        for n in 28u32..=32 {
            let seed = 2000 + u64::from(n);
            let cfg = SimConfig::paper_reference().unwrap();
            let mut new = RoundSimulator::new(cfg.clone(), seed).unwrap();
            let mut old = legacy::LegacySimulator::new(cfg, seed);
            for round in 0..200 {
                let a = new.run_round(n);
                let b = old.run_round(n);
                assert_bit_identical(&a, &b, &format!("table2 n={n} round={round}"));
            }
        }
    }

    #[test]
    fn event_core_matches_legacy_on_zonefail_faulted_run() {
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.faults = Some(mzd_fault::FaultConfig::preset("zonefail").unwrap());
        let mut new = RoundSimulator::new(cfg.clone(), 4242).unwrap();
        let mut old = legacy::LegacySimulator::new(cfg, 4242);
        for round in 0..500 {
            let a = new.run_round(26);
            let b = old.run_round(26);
            assert_bit_identical(&a, &b, &format!("zonefail round={round}"));
        }
    }

    #[test]
    fn event_core_matches_legacy_across_policies() {
        let variants: Vec<(&str, SimConfig)> = vec![
            {
                let mut c = SimConfig::paper_reference().unwrap();
                c.recalibration = Some(Recalibration {
                    mean_interval_rounds: 12.0,
                    duration: 0.2,
                });
                ("recalibration", c)
            },
            {
                let mut c = SimConfig::paper_reference().unwrap();
                c.seek_policy = SeekPolicy::Fcfs;
                ("fcfs", c)
            },
            {
                let mut c = SimConfig::paper_reference().unwrap();
                c.overrun = OverrunPolicy::AbortAtDeadline;
                ("abort", c)
            },
            {
                let mut c = SimConfig::paper_reference().unwrap();
                c.faults = Some(mzd_fault::FaultConfig::preset("flaky").unwrap());
                ("flaky", c)
            },
        ];
        for (name, cfg) in variants {
            let mut new = RoundSimulator::new(cfg.clone(), 77).unwrap();
            let mut old = legacy::LegacySimulator::new(cfg, 77);
            // Overload some rounds so Abort/late paths are exercised.
            for (round, n) in [26u32, 34, 200, 27, 40, 26]
                .iter()
                .cycle()
                .take(120)
                .enumerate()
            {
                let a = new.run_round(*n);
                let b = old.run_round(*n);
                assert_bit_identical(&a, &b, &format!("{name} round={round}"));
            }
        }
    }

    #[test]
    fn event_core_matches_legacy_on_sized_rounds_with_extras() {
        let cfg = SimConfig::paper_reference().unwrap();
        let mut new = RoundSimulator::new(cfg.clone(), 909).unwrap();
        let mut old = legacy::LegacySimulator::new(cfg, 909);
        let mut szrng = rand::rngs::StdRng::seed_from_u64(5);
        for round in 0..200 {
            let n = 10 + (round % 17) as usize;
            let sizes: Vec<f64> = (0..n)
                .map(|_| szrng.random_range(50_000.0..400_000.0))
                .collect();
            let extras: Vec<f64> = (0..6)
                .map(|_| szrng.random_range(50_000.0..200_000.0))
                .collect();
            let (a, ax) = new.run_round_sized_with_extras(&sizes, &extras);
            let (b, bx) = old.run_round_sized_with_extras(&sizes, &extras);
            assert_bit_identical(&a, &b, &format!("sized round={round}"));
            assert_eq!(ax.served, bx.served, "extras served, round={round}");
            assert_eq!(
                ax.time_used.to_bits(),
                bx.time_used.to_bits(),
                "extras time, round={round}"
            );
        }
    }

    #[test]
    fn traced_round_is_byte_identical_to_untraced() {
        let mut plain = sim(606);
        let mut traced = sim(606);
        let mut events = Vec::new();
        for round in 0..50 {
            let a = plain.run_round(27);
            let b = traced.run_round_traced(27, &mut events);
            assert_bit_identical(&a, &b, &format!("traced round={round}"));
        }
    }

    #[test]
    fn traced_event_stream_is_heap_ordered_and_complete() {
        let mut s = sim(607);
        let mut events = Vec::new();
        for _ in 0..20 {
            let n = 27u32;
            let out = s.run_round_traced(n, &mut events);
            // Fused serve order == heap order: the drained stream must be
            // sorted under the (time, kind_rank, seq) total order.
            for pair in events.windows(2) {
                assert!(
                    pair[0].precedes(&pair[1]),
                    "event stream out of order: {:?} then {:?}",
                    pair[0],
                    pair[1]
                );
            }
            let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
            assert_eq!(count(EventKind::RequestIssue), n as usize);
            assert_eq!(count(EventKind::SeekComplete), n as usize);
            assert_eq!(count(EventKind::TransferComplete), n as usize);
            assert_eq!(count(EventKind::RoundBoundary), 1);
            // The last transfer completion is the sweep's service time.
            let last_transfer = events
                .iter()
                .rfind(|e| e.kind == EventKind::TransferComplete)
                .unwrap();
            assert_eq!(last_transfer.time.to_bits(), out.service_time.to_bits());
        }
    }

    #[test]
    fn empty_round_is_instant() {
        let mut s = sim(1);
        let out = s.run_round(0);
        assert_eq!(out.service_time, 0.0);
        assert!(!out.late);
        assert!(out.glitched_streams.is_empty());
    }

    #[test]
    fn decomposition_sums_to_service_time() {
        let mut s = sim(2);
        for _ in 0..50 {
            let out = s.run_round(27);
            let sum = out.seek_time
                + out.rotational_time
                + out.transfer_time
                + out.stall_time
                + out.fault_time;
            assert!((out.service_time - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn faulty_decomposition_sums_to_service_time() {
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.faults = Some(mzd_fault::FaultConfig::preset("flaky").unwrap());
        let mut s = RoundSimulator::new(cfg, 2).unwrap();
        let mut fault_seen = 0.0;
        for _ in 0..200 {
            let out = s.run_round(27);
            let sum = out.seek_time
                + out.rotational_time
                + out.transfer_time
                + out.stall_time
                + out.fault_time;
            assert!((out.service_time - sum).abs() < 1e-9);
            fault_seen += out.fault_time;
        }
        assert!(fault_seen > 0.0, "flaky preset never injected anything");
    }

    #[test]
    fn zero_fault_injector_is_byte_identical_to_no_injector() {
        let mut plain = sim(21);
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.faults = Some(mzd_fault::FaultConfig::default());
        assert!(cfg.faults.as_ref().unwrap().profile.is_clean());
        let mut clean = RoundSimulator::new(cfg, 21).unwrap();
        for _ in 0..100 {
            assert_eq!(plain.run_round(26), clean.run_round(26));
        }
    }

    #[test]
    fn faulty_runs_are_deterministic_for_fixed_seed() {
        let cfg = || {
            let mut c = SimConfig::paper_reference().unwrap();
            c.faults = Some(mzd_fault::FaultConfig::preset("flaky").unwrap());
            c
        };
        let mut a = RoundSimulator::new(cfg(), 33).unwrap();
        let mut b = RoundSimulator::new(cfg(), 33).unwrap();
        for _ in 0..50 {
            assert_eq!(a.run_round(26), b.run_round(26));
        }
    }

    #[test]
    fn media_errors_raise_the_glitch_rate() {
        let glitches = |p_media: f64| {
            let mut cfg = SimConfig::paper_reference().unwrap();
            if p_media > 0.0 {
                cfg.faults = Some(mzd_fault::FaultConfig {
                    profile: mzd_fault::FaultProfile {
                        p_media,
                        ..mzd_fault::FaultProfile::default()
                    },
                    ..mzd_fault::FaultConfig::default()
                });
            }
            let mut s = RoundSimulator::new(cfg, 34).unwrap();
            let mut g = 0usize;
            for _ in 0..2000 {
                g += s.run_round(26).glitched_streams.len();
            }
            g
        };
        let clean = glitches(0.0);
        let faulty = glitches(0.05);
        assert!(
            faulty > clean + 20,
            "5% media errors: {faulty} glitches vs clean {clean}"
        );
    }

    #[test]
    fn unavailability_windows_glitch_whole_rounds() {
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.faults = Some(mzd_fault::FaultConfig {
            profile: mzd_fault::FaultProfile {
                p_unavail: 0.05,
                unavail_rounds: 2,
                ..mzd_fault::FaultProfile::default()
            },
            ..mzd_fault::FaultConfig::default()
        });
        let mut s = RoundSimulator::new(cfg, 35).unwrap();
        let n = 10u32;
        let mut whole_round_glitches = 0u32;
        for _ in 0..1000 {
            let out = s.run_round(n);
            // An unavailable round fails every read without stretching
            // the clock: all n streams glitch while the sweep itself
            // stays comfortably inside the deadline.
            if out.glitched_streams.len() == n as usize && !out.late {
                whole_round_glitches += 1;
            }
        }
        assert!(
            whole_round_glitches >= 50,
            "only {whole_round_glitches} unavailable rounds observed"
        );
    }

    #[test]
    fn edge_start_sweep_never_exceeds_oyang_bound() {
        // A monotone sweep starting at the disk edge — the configuration
        // Oyang's bound describes — must stay under the bound.
        let disk = SimConfig::paper_reference().unwrap().disk;
        for n in [1u32, 5, 15, 27, 40] {
            let bound = oyang::seek_bound(disk.seek_curve(), disk.cylinders(), n);
            for seed in 0..100 {
                let mut s = sim(seed); // fresh simulator: arm at cylinder 0
                let out = s.run_round(n);
                assert!(
                    out.seek_time <= bound + 1e-12,
                    "n = {n}, seed = {seed}: sweep seek {} > bound {bound}",
                    out.seek_time
                );
            }
        }
    }

    #[test]
    fn steady_state_sweep_seek_bounded_with_backtrack_slack() {
        // In steady state the elevator's direction reversal can add one
        // backtrack seek at the start of a sweep (the previous sweep ends
        // at its extreme *request*, not at the disk edge). The excess over
        // Oyang's idealized bound is at most one maximum seek, and the
        // *mean* sweep seek stays well below the bound.
        let mut s = sim(3);
        let disk = s.config().disk.clone();
        for n in [1u32, 5, 15, 27, 40] {
            let bound = oyang::seek_bound(disk.seek_curve(), disk.cylinders(), n);
            let slack = disk.seek_curve().max_seek_time(disk.cylinders());
            let mut mean = 0.0;
            let rounds = 300;
            for _ in 0..rounds {
                let out = s.run_round(n);
                assert!(
                    out.seek_time <= bound + slack + 1e-12,
                    "n = {n}: sweep seek {} > bound {bound} + slack {slack}",
                    out.seek_time
                );
                mean += out.seek_time;
            }
            mean /= f64::from(rounds);
            assert!(
                mean <= bound,
                "n = {n}: mean sweep seek {mean} > bound {bound}"
            );
        }
    }

    #[test]
    fn rotational_latencies_average_half_rot() {
        let mut s = sim(4);
        let mut acc = 0.0;
        let rounds = 2000;
        let n = 20u32;
        for _ in 0..rounds {
            acc += s.run_round(n).rotational_time;
        }
        let mean_per_request = acc / f64::from(rounds * n);
        let expected = s.config().disk.rotation_time() / 2.0;
        assert!(
            (mean_per_request / expected - 1.0).abs() < 0.02,
            "mean rot {mean_per_request} vs {expected}"
        );
    }

    #[test]
    fn transfer_time_mean_matches_analytic_moment() {
        let mut s = sim(5);
        let disk = s.config().disk.clone();
        let mut acc = 0.0;
        let rounds = 3000;
        let n = 20u32;
        for _ in 0..rounds {
            acc += s.run_round(n).transfer_time;
        }
        let mean = acc / f64::from(rounds * n);
        let expected = 200_000.0 * disk.inverse_rate_moment(1);
        assert!(
            (mean / expected - 1.0).abs() < 0.02,
            "mean transfer {mean} vs analytic {expected}"
        );
    }

    #[test]
    fn glitched_streams_match_lateness() {
        let mut s = sim(6);
        for _ in 0..200 {
            let out = s.run_round(30);
            if out.late {
                assert!(!out.glitched_streams.is_empty());
            } else {
                assert!(out.glitched_streams.is_empty());
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = sim(42);
        let mut b = sim(42);
        for _ in 0..20 {
            assert_eq!(a.run_round(25), b.run_round(25));
        }
    }

    #[test]
    fn capacity_hint_does_not_change_the_stream() {
        // with_capacity only preallocates: the draw stream and outcomes
        // are identical for any capacity hint, including undersized ones.
        let cfg = SimConfig::paper_reference().unwrap();
        let mut small = RoundSimulator::with_capacity(cfg.clone(), 64, 4).unwrap();
        let mut large = RoundSimulator::with_capacity(cfg, 64, 512).unwrap();
        for round in 0..50 {
            let a = small.run_round(27);
            let b = large.run_round(27);
            assert_bit_identical(&a, &b, &format!("capacity round={round}"));
        }
    }

    #[test]
    fn fcfs_has_higher_mean_service_time_than_scan() {
        let mut scan = sim(7);
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.seek_policy = SeekPolicy::Fcfs;
        let mut fcfs = RoundSimulator::new(cfg, 7).unwrap();
        let (mut t_scan, mut t_fcfs) = (0.0, 0.0);
        for _ in 0..1000 {
            t_scan += scan.run_round(27).service_time;
            t_fcfs += fcfs.run_round(27).service_time;
        }
        assert!(
            t_fcfs > t_scan * 1.05,
            "FCFS {t_fcfs} not clearly slower than SCAN {t_scan}"
        );
    }

    #[test]
    fn abort_policy_caps_measured_work() {
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.overrun = OverrunPolicy::AbortAtDeadline;
        // Overload grossly so the deadline always hits mid-sweep.
        let mut s = RoundSimulator::new(cfg, 8).unwrap();
        let out = s.run_round(200);
        assert!(out.late);
        assert!(!out.glitched_streams.is_empty());
        // Service time stops within one request of the deadline.
        assert!(out.service_time < 1.0 + 0.2);
    }

    #[test]
    fn placement_respects_capacity_weighting() {
        // Outer zones must receive proportionally more requests.
        let mut s = sim(9);
        let disk = s.config().disk.clone();
        let mut counts = vec![0u64; disk.zone_count()];
        for _ in 0..60_000 {
            let (_, zone) = s.place();
            counts[zone] += 1;
        }
        let total: u64 = counts.iter().sum();
        for (z, &c) in counts.iter().enumerate() {
            let expected = disk.zones().zone_probability(z);
            let observed = c as f64 / total as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "zone {z}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn sized_round_uses_exactly_the_given_sizes() {
        let mut s = sim(10);
        let disk = s.config().disk.clone();
        // One huge request alone: transfer time must be bytes / zone rate,
        // bounded by the innermost and outermost rates.
        let out = s.run_round_sized(&[10_000_000.0]);
        assert!(out.transfer_time >= 10_000_000.0 / disk.max_rate() - 1e-9);
        assert!(out.transfer_time <= 10_000_000.0 / disk.min_rate() + 1e-9);
        // Size ordering carries through on average.
        let mut small_total = 0.0;
        let mut big_total = 0.0;
        for _ in 0..300 {
            small_total += s.run_round_sized(&[100_000.0; 10]).transfer_time;
            big_total += s.run_round_sized(&[300_000.0; 10]).transfer_time;
        }
        assert!((big_total / small_total - 3.0).abs() < 0.05);
    }

    #[test]
    fn sized_round_glitch_indices_are_stream_slots() {
        let mut s = sim(11);
        // Grossly overload with 100 identical big requests: all glitched
        // indices must be valid slots.
        let sizes = vec![1_000_000.0; 100];
        let out = s.run_round_sized(&sizes);
        assert!(out.late);
        for &g in &out.glitched_streams {
            assert!((g as usize) < sizes.len());
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.round_length = 0.0;
        assert!(RoundSimulator::new(cfg, 0).is_err());
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.recalibration = Some(Recalibration {
            mean_interval_rounds: 0.5,
            duration: 0.1,
        });
        assert!(RoundSimulator::new(cfg, 0).is_err());
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.recalibration = Some(Recalibration {
            mean_interval_rounds: 30.0,
            duration: f64::NAN,
        });
        assert!(RoundSimulator::new(cfg, 0).is_err());
    }

    #[test]
    fn recalibration_stalls_show_up_at_the_right_rate() {
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.recalibration = Some(Recalibration {
            mean_interval_rounds: 20.0,
            duration: 0.25,
        });
        let mut s = RoundSimulator::new(cfg, 12).unwrap();
        let rounds = 4000;
        let mut stalled = 0u32;
        for _ in 0..rounds {
            let out = s.run_round(10);
            if out.stall_time > 0.0 {
                assert_eq!(out.stall_time, 0.25);
                stalled += 1;
            }
        }
        let rate = f64::from(stalled) / f64::from(rounds);
        assert!((rate - 0.05).abs() < 0.01, "stall rate {rate}");
    }

    #[test]
    fn recalibration_erodes_the_guarantee() {
        // At N = 26 the clean drive almost never overruns; a 250 ms
        // recalibration every ~30 rounds pushes p_late to roughly the
        // stall rate times the probability the stall tips the round over.
        let clean = {
            let mut s = sim(13);
            let mut late = 0;
            for _ in 0..3000 {
                if s.run_round(26).late {
                    late += 1;
                }
            }
            late
        };
        let mut cfg = SimConfig::paper_reference().unwrap();
        cfg.recalibration = Some(Recalibration {
            mean_interval_rounds: 30.0,
            duration: 0.25,
        });
        let mut s = RoundSimulator::new(cfg, 13).unwrap();
        let mut late = 0;
        for _ in 0..3000 {
            if s.run_round(26).late {
                late += 1;
            }
        }
        assert!(
            late > clean + 20,
            "recalibration late {late} vs clean {clean}"
        );
    }
}
