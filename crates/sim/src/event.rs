//! Discrete-event round core: logical-time event ordering,
//! struct-of-arrays round state, and batched RNG draws.
//!
//! This module is the hot path of the whole stack — every experiment
//! (`engine`, `cache_sweep`, `drift`, the server's per-disk rounds, the
//! cluster fleet) bottoms out in the crate-private `EventCore::round`.
//! Three ideas:
//!
//! 1. **Logical-time events with a fixed total order.** A round is a
//!    merged stream of [`Event`]s — request issues, seek completions,
//!    transfer completions, fault retries, the round boundary — ordered
//!    by the tiebreak `(time, kind_rank, seq)` ([`EventQueue`]). On a
//!    single-armed disk the sweep serves requests one at a time, so the
//!    heap would pop each request's seek → transfer → retry events
//!    consecutively; the serve loop therefore *fuses* those phases
//!    inline and only materialises the event stream when a trace sink
//!    is supplied ([`RoundSimulator::run_round_traced`] proves the
//!    fused order equals the heap order).
//! 2. **Struct-of-arrays state.** Per-request fields live in parallel
//!    preallocated arrays (`cylinder[]`, `zone[]`, `bytes[]`,
//!    `rotational[]`) reused across rounds; SCAN ordering sorts a
//!    packed `(key, index)` `u64` array with `sort_unstable` (stability
//!    recovered from the unique index in the low bits), so steady-state
//!    rounds allocate nothing.
//! 3. **Batched RNG draws.** One [`DrawBuffer::refill`] per round
//!    pre-materialises the raw `u64`s of the simulator's seeded stream;
//!    all samplers then consume them in index order. The buffer is a
//!    pure *window* onto the base stream — unconsumed draws carry over,
//!    exhaustion falls through to the base generator — so every derived
//!    draw (placement, fragment size, rotational latency,
//!    recalibration) is bit-identical to drawing from the base RNG
//!    directly, which keeps all seeded anchors byte-stable across the
//!    rewrite.
//!
//! [`RoundSimulator::run_round_traced`]: crate::RoundSimulator::run_round_traced

use crate::round::{OverrunPolicy, RoundOutcome, SeekPolicy, SimConfig};
use mzd_disk::scan::SweepDirection;
use mzd_disk::Disk;
use mzd_fault::FaultInjector;
use mzd_workload::SizeDistribution;
use rand::Rng;

/// Pre-materialised window onto a raw `u64` RNG stream.
///
/// [`DrawBuffer::refill`] pulls a batch of raw words from the base
/// generator; [`DrawBuffer::next`] serves them in order and falls back
/// to the base generator when the batch is exhausted. Unconsumed words
/// survive the next refill, so the sequence of values returned by
/// `next` is exactly the base stream regardless of refill timing.
#[derive(Debug, Default)]
pub struct DrawBuffer {
    buf: Vec<u64>,
    pos: usize,
}

impl DrawBuffer {
    /// An empty buffer with room for `n` raw draws.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            buf: Vec::with_capacity(n),
            pos: 0,
        }
    }

    /// Top the buffer up to `n` unconsumed raw draws from `base`.
    ///
    /// Unconsumed draws are retained — the buffer is a window onto the
    /// base stream and must never drop a word.
    pub fn refill<R: Rng + ?Sized>(&mut self, base: &mut R, n: usize) {
        self.buf.drain(..self.pos);
        self.pos = 0;
        while self.buf.len() < n {
            self.buf.push(base.next_u64());
        }
    }

    /// Next raw draw: buffered if available, else directly from `base`.
    #[inline(always)]
    pub fn next<R: Rng + ?Sized>(&mut self, base: &mut R) -> u64 {
        if self.pos < self.buf.len() {
            let v = self.buf[self.pos];
            self.pos += 1;
            v
        } else {
            base.next_u64()
        }
    }

    /// Uniform `f64` in `[0, 1)` — same bit recipe as the vendored
    /// `rand`'s `Standard` for `f64` (top 53 bits of one raw draw).
    #[inline(always)]
    pub fn f64_unit<R: Rng + ?Sized>(&mut self, base: &mut R) -> f64 {
        (self.next(base) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[start, end)` — same arithmetic (including the
    /// round-up guard) as the vendored `rand`'s `Range<f64>` sampler.
    #[inline(always)]
    pub fn f64_range<R: Rng + ?Sized>(&mut self, base: &mut R, start: f64, end: f64) -> f64 {
        let u = self.f64_unit(base);
        let v = start + u * (end - start);
        if v < end {
            v
        } else {
            start
        }
    }
}

/// [`Rng`] adapter that serves raw words from a [`DrawBuffer`].
///
/// `next_u32` derives from `next_u64` exactly as the vendored `StdRng`
/// does, so *every* sampler in the workspace (size laws, `random_range`,
/// shuffles) produces bit-identical values whether it draws through
/// this adapter or from the base generator directly.
#[derive(Debug)]
pub struct BufferedRng<'a, R: Rng + ?Sized> {
    draws: &'a mut DrawBuffer,
    base: &'a mut R,
}

impl<'a, R: Rng + ?Sized> BufferedRng<'a, R> {
    /// Adapt `draws` over `base`.
    pub fn new(draws: &'a mut DrawBuffer, base: &'a mut R) -> Self {
        Self { draws, base }
    }
}

impl<R: Rng + ?Sized> Rng for BufferedRng<'_, R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.draws.next(self.base)
    }
}

/// Kind of a simulation event, in tiebreak-rank order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A stream's per-round request enters the queue (round start).
    RequestIssue,
    /// The arm reached the request's cylinder.
    SeekComplete,
    /// The fragment finished transferring (includes rotational latency).
    TransferComplete,
    /// An injected fault finished its retry/backoff detour.
    FaultRetry,
    /// The round deadline.
    RoundBoundary,
}

impl EventKind {
    /// Rank used by the `(time, kind_rank, seq)` total order: at equal
    /// logical times, issues sort before completions and the round
    /// boundary sorts last.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            EventKind::RequestIssue => 0,
            EventKind::SeekComplete => 1,
            EventKind::TransferComplete => 2,
            EventKind::FaultRetry => 3,
            EventKind::RoundBoundary => 4,
        }
    }
}

/// One logical-time simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Logical time within the round, seconds from the round start.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
    /// Emission sequence number — the final component of the total
    /// order, so two events never compare equal.
    pub seq: u32,
    /// The stream concerned (`u32::MAX` for [`EventKind::RoundBoundary`]).
    pub stream: u32,
}

impl Event {
    /// Strict total order `(time, kind_rank, seq)`; `time` compares via
    /// `total_cmp` so the order is well-defined for every bit pattern.
    #[must_use]
    pub fn precedes(&self, other: &Event) -> bool {
        match self.time.total_cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                (self.kind.rank(), self.seq) < (other.kind.rank(), other.seq)
            }
        }
    }
}

/// Binary min-heap of [`Event`]s under the `(time, kind_rank, seq)`
/// total order.
///
/// A hand-rolled heap rather than `std::collections::BinaryHeap` so the
/// comparator can use `f64::total_cmp` without wrapping events in an
/// `Ord` newtype, and so the backing storage is reusable across rounds.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: Vec<Event>,
}

impl EventQueue {
    /// An empty queue with room for `n` events.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: Vec::with_capacity(n),
        }
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all queued events, keeping the storage.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Insert an event.
    pub fn push(&mut self, e: Event) {
        self.heap.push(e);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].precedes(&self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Remove and return the earliest event under the total order.
    pub fn pop(&mut self) -> Option<Event> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let out = self.heap.pop();
        let n = self.heap.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut least = i;
            if l < n && self.heap[l].precedes(&self.heap[least]) {
                least = l;
            }
            if r < n && self.heap[r].precedes(&self.heap[least]) {
                least = r;
            }
            if least == i {
                break;
            }
            self.heap.swap(i, least);
            i = least;
        }
        out
    }
}

/// Struct-of-arrays per-round request state, reused across rounds.
#[derive(Debug, Default)]
struct Arena {
    stream: Vec<u32>,
    cylinder: Vec<u32>,
    zone: Vec<u32>,
    bytes: Vec<f64>,
    rotational: Vec<f64>,
    /// Packed SCAN sort keys: `(direction_key << 32) | index`.
    order: Vec<u64>,
}

impl Arena {
    /// Grow every column to hold at least `n` requests.
    fn ensure(&mut self, n: usize) {
        if self.stream.len() < n {
            self.stream.resize(n, 0);
            self.cylinder.resize(n, 0);
            self.zone.resize(n, 0);
            self.bytes.resize(n, 0.0);
            self.rotational.resize(n, 0.0);
            self.order.resize(n, 0);
        }
    }
}

/// Precomputed placement tables for the configured zone weights.
#[derive(Debug)]
struct PlacementTables {
    /// Prefix sums of the zone weights, accumulated left-to-right in
    /// the same order as the legacy linear scan (so the selected zone
    /// is identical for every draw, down to f64 rounding).
    cum: Vec<f64>,
    /// First cylinder of each zone.
    first: Vec<u32>,
    /// Cylinders in each zone.
    span: Vec<u64>,
    /// Lemire rejection threshold per zone: `2^64 mod span`, hoisted
    /// out of the per-draw loop (the vendored `random_range` recomputes
    /// this 64-bit modulo on every call).
    thr: Vec<u64>,
    /// Transfer rate of each zone, bytes/second.
    rate: Vec<f64>,
}

impl PlacementTables {
    fn new(disk: &Disk, weights: &[f64]) -> Self {
        let nz = weights.len();
        let mut cum = Vec::with_capacity(nz);
        let mut acc = 0.0f64;
        for &w in weights {
            acc += w;
            cum.push(acc);
        }
        let first: Vec<u32> = (0..nz).map(|z| disk.zone_first_cylinder(z)).collect();
        let span: Vec<u64> = (0..nz)
            .map(|z| u64::from(disk.zone_cylinder_count(z)))
            .collect();
        let thr: Vec<u64> = span.iter().map(|&s| s.wrapping_neg() % s).collect();
        let rate: Vec<f64> = (0..nz).map(|z| disk.zone_rate(z)).collect();
        Self {
            cum,
            first,
            span,
            thr,
            rate,
        }
    }
}

/// Where a round's fragment sizes come from.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RoundSizes<'a> {
    /// Draw `n` sizes i.i.d. from the configured law.
    Law {
        /// Streams served this round.
        n: u32,
        /// The size law to draw from.
        law: &'a SizeDistribution,
    },
    /// Caller-provided sizes, one per stream.
    Given(&'a [f64]),
}

impl RoundSizes<'_> {
    fn len(&self) -> usize {
        match *self {
            RoundSizes::Law { n, .. } => n as usize,
            RoundSizes::Given(s) => s.len(),
        }
    }
}

/// The discrete-event round core: batched draws, arena state, event
/// ordering. One per [`crate::RoundSimulator`]; all round entry points
/// funnel through [`EventCore::round`].
#[derive(Debug)]
pub(crate) struct EventCore {
    draws: DrawBuffer,
    arena: Arena,
    tables: PlacementTables,
    queue: EventQueue,
    /// Event emission counter within the current traced round.
    seq: u32,
    /// Cached disk constants (pure functions of the immutable disk).
    rot: f64,
    full_seek: f64,
}

/// Raw draws prefetched per request when sizes come from a law (zone +
/// cylinder + size sample + rotational; sized at the Gamma law's
/// expected consumption).
const DRAWS_PER_REQ_LAW: usize = 8;
/// Raw draws prefetched per request with caller-provided sizes.
const DRAWS_PER_REQ_GIVEN: usize = 4;

impl EventCore {
    /// Build a core for `disk` with placement `weights`, preallocating
    /// arena and draw-buffer storage for rounds of up to `capacity`
    /// requests (steady-state rounds at or below that size allocate
    /// nothing).
    pub(crate) fn new(disk: &Disk, weights: &[f64], capacity: usize) -> Self {
        let mut arena = Arena::default();
        arena.ensure(capacity);
        Self {
            draws: DrawBuffer::with_capacity(capacity * DRAWS_PER_REQ_LAW + 1),
            arena,
            tables: PlacementTables::new(disk, weights),
            queue: EventQueue::default(),
            seq: 0,
            rot: disk.rotation_time(),
            full_seek: disk.seek_curve().max_seek_time(disk.cylinders()),
        }
    }

    /// Swap the placement weights (drift injection / `set_placement`).
    pub(crate) fn set_weights(&mut self, disk: &Disk, weights: &[f64]) {
        self.tables = PlacementTables::new(disk, weights);
    }

    /// Draw one placement: a zone by the configured weights (binary
    /// search over the prefix sums), then a cylinder uniform within the
    /// zone (Lemire rejection with the hoisted threshold). Draw-for-draw
    /// and bit-for-bit identical to the legacy linear scan +
    /// `random_range(0..count)`.
    #[inline]
    pub(crate) fn place<R: Rng + ?Sized>(&mut self, base: &mut R) -> (u32, usize) {
        let u = self.draws.f64_unit(base);
        let target = u.clamp(0.0, 1.0);
        let t = &self.tables;
        let zone = t.cum.partition_point(|&c| c <= target).min(t.cum.len() - 1);
        let span = t.span[zone];
        let thr = t.thr[zone];
        let off = loop {
            let r = self.draws.next(base);
            let m = u128::from(r) * u128::from(span);
            if (m as u64) >= thr {
                break (m >> 64) as u32;
            }
        };
        (t.first[zone] + off, zone)
    }

    /// Draw one rotational latency, `U(0, ROT)`.
    #[inline]
    pub(crate) fn rotational<R: Rng + ?Sized>(&mut self, base: &mut R) -> f64 {
        self.draws.f64_range(base, 0.0, self.rot)
    }

    /// Transfer time of `bytes` in `zone` (precomputed rate).
    #[inline]
    pub(crate) fn transfer_time(&self, zone: usize, bytes: f64) -> f64 {
        bytes / self.tables.rate[zone]
    }

    #[inline]
    fn emit(&mut self, kind: EventKind, time: f64, stream: u32) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event {
            time,
            kind,
            seq,
            stream,
        });
    }

    /// Run one round: generate requests (batched draws, arena state),
    /// order the sweep, and serve it against the logical clock.
    ///
    /// `arm` and `direction` are the cross-round elevator state, owned
    /// by the caller. When `trace` is supplied, the round's full event
    /// stream is heap-ordered under `(time, kind_rank, seq)` and
    /// drained into it (replacing its contents).
    ///
    /// The draw schedule is exactly the legacy per-request sequence —
    /// zone, cylinder, [size when drawn from a law,] rotational latency
    /// per request in stream order, then the recalibration draw — so a
    /// seeded run is byte-identical to the pre-event-core simulator.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn round<R: Rng + ?Sized>(
        &mut self,
        cfg: &SimConfig,
        sizes: RoundSizes<'_>,
        rng: &mut R,
        mut injector: Option<&mut FaultInjector>,
        arm: &mut u32,
        direction: &mut SweepDirection,
        trace: Option<&mut Vec<Event>>,
    ) -> RoundOutcome {
        let n = sizes.len();
        self.arena.ensure(n);
        let per_req = match sizes {
            RoundSizes::Law { .. } => DRAWS_PER_REQ_LAW,
            RoundSizes::Given(_) => DRAWS_PER_REQ_GIVEN,
        };
        self.draws
            .refill(rng, n * per_req + usize::from(cfg.recalibration.is_some()));

        for i in 0..n {
            let (cylinder, zone) = self.place(rng);
            let bytes = match sizes {
                RoundSizes::Law { law, .. } => {
                    law.sample(&mut BufferedRng::new(&mut self.draws, rng))
                }
                RoundSizes::Given(s) => s[i],
            };
            let rotational = self.draws.f64_range(rng, 0.0, self.rot);
            self.arena.stream[i] = i as u32;
            self.arena.cylinder[i] = cylinder;
            self.arena.zone[i] = zone as u32;
            self.arena.bytes[i] = bytes;
            self.arena.rotational[i] = rotational;
        }

        // The recalibration draw follows all request draws, exactly as
        // the legacy loop ordered it.
        let stall = match cfg.recalibration {
            Some(r) if self.draws.f64_unit(rng) < 1.0 / r.mean_interval_rounds => r.duration,
            _ => 0.0,
        };

        match cfg.seek_policy {
            SeekPolicy::Scan => {
                // Packed keys: stable cylinder order recovered from the
                // unique index in the low 32 bits, so `sort_unstable`
                // (allocation-free) matches the legacy stable sort.
                let up = *direction == SweepDirection::Up;
                for i in 0..n {
                    let key = if up {
                        self.arena.cylinder[i]
                    } else {
                        !self.arena.cylinder[i]
                    };
                    self.arena.order[i] = u64::from(key) << 32 | i as u64;
                }
                self.arena.order[..n].sort_unstable();
            }
            SeekPolicy::Fcfs => {
                for (i, slot) in self.arena.order[..n].iter_mut().enumerate() {
                    *slot = i as u64;
                }
            }
        }

        let tracing = trace.is_some();
        if tracing {
            self.queue.clear();
            self.seq = 0;
            for i in 0..n {
                self.emit(EventKind::RequestIssue, 0.0, i as u32);
            }
        }

        let curve = cfg.disk.seek_curve();
        let deadline = cfg.round_length;
        if let Some(inj) = injector.as_deref_mut() {
            inj.begin_round();
        }
        let mut clock = stall;
        let mut seek_total = 0.0;
        let mut rot_total = 0.0;
        let mut trans_total = 0.0;
        let mut fault_total = 0.0;
        let mut glitched = Vec::new();
        let mut pos = *arm;
        for k in 0..n {
            let i = (self.arena.order[k] & 0xffff_ffff) as usize;
            if cfg.overrun == OverrunPolicy::AbortAtDeadline && clock > deadline {
                glitched.push(self.arena.stream[i]);
                continue;
            }
            let cylinder = self.arena.cylinder[i];
            let zone = self.arena.zone[i] as usize;
            let dist = pos.abs_diff(cylinder);
            let seek = curve.seek_time_cyl(dist);
            let rotational = self.arena.rotational[i];
            let transfer = self.arena.bytes[i] / self.tables.rate[zone];
            let issue_clock = clock;
            // One expression: the addition order is load-bearing for
            // bit-identity with the legacy loop.
            clock += seek + rotational + transfer;
            seek_total += seek;
            rot_total += rotational;
            trans_total += transfer;
            pos = cylinder;
            let served_clock = clock;
            let mut failed = false;
            let mut extra = 0.0;
            if let Some(inj) = injector.as_deref_mut() {
                let pert = inj.perturb_read(
                    zone as u32,
                    transfer,
                    self.rot,
                    self.full_seek,
                    deadline - clock,
                );
                clock += pert.extra_time;
                fault_total += pert.extra_time;
                failed = pert.failed;
                extra = pert.extra_time;
            }
            if failed || clock > deadline {
                glitched.push(self.arena.stream[i]);
            }
            if tracing {
                let stream = self.arena.stream[i];
                self.emit(EventKind::SeekComplete, issue_clock + seek, stream);
                self.emit(EventKind::TransferComplete, served_clock, stream);
                if extra > 0.0 {
                    self.emit(EventKind::FaultRetry, clock, stream);
                }
            }
        }
        *arm = pos;
        *direction = direction.reversed();
        if let Some(out) = trace {
            self.emit(EventKind::RoundBoundary, deadline, u32::MAX);
            out.clear();
            while let Some(e) = self.queue.pop() {
                out.push(e);
            }
        }
        RoundOutcome {
            service_time: clock,
            late: clock > deadline,
            glitched_streams: glitched,
            seek_time: seek_total,
            rotational_time: rot_total,
            transfer_time: trans_total,
            stall_time: stall,
            fault_time: fault_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    #[test]
    fn draw_buffer_is_a_window_onto_the_base_stream() {
        let mut direct = StdRng::seed_from_u64(99);
        let mut base = StdRng::seed_from_u64(99);
        let mut db = DrawBuffer::with_capacity(16);
        let mut got = Vec::new();
        // Interleave refills of varying sizes with draws, including a
        // stretch past the buffered window (fallback path).
        db.refill(&mut base, 5);
        for _ in 0..3 {
            got.push(db.next(&mut base));
        }
        db.refill(&mut base, 7); // 2 unconsumed carry over
        for _ in 0..10 {
            got.push(db.next(&mut base)); // drains past the window
        }
        db.refill(&mut base, 4);
        for _ in 0..4 {
            got.push(db.next(&mut base));
        }
        let want: Vec<u64> = (0..got.len()).map(|_| direct.next_u64()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn buffered_rng_matches_direct_draws() {
        let mut direct = StdRng::seed_from_u64(7);
        let mut base = StdRng::seed_from_u64(7);
        let mut db = DrawBuffer::with_capacity(64);
        db.refill(&mut base, 40);
        let mut br = BufferedRng::new(&mut db, &mut base);
        for _ in 0..20 {
            let a: f64 = br.random();
            let b: f64 = direct.random();
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(br.random_range(0..1000u32), direct.random_range(0..1000u32));
            let a = br.random_range(0.0..0.25f64);
            let b = direct.random_range(0.0..0.25f64);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Satellite: `partition_point` zone selection must agree with the
    /// legacy linear scan for every draw, including exact boundaries.
    #[test]
    fn partition_point_matches_linear_scan_on_boundaries() {
        let disk = crate::SimConfig::paper_reference().unwrap().disk;
        let weights = mzd_disk::placement::PlacementPolicy::UniformByCapacity
            .zone_weights(&disk)
            .unwrap();
        let tables = PlacementTables::new(&disk, &weights);
        let legacy = |target: f64| {
            let mut acc = 0.0;
            let mut chosen = weights.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                acc += w;
                if target < acc {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let fast = |target: f64| {
            tables
                .cum
                .partition_point(|&c| c <= target)
                .min(tables.cum.len() - 1)
        };
        let mut probes = vec![0.0, 0.5, 1.0 - 1e-16, 1.0];
        for &c in &tables.cum {
            // Exactly on, just below, and just above every boundary.
            probes.push(c);
            probes.push(f64::from_bits(c.to_bits().wrapping_sub(1)));
            probes.push(f64::from_bits(c.to_bits() + 1));
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            probes.push(rng.random());
        }
        for u in probes {
            let target = u.clamp(0.0, 1.0);
            assert_eq!(
                fast(target),
                legacy(target),
                "zone selection diverged at u = {u:?}"
            );
        }
    }

    #[test]
    fn queue_orders_by_time_rank_seq() {
        let mut q = EventQueue::with_capacity(8);
        let e = |time, kind, seq| Event {
            time,
            kind,
            seq,
            stream: 0,
        };
        // Pushed deliberately out of order, with time ties broken by
        // rank and a full (time, rank) tie broken by seq.
        let expect = [
            e(0.0, EventKind::RequestIssue, 0),
            e(0.0, EventKind::RequestIssue, 1),
            e(0.25, EventKind::SeekComplete, 2),
            e(0.25, EventKind::TransferComplete, 3),
            e(0.25, EventKind::FaultRetry, 4),
            e(0.25, EventKind::FaultRetry, 5),
            e(1.0, EventKind::TransferComplete, 6),
            e(1.0, EventKind::RoundBoundary, 7),
        ];
        for i in [5usize, 0, 7, 3, 6, 1, 4, 2] {
            q.push(expect[i]);
        }
        let mut got = Vec::new();
        while let Some(ev) = q.pop() {
            got.push(ev);
        }
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn queue_drains_random_events_in_total_order() {
        let mut rng = StdRng::seed_from_u64(11);
        let kinds = [
            EventKind::RequestIssue,
            EventKind::SeekComplete,
            EventKind::TransferComplete,
            EventKind::FaultRetry,
            EventKind::RoundBoundary,
        ];
        let mut q = EventQueue::default();
        for seq in 0..500u32 {
            q.push(Event {
                // Coarse times force plenty of ties.
                time: f64::from(rng.random_range(0..8u32)) * 0.125,
                kind: kinds[rng.random_range(0..kinds.len() as u32) as usize],
                seq,
                stream: seq,
            });
        }
        let mut prev: Option<Event> = None;
        let mut count = 0;
        while let Some(ev) = q.pop() {
            if let Some(p) = prev {
                assert!(p.precedes(&ev), "heap violated the total order");
            }
            prev = Some(ev);
            count += 1;
        }
        assert_eq!(count, 500);
    }
}
