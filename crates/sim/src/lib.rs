//! Round-based discrete-event simulation of SCAN-scheduled continuous-media
//! service on multi-zone disks — the validation apparatus of §4 of the
//! paper.
//!
//! Each scheduling round, every active stream needs one fragment from the
//! disk (§2.3). The simulator draws, per stream per round, an independent
//! fragment size and an independent capacity-uniform placement (matching
//! the layout assumption of §3.3), serves all requests in one SCAN sweep
//! with exact seek kinematics, uniform rotational latencies and per-zone
//! transfer rates, and records which streams completed within the round
//! length.
//!
//! * [`round`] — the mechanics of a single round (request generation,
//!   sweep ordering, completion times);
//! * [`event`] — the discrete-event core underneath every round:
//!   logical-time event ordering with a fixed `(time, kind_rank, seq)`
//!   tiebreak, struct-of-arrays request state in preallocated arenas,
//!   and batched RNG draws bit-identical to per-request draws;
//! * [`engine`] — multi-round simulation with per-stream glitch accounting;
//! * [`experiment`] — estimators for the paper's measured quantities:
//!   `p_late` (Figure 1) and `p_error` (Table 2), with Wilson confidence
//!   intervals;
//! * [`cache_sweep`] — a shared-catalog variant where Zipf-popular
//!   streams read through a fragment cache, mapping glitch rate against
//!   cache size and popularity skew;
//! * [`drift`] — a drift-injection scenario that skews placement toward
//!   the inner zones mid-run and measures how quickly the online
//!   conformance checker ([`mzd_slo`]) notices the model no longer holds.
//!
//! Determinism: every entry point takes a seed; identical seeds give
//! identical results on all platforms (the RNG is `StdRng` and all float
//! arithmetic is order-stable).

#![warn(missing_docs)]

pub mod cache_sweep;
pub mod drift;
pub mod engine;
pub mod event;
pub mod experiment;
pub mod mixed;
pub mod round;
pub mod workahead;

pub use cache_sweep::{run_point as run_cache_sweep_point, CacheSweepConfig, CacheSweepPoint};
pub use drift::{run_drift_scenario, DriftScenarioConfig, DriftScenarioReport};
pub use engine::{run_replicated_windows, GlitchAccounting, SimulationEngine};
pub use event::{DrawBuffer, Event, EventKind, EventQueue};
pub use experiment::{
    estimate_p_error, estimate_p_error_par, estimate_p_late, estimate_p_late_par, PErrorEstimate,
    PLateEstimate,
};
pub use mixed::{MixedConfig, MixedRunStats, MixedSimulator};
pub use round::{OverrunPolicy, RoundOutcome, RoundSimulator, SeekPolicy, SimConfig};
pub use workahead::{WorkAheadConfig, WorkAheadSimulator, WorkAheadStats};

/// Errors from simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration parameter was invalid.
    Invalid(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Invalid(msg) => write!(f, "invalid simulation parameters: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
