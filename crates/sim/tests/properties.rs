//! Property-based tests for the simulator: structural invariants of every
//! round outcome under randomized configurations.

use mzd_disk::PlacementPolicy;
use mzd_sim::round::Recalibration;
use mzd_sim::{MixedConfig, MixedSimulator, OverrunPolicy, RoundSimulator, SeekPolicy, SimConfig};
use mzd_workload::SizeDistribution;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        0.25f64..3.0,
        prop_oneof![Just(SeekPolicy::Scan), Just(SeekPolicy::Fcfs)],
        prop_oneof![
            Just(OverrunPolicy::CompleteAll),
            Just(OverrunPolicy::AbortAtDeadline)
        ],
        prop_oneof![
            Just(PlacementPolicy::UniformByCapacity),
            Just(PlacementPolicy::UniformByCylinder),
            Just(PlacementPolicy::OuterZones { zones: 5 }),
            Just(PlacementPolicy::InnerZones { zones: 5 }),
        ],
        prop::option::of((2.0f64..100.0, 0.0f64..0.5)),
        50_000.0f64..600_000.0,
        0.1f64..1.2,
    )
        .prop_map(
            |(round_length, seek_policy, overrun, placement, recal, mean, cv)| {
                let mut cfg = SimConfig::paper_reference().expect("valid");
                cfg.round_length = round_length;
                cfg.seek_policy = seek_policy;
                cfg.overrun = overrun;
                cfg.placement = placement;
                cfg.recalibration = recal.map(|(interval, duration)| Recalibration {
                    mean_interval_rounds: interval,
                    duration,
                });
                cfg.sizes = SizeDistribution::gamma(mean, (mean * cv).powi(2)).expect("valid");
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_round_outcome_is_structurally_sound(
        cfg in arb_config(),
        n in 0u32..60,
        seed in 0u64..100,
    ) {
        let mut sim = RoundSimulator::new(cfg.clone(), seed).expect("valid");
        for _ in 0..5 {
            let out = sim.run_round(n);
            prop_assert!(out.service_time >= 0.0);
            prop_assert!(out.seek_time >= 0.0);
            prop_assert!(out.rotational_time >= 0.0);
            prop_assert!(out.transfer_time >= 0.0);
            prop_assert!(out.stall_time >= 0.0);
            prop_assert_eq!(out.late, out.service_time > cfg.round_length);
            prop_assert!(out.glitched_streams.len() <= n as usize);
            for &g in &out.glitched_streams {
                prop_assert!(g < n);
            }
            if cfg.overrun == OverrunPolicy::CompleteAll {
                let sum = out.seek_time
                    + out.rotational_time
                    + out.transfer_time
                    + out.stall_time;
                prop_assert!((out.service_time - sum).abs() < 1e-9);
            }
            // Rotational latency per request is bounded by one revolution.
            if n > 0 && cfg.overrun == OverrunPolicy::CompleteAll {
                prop_assert!(
                    out.rotational_time
                        <= f64::from(n) * cfg.disk.rotation_time() + 1e-12
                );
            }
        }
    }

    #[test]
    fn sized_rounds_respect_rate_bounds(
        cfg in arb_config(),
        sizes in prop::collection::vec(1_000.0f64..5e6, 1..40),
        seed in 0u64..100,
    ) {
        // Transfer time must lie between all-outer and all-inner service.
        let mut cfg = cfg;
        cfg.overrun = OverrunPolicy::CompleteAll;
        let mut sim = RoundSimulator::new(cfg.clone(), seed).expect("valid");
        let out = sim.run_round_sized(&sizes);
        let total: f64 = sizes.iter().sum();
        prop_assert!(out.transfer_time >= total / cfg.disk.max_rate() - 1e-9);
        prop_assert!(out.transfer_time <= total / cfg.disk.min_rate() + 1e-9);
    }

    #[test]
    fn mixed_runs_conserve_discrete_requests(
        arrivals in 0.5f64..40.0,
        n in 1u32..30,
        seed in 0u64..50,
    ) {
        let cfg = MixedConfig::paper_reference(arrivals).expect("valid");
        let mut sim = MixedSimulator::new(cfg, seed).expect("valid");
        let stats = sim.run(n, 50);
        prop_assert_eq!(
            stats.discrete_arrived,
            stats.discrete_served + sim.queue_len() as u64 + stats.discrete_dropped
        );
        prop_assert!(stats.discrete_utilization.mean() >= 0.0);
        prop_assert!(stats.discrete_utilization.max() <= 1.0 + 1e-9);
        prop_assert!(stats.p_late() <= 1.0);
        prop_assert_eq!(stats.glitches_per_stream.len(), n as usize);
    }

    #[test]
    fn identical_seeds_identical_histories(cfg in arb_config(), n in 1u32..40, seed in 0u64..50) {
        let mut a = RoundSimulator::new(cfg.clone(), seed).expect("valid");
        let mut b = RoundSimulator::new(cfg, seed).expect("valid");
        for _ in 0..4 {
            prop_assert_eq!(a.run_round(n), b.run_round(n));
        }
    }
}
