//! Steady-state rounds must not allocate: the event core preallocates
//! its arenas and draw buffer at construction ([`RoundSimulator::with_capacity`])
//! and reuses them across rounds, so the per-round hot path is
//! allocation-free once warmed up. Verified with a counting global
//! allocator installed for this test binary only.

use mzd_sim::{RoundSimulator, SimConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations (and reallocations) observed process-wide.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_rounds_do_zero_allocations() {
    let cfg = SimConfig::paper_reference().unwrap();
    // Capacity sized to the round we run — the admission-cap contract.
    let n = 20u32;
    let mut sim = RoundSimulator::with_capacity(cfg, 42, n as usize).unwrap();
    let sizes = vec![150_000.0f64; 18];
    // Warm up: metric handles exist since construction; this settles the
    // draw buffer's high-water mark and any lazily-initialized telemetry
    // state. N = 20 keeps rounds far from the deadline, so the
    // glitched-streams vector stays empty (and unallocated) throughout.
    for _ in 0..100 {
        std::hint::black_box(sim.run_round(n));
        std::hint::black_box(sim.run_round_sized(&sizes));
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..2000 {
        let out = sim.run_round(n);
        assert!(out.glitched_streams.is_empty(), "round unexpectedly late");
        std::hint::black_box(&out);
        let out = sim.run_round_sized(&sizes);
        assert!(
            out.glitched_streams.is_empty(),
            "sized round unexpectedly late"
        );
        std::hint::black_box(&out);
    }
    let allocated = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocated, 0,
        "steady-state rounds performed {allocated} allocations"
    );
}
