//! Deterministic parallel execution for the mzd workspace.
//!
//! Every compute-heavy path in the reproduction — the §3 `N_max`
//! searches, the Gil–Pelaez CDF tabulation, the §4 validation sweeps —
//! is embarrassingly parallel across parameter points or replications.
//! This crate provides the one primitive they all share: an
//! order-preserving parallel map over an index range, backed by a
//! process-global work-stealing pool (dependency-free, `std` threads
//! only).
//!
//! # Determinism contract
//!
//! Scientific output must be byte-identical for **any** worker count:
//!
//! * [`par_map`] / [`par_map_indexed`] always join results in input
//!   order, whatever order tasks complete in;
//! * tasks must be pure functions of their index (no shared mutable
//!   state, no RNG draws from a shared stream) — anything stochastic
//!   derives an independent seed from its index via [`derive_seed`];
//! * serial execution is the `jobs = 1` special case of the same
//!   claim/steal code path, not a separate branch.
//!
//! Thread count therefore only moves wall-clock time, never results.
//!
//! # Configuration
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be overridden globally ([`set_jobs`], the CLI's `--jobs N`)
//! or per call ([`Parallelism`]).
//!
//! # Telemetry
//!
//! Counters `par.groups`, `par.tasks`, `par.steals` and histogram
//! `par.worker.busy_seconds` land in the [`mzd_telemetry::global`]
//! registry, marked execution-scoped: their values depend on the
//! worker count and wall clock, so the deterministic Prometheus
//! exposition skips them (they stay in the JSON snapshot).

#![warn(missing_docs)]

mod pool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The global worker-count override; 0 means "use the hardware default".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Worker count for one parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    jobs: usize,
}

impl Parallelism {
    /// Exactly `jobs` workers (clamped to at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// One worker: the serial special case of the parallel code path.
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The hardware default, ignoring any [`set_jobs`] override.
    #[must_use]
    pub fn available() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// The session's effective parallelism: the [`set_jobs`] override if
    /// one is active, the hardware default otherwise.
    #[must_use]
    pub fn current() -> Self {
        match JOBS.load(Ordering::Relaxed) {
            0 => Self::available(),
            jobs => Self::new(jobs),
        }
    }

    /// The worker count.
    #[must_use]
    pub fn get(self) -> usize {
        self.jobs
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::current()
    }
}

/// Set the global worker count (the CLI's `--jobs N`). `0` restores the
/// hardware default. Results are unaffected by construction — only
/// wall-clock time changes.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// The effective global worker count.
#[must_use]
pub fn jobs() -> usize {
    Parallelism::current().get()
}

/// SplitMix64-derive an independent sub-seed for replication `index` of
/// a run seeded `base`. Used so parallel replications draw from
/// independent, index-keyed streams: the mapping is fixed by `(base,
/// index)` alone, making replicated runs byte-identical for any worker
/// count. (Same finalizer as the vendored `StdRng`'s seed expander.)
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `(0..len).map(f)` evaluated across [`Parallelism::current`] workers,
/// results joined in index order.
pub fn par_map_indexed<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_indexed_with(Parallelism::current(), len, f)
}

/// [`par_map_indexed`] with an explicit worker count.
pub fn par_map_indexed_with<U, F>(par: Parallelism, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let slots: Vec<Mutex<Option<U>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let value = f(i);
        *slots[i].lock().expect("result slot") = Some(value);
    };
    pool::run_group(par.get(), len, &task);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every index executed exactly once")
        })
        .collect()
}

/// `items.into_iter().map(f)` evaluated across [`Parallelism::current`]
/// workers, results joined in input order. The owned-item variant of
/// [`par_map`], for stepping stateful values (e.g. a fleet of simulator
/// nodes) in parallel: each task takes its item by value, so tasks stay
/// pure functions of their own item with no shared mutable state.
pub fn par_map_owned<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_owned_with(Parallelism::current(), items, f)
}

/// [`par_map_owned`] with an explicit worker count.
pub fn par_map_owned_with<T, U, F>(par: Parallelism, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    par_map_indexed_with(par, slots.len(), |i| {
        let item = slots[i]
            .lock()
            .expect("item slot")
            .take()
            .expect("every index consumed exactly once");
        f(item)
    })
}

/// `items.iter().map(f)` evaluated across [`Parallelism::current`]
/// workers, results joined in input order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(Parallelism::current(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_with<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_with(par, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn maps_in_input_order_for_any_worker_count() {
        for jobs in [1usize, 2, 3, 8, 16] {
            let out = par_map_indexed_with(Parallelism::new(jobs), 1000, |i| i * i);
            assert_eq!(out.len(), 1000);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "jobs = {jobs}");
            }
        }
    }

    #[test]
    fn par_map_preserves_slice_order() {
        let items: Vec<u64> = (0..257).rev().collect();
        let doubled = par_map_with(Parallelism::new(4), &items, |&x| x * 2);
        assert_eq!(doubled.len(), items.len());
        for (x, y) in items.iter().zip(&doubled) {
            assert_eq!(*y, *x * 2);
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..512).map(|_| AtomicU64::new(0)).collect();
        let _ = par_map_indexed_with(Parallelism::new(8), hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn par_map_owned_moves_items_and_preserves_order() {
        // Stateful items stepped by value: each result must come from its
        // own input, in input order, for any worker count.
        for jobs in [1usize, 2, 8] {
            let items: Vec<(usize, Vec<u64>)> =
                (0..97).map(|i| (i, vec![i as u64; i % 5])).collect();
            let out = par_map_owned_with(Parallelism::new(jobs), items, |(i, v)| {
                (i, v.iter().sum::<u64>())
            });
            assert_eq!(out.len(), 97);
            for (k, (i, sum)) in out.iter().enumerate() {
                assert_eq!(*i, k, "jobs = {jobs}");
                assert_eq!(*sum, (k as u64) * ((k % 5) as u64), "jobs = {jobs}");
            }
        }
        let empty: Vec<u8> = par_map_owned(Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = par_map_indexed_with(Parallelism::new(4), 0, |_| unreachable!());
        assert!(empty.is_empty());
        let one = par_map_indexed_with(Parallelism::new(4), 1, |i| i + 41);
        assert_eq!(one, vec![41]);
        // More workers than items degrades gracefully.
        let few = par_map_indexed_with(Parallelism::new(16), 3, |i| i);
        assert_eq!(few, vec![0, 1, 2]);
    }

    #[test]
    fn nested_parallel_regions_complete() {
        // A task that itself fans out must not deadlock the pool: the
        // inner caller participates in its own group, so progress never
        // depends on free pool threads.
        let out = par_map_indexed_with(Parallelism::new(4), 8, |i| {
            par_map_indexed_with(Parallelism::new(4), 8, move |j| i * 8 + j)
                .iter()
                .sum::<usize>()
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (0..8).map(|j| i * 8 + j).sum::<usize>());
        }
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let reference = par_map_indexed_with(Parallelism::serial(), 300, |i| {
            // A float pipeline sensitive to evaluation order if the
            // combinator got it wrong.
            (0..50).fold(i as f64, |acc, k| acc.mul_add(1.000_1, f64::from(k)))
        });
        for jobs in [2usize, 4, 8] {
            let other = par_map_indexed_with(Parallelism::new(jobs), 300, |i| {
                (0..50).fold(i as f64, |acc, k| acc.mul_add(1.000_1, f64::from(k)))
            });
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                other.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        // Pinned values: the seeding scheme is part of the determinism
        // contract — changing it silently would change every replicated
        // experiment.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
        let mut seen: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 64, "derived seeds must not collide");
    }

    #[test]
    fn parallelism_config_defaults_and_overrides() {
        assert_eq!(Parallelism::new(0).get(), 1);
        assert_eq!(Parallelism::serial().get(), 1);
        assert!(Parallelism::available().get() >= 1);
        // `set_jobs` is process-global; restore the default afterwards
        // so concurrently running tests see the hardware value again.
        set_jobs(3);
        assert_eq!(Parallelism::current().get(), 3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert_eq!(Parallelism::current().get(), Parallelism::available().get());
    }
}
