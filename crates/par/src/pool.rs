//! The work-stealing execution core.
//!
//! A process-global set of lazily spawned worker threads executes *task
//! groups*. A group covers the index range `0..len`, pre-partitioned
//! into one contiguous slice per participating worker; a worker that
//! drains its slice steals the upper half of the fullest remaining
//! slice (classic range splitting, one CAS per transfer). The calling
//! thread is always worker 0 and participates fully, so a group with a
//! single worker runs the identical claim/steal loop inline — serial
//! execution is the one-worker special case of the same code path, not
//! a separate branch.
//!
//! Helpers borrow the caller's closure through a lifetime-erased raw
//! pointer; the group's close/wait protocol guarantees the borrow
//! outlives every helper's use of it (helpers register before touching
//! the task and the caller blocks until all registered helpers have
//! left, even on unwind).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool threads: enough to saturate any host this
/// workspace targets without letting a pathological `jobs` request spawn
/// unbounded threads.
const MAX_POOL_THREADS: usize = 64;

fn pack(pos: u32, end: u32) -> u64 {
    (u64::from(pos) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Lifetime-erased pointer to the caller's per-index task. Validity is
/// enforced by the [`Group`] close/wait protocol, not the type system.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are fine) and the group
// protocol guarantees it outlives every dereference.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct GroupSync {
    /// Set by the caller once its own loop is done; late-starting
    /// helpers must not touch the task afterwards.
    closed: bool,
    /// Helpers currently inside the claim/steal loop.
    active: usize,
}

/// One parallel map invocation: per-worker index ranges plus the
/// join/termination state.
pub(crate) struct Group {
    task: TaskPtr,
    ranges: Box<[AtomicU64]>,
    sync: Mutex<GroupSync>,
    done: Condvar,
    steals: AtomicU64,
}

impl Group {
    fn new(workers: usize, len: usize, task: &(dyn Fn(usize) + Sync)) -> Self {
        assert!(len < u32::MAX as usize, "group too large");
        let ranges = (0..workers)
            .map(|w| {
                let lo = (w * len / workers) as u32;
                let hi = ((w + 1) * len / workers) as u32;
                AtomicU64::new(pack(lo, hi))
            })
            .collect();
        // SAFETY: lifetime erasure only — the close/wait protocol keeps
        // every dereference inside the caller's borrow (see module docs).
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        Self {
            task: TaskPtr(task as *const _),
            ranges,
            sync: Mutex::new(GroupSync {
                closed: false,
                active: 0,
            }),
            done: Condvar::new(),
            steals: AtomicU64::new(0),
        }
    }

    /// Claim the next index of worker `me`'s own range, if any.
    fn claim(&self, me: usize) -> Option<usize> {
        loop {
            let cur = self.ranges[me].load(Ordering::Acquire);
            let (pos, end) = unpack(cur);
            if pos >= end {
                return None;
            }
            if self.ranges[me]
                .compare_exchange_weak(cur, pack(pos + 1, end), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(pos as usize);
            }
        }
    }

    /// Steal the upper half of the fullest other range into `me`'s own
    /// (for a single remaining index: take it whole). Returns `false`
    /// when every other range is empty — the group is out of unclaimed
    /// work and the worker can leave.
    fn steal(&self, me: usize) -> bool {
        loop {
            let mut best: Option<(usize, u64, u32)> = None;
            for (v, range) in self.ranges.iter().enumerate() {
                if v == me {
                    continue;
                }
                let cur = range.load(Ordering::Acquire);
                let (pos, end) = unpack(cur);
                let rem = end.saturating_sub(pos);
                if rem >= 1 && best.map_or(true, |(_, _, r)| rem > r) {
                    best = Some((v, cur, rem));
                }
            }
            let Some((victim, cur, rem)) = best else {
                return false;
            };
            let (pos, end) = unpack(cur);
            let mid = pos + rem / 2;
            if self.ranges[victim]
                .compare_exchange(cur, pack(pos, mid), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.ranges[me].store(pack(mid, end), Ordering::Release);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            // Lost the race; rescan.
        }
    }

    /// The claim/steal loop every participant runs.
    fn work(&self, me: usize) {
        // SAFETY: callers hold the group open (registered helper or the
        // owning caller itself) for the duration of this call.
        let task = unsafe { &*self.task.0 };
        loop {
            if let Some(i) = self.claim(me) {
                task(i);
                continue;
            }
            if !self.steal(me) {
                break;
            }
        }
    }
}

/// Decrements `active` (and notifies the waiting caller) even if the
/// helper's task unwinds.
struct HelperGuard<'a>(&'a Group);

impl Drop for HelperGuard<'_> {
    fn drop(&mut self) {
        let mut sync = self.0.sync.lock().expect("group lock");
        sync.active -= 1;
        if sync.active == 0 {
            self.0.done.notify_all();
        }
    }
}

/// Closes the group and waits out registered helpers even if the
/// caller's own loop unwinds — helpers must never outlive the borrow.
struct CallerGuard<'a>(&'a Group);

impl Drop for CallerGuard<'_> {
    fn drop(&mut self) {
        let mut sync = self.0.sync.lock().expect("group lock");
        sync.closed = true;
        while sync.active > 0 {
            sync = self.0.done.wait(sync).expect("group lock");
        }
    }
}

struct PoolState {
    queue: VecDeque<Ticket>,
    idle: usize,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_available: Condvar,
}

struct Ticket {
    group: Arc<Group>,
    worker: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            idle: 0,
            spawned: 0,
        }),
        work_available: Condvar::new(),
    })
}

fn worker_main() {
    let pool = pool();
    loop {
        let ticket = {
            let mut state = pool.state.lock().expect("pool lock");
            loop {
                if let Some(t) = state.queue.pop_front() {
                    break t;
                }
                state.idle += 1;
                state = pool.work_available.wait(state).expect("pool lock");
                state.idle -= 1;
            }
        };
        run_ticket(&ticket);
    }
}

fn run_ticket(ticket: &Ticket) {
    {
        let mut sync = ticket.group.sync.lock().expect("group lock");
        if sync.closed {
            // The caller already finished the group; the task borrow may
            // be gone, so this ticket is void.
            return;
        }
        sync.active += 1;
    }
    let _guard = HelperGuard(&ticket.group);
    let start = std::time::Instant::now();
    ticket.group.work(ticket.worker);
    mzd_telemetry::global()
        .execution_histogram("par.worker.busy_seconds")
        .record(start.elapsed().as_secs_f64());
}

/// Run `task(i)` for every `i in 0..len` across `workers` participants
/// (the calling thread plus up to `workers - 1` pool helpers). Returns
/// only once every index has executed and no helper still holds the
/// task borrow. Each index runs exactly once; completion order is
/// scheduling-dependent, which is why callers must route results
/// through per-index slots.
pub(crate) fn run_group(workers: usize, len: usize, task: &(dyn Fn(usize) + Sync)) {
    let workers = workers.clamp(1, len.max(1));
    let group = Arc::new(Group::new(workers, len, task));
    if workers > 1 {
        submit_helpers(&group, workers - 1);
    }
    {
        let _caller = CallerGuard(&group);
        group.work(0);
    }
    // Execution-scoped: group/task/steal tallies depend on how work was
    // split across workers, i.e. on the `--jobs` width.
    let telemetry = mzd_telemetry::global();
    telemetry.execution_counter("par.groups").inc();
    telemetry.execution_counter("par.tasks").add(len as u64);
    let steals = group.steals.load(Ordering::Relaxed);
    if steals > 0 {
        telemetry.execution_counter("par.steals").add(steals);
    }
}

fn submit_helpers(group: &Arc<Group>, helpers: usize) {
    let pool = pool();
    let to_spawn = {
        let mut state = pool.state.lock().expect("pool lock");
        for worker in 1..=helpers {
            state.queue.push_back(Ticket {
                group: Arc::clone(group),
                worker,
            });
        }
        let wanted = state.queue.len().saturating_sub(state.idle);
        let to_spawn = wanted.min(MAX_POOL_THREADS.saturating_sub(state.spawned));
        state.spawned += to_spawn;
        to_spawn
    };
    pool.work_available.notify_all();
    for _ in 0..to_spawn {
        std::thread::Builder::new()
            .name("mzd-par".into())
            .spawn(worker_main)
            .expect("spawn pool worker");
    }
}
