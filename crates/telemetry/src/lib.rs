//! Observability substrate for the mzd workspace.
//!
//! The paper's subject is *quantified* service quality — glitch rates,
//! round-overrun probabilities, admission headroom — so the reproduction
//! must be able to measure itself: how long a Chernoff minimization takes,
//! how the simulated round service time is actually distributed, what the
//! admission controller accepted and rejected. This crate provides the
//! three primitives the rest of the workspace records into:
//!
//! * [`Registry`] — a thread-safe metrics registry of named
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s with
//!   quantile estimation (p50/p95/p99/p999) suitable for service-time and
//!   seek-time tails. [`Registry::snapshot`] renders the whole registry
//!   as JSON (see [`Snapshot`]).
//! * [`Span`] — a timer guard: created against a histogram name, it
//!   records the elapsed wall-clock seconds into that histogram on drop.
//!   The [`span!`] macro is the one-line form against the global
//!   registry.
//! * [`event::Event`] + [`event::EventSink`] — a structured event log
//!   with pluggable sinks ([`event::NullSink`], [`event::StderrSink`],
//!   [`event::JsonlSink`], [`event::MemorySink`]) for per-round records
//!   and admission decisions.
//! * [`prom::render`] — Prometheus text exposition of a whole
//!   [`Registry`], including histogram buckets as cumulative
//!   `_bucket{le="..."}` series (the `--prom-out` surface).
//!
//! # Global vs. scoped
//!
//! Library code records into the process-wide [`global()`] registry and
//! [`event::emit`]s to the process-wide sink so instrumentation needs no
//! plumbing through every constructor. Everything is also available as
//! plain values ([`Registry::new`], any `EventSink` instance) for tests
//! that need isolation.
//!
//! Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap
//! `Arc`s: look them up once (`global().counter("x")`), store the clone,
//! and increment lock-free on the hot path. A counter increment is one
//! relaxed atomic add; a histogram record is an atomic add plus a handful
//! of atomic updates (< 50 ns — see the `telemetry_overhead` bench in
//! `mzd-bench`).
//!
//! # Naming convention
//!
//! Dotted paths, `crate.subsystem.quantity`:
//! `core.chernoff.iterations`, `sim.round.service_time`,
//! `server.admission.rejected`. Durations recorded by [`Span`]s are in
//! seconds.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod prom;
mod registry;
mod span;

pub use event::{emit, events_enabled, set_sink, Event, EventSink};
pub use registry::{
    geometry, global, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot,
    QUANTILE_LABELS,
};
pub use span::{Span, SpanContext};

/// Time a scope into a histogram of the [`global()`] registry.
///
/// ```
/// # fn chernoff_minimize() {}
/// let _span = mzd_telemetry::span!("core.chernoff.minimize");
/// chernoff_minimize();
/// // elapsed seconds recorded into histogram "core.chernoff.minimize"
/// // when `_span` drops
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($crate::global().execution_histogram($name))
    };
}
