//! Minimal JSON support: writing helpers for the registry/event
//! serializers and a small recursive-descent parser used to read
//! snapshots and JSONL event streams back (round-trip tests, tooling).
//!
//! Dependency-free by design; covers exactly the JSON this crate emits
//! (which is standard JSON — the parser accepts any valid document).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is not preserved (sorted by key).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object map, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// A human-readable message naming the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", char::from(byte)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not emitted by this crate;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = rest.chars().next().expect("nonempty by match arm");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Append `text` JSON-escaped (including the surrounding quotes).
pub fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float as valid JSON (`null` for non-finite values).
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Shortest round-trip representation; always a valid JSON number.
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_it_writes() {
        let mut s = String::new();
        write_escaped(&mut s, "a \"quoted\"\nline\\with\tstuff\u{1}");
        let parsed = parse(&s).unwrap();
        assert_eq!(
            parsed.as_str().unwrap(),
            "a \"quoted\"\nline\\with\tstuff\u{1}"
        );

        let mut s = String::new();
        write_f64(&mut s, 0.123456789012345);
        assert_eq!(parse(&s).unwrap().as_f64().unwrap(), 0.123456789012345);

        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(parse(&s).unwrap(), Value::Null);
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"x": true, "y": null}, "s": "hi"}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].as_f64().unwrap(), -0.03);
        assert_eq!(v.get("b").unwrap().get("x").unwrap(), &Value::Bool(true));
        assert_eq!(v.get("b").unwrap().get("y").unwrap(), &Value::Null);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "hi");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
        assert_eq!(parse(" [ ] ").unwrap(), Value::Array(vec![]));
    }
}
