//! Structured event log: typed per-round / per-decision records with a
//! pluggable process-wide sink.
//!
//! An [`Event`] is a named record with typed fields, serialized as one
//! line of JSON (JSONL when written to a file). Sinks are deliberately
//! simple: [`NullSink`] (the default — emission short-circuits on an
//! atomic flag before any formatting happens), [`StderrSink`] for
//! interactive runs, [`JsonlSink`] for machine-readable capture, and
//! [`MemorySink`] for tests.
//!
//! Events carry no wall-clock timestamps: records are keyed by logical
//! time (round ids, stream ids) so replays of a seeded simulation emit
//! byte-identical streams.

use crate::json;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// One field value of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
enum Field {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    U64List(Vec<u64>),
}

/// A structured event: a name plus typed key/value fields, emitted as a
/// single JSON object per line.
///
/// ```
/// let e = mzd_telemetry::Event::new("sim.round")
///     .u64("round", 17)
///     .f64("service_time", 0.812)
///     .bool("late", false)
///     .u64_list("glitched", &[3, 9]);
/// assert!(e.to_json().starts_with(r#"{"event":"sim.round""#));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    name: &'static str,
    fields: Vec<(&'static str, Field)>,
}

impl Event {
    /// Start an event named `name` (dotted-path convention, e.g.
    /// `"sim.round"` or `"server.admission"`).
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            fields: Vec::new(),
        }
    }

    /// The event name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Attach an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, Field::U64(value)));
        self
    }

    /// Attach a signed integer field.
    #[must_use]
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        self.fields.push((key, Field::I64(value)));
        self
    }

    /// Attach a floating-point field (non-finite serializes as `null`).
    #[must_use]
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, Field::F64(value)));
        self
    }

    /// Attach a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        self.fields.push((key, Field::Bool(value)));
        self
    }

    /// Attach a string field.
    #[must_use]
    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.fields.push((key, Field::Str(value.into())));
        self
    }

    /// Attach a list of unsigned integers (e.g. glitched stream ids).
    #[must_use]
    pub fn u64_list(mut self, key: &'static str, values: &[u64]) -> Self {
        self.fields.push((key, Field::U64List(values.to_vec())));
        self
    }

    /// Serialize as a single-line JSON object. The event name is the
    /// `"event"` member; fields follow in insertion order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"event\":");
        json::write_escaped(&mut out, self.name);
        for (key, value) in &self.fields {
            out.push(',');
            json::write_escaped(&mut out, key);
            out.push(':');
            match value {
                Field::U64(v) => out.push_str(&v.to_string()),
                Field::I64(v) => out.push_str(&v.to_string()),
                Field::F64(v) => json::write_f64(&mut out, *v),
                Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                Field::Str(v) => json::write_escaped(&mut out, v),
                Field::U64List(vs) => {
                    out.push('[');
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&v.to_string());
                    }
                    out.push(']');
                }
            }
        }
        out.push('}');
        out
    }
}

/// Destination for emitted [`Event`]s.
///
/// Implementations must be cheap to call concurrently; [`emit`] is
/// invoked from simulation and server hot loops.
pub trait EventSink: Send + Sync {
    /// Record one event.
    fn emit(&self, event: &Event);

    /// Push buffered output to its destination. Default: no-op.
    fn flush(&self) {}

    /// Whether this sink actually consumes events. [`emit`] (the free
    /// function) short-circuits — without formatting the event — when
    /// this is `false`. Default: `true`.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; the default process-wide sink.
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Writes one JSON line per event to standard error.
#[derive(Debug, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn emit(&self, event: &Event) {
        // Ignore write errors (closed stderr): telemetry must never
        // take the workload down.
        let _ = writeln!(std::io::stderr().lock(), "{}", event.to_json());
    }
}

/// Appends one JSON line per event to a file (JSONL).
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Create (truncating) `path` and write events to it.
    ///
    /// # Errors
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            writer: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut writer = self.writer.lock().expect("jsonl sink lock");
        let _ = writeln!(writer, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink lock").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        EventSink::flush(self);
    }
}

/// Collects serialized events in memory; for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All JSON lines emitted so far.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink lock").clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.lines
            .lock()
            .expect("memory sink lock")
            .push(event.to_json());
    }
}

/// Fast-path cache of the current sink's `enabled()`; checked before
/// taking the sink lock or formatting anything.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Arc<dyn EventSink>> {
    static SINK: OnceLock<RwLock<Arc<dyn EventSink>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(Arc::new(NullSink)))
}

/// Install `sink` as the process-wide event destination, returning the
/// previous sink (so callers can flush or restore it).
pub fn set_sink(sink: Arc<dyn EventSink>) -> Arc<dyn EventSink> {
    let enabled = sink.enabled();
    let previous = std::mem::replace(&mut *sink_slot().write().expect("event sink lock"), sink);
    ENABLED.store(enabled, Ordering::Release);
    previous
}

/// Whether the process-wide sink consumes events.
///
/// Instrumented code uses this to skip building events whose field
/// values are themselves costly to compute:
///
/// ```
/// # let glitched_streams: Vec<u64> = vec![];
/// if mzd_telemetry::events_enabled() {
///     mzd_telemetry::emit(
///         mzd_telemetry::Event::new("sim.round").u64_list("glitched", &glitched_streams),
///     );
/// }
/// ```
#[must_use]
pub fn events_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Send `event` to the process-wide sink. Costs one atomic load when no
/// sink is installed.
pub fn emit(event: Event) {
    if !events_enabled() {
        return;
    }
    sink_slot().read().expect("event sink lock").emit(&event);
}

/// Flush the process-wide sink (e.g. before process exit).
pub fn flush() {
    sink_slot().read().expect("event sink lock").flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_all_field_types() {
        let e = Event::new("test.kinds")
            .u64("u", 42)
            .i64("i", -7)
            .f64("f", 0.5)
            .f64("nan", f64::NAN)
            .bool("b", true)
            .str("s", "he said \"hi\"")
            .u64_list("ids", &[1, 2, 3])
            .u64_list("empty", &[]);
        let line = e.to_json();
        let doc = json::parse(&line).expect("valid JSON");
        assert_eq!(doc.get("event").unwrap().as_str(), Some("test.kinds"));
        assert_eq!(doc.get("u").unwrap().as_f64(), Some(42.0));
        assert_eq!(doc.get("i").unwrap().as_f64(), Some(-7.0));
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(0.5));
        assert_eq!(doc.get("nan").unwrap(), &json::Value::Null);
        assert_eq!(doc.get("b").unwrap(), &json::Value::Bool(true));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("he said \"hi\""));
        let ids: Vec<f64> = doc
            .get("ids")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(ids, vec![1.0, 2.0, 3.0]);
        assert_eq!(doc.get("empty").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.emit(&Event::new("a").u64("n", 1));
        sink.emit(&Event::new("b").u64("n", 2));
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"a\""));
        assert!(lines[1].contains("\"b\""));
    }

    #[test]
    fn jsonl_sink_round_trips_through_a_file() {
        let path =
            std::env::temp_dir().join(format!("mzd-telemetry-test-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).expect("create jsonl");
            for round in 0..5u64 {
                sink.emit(
                    &Event::new("sim.round")
                        .u64("round", round)
                        .f64("service_time", 0.1 * round as f64),
                );
            }
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let doc = json::parse(line).expect("each line is JSON");
            assert_eq!(doc.get("event").unwrap().as_str(), Some("sim.round"));
            assert_eq!(doc.get("round").unwrap().as_f64(), Some(i as f64));
        }
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        assert!(MemorySink::new().enabled());
    }
}
