//! Prometheus text exposition (version 0.0.4) for a [`Registry`].
//!
//! [`render`] emits the whole registry — counters, gauges, and
//! histograms with cumulative `_bucket{le="..."}` series — in the
//! plain-text format every Prometheus-compatible scraper and textfile
//! collector understands. Metric names keep the workspace's dotted
//! convention internally and are sanitized to `mzd_`-prefixed
//! underscore form on the way out (`sim.round.service_time` →
//! `mzd_sim_round_service_time`).
//!
//! The output is a pure function of the registry's *logical-time*
//! state: names are sorted, no timestamps are emitted, float
//! formatting uses Rust's shortest round-trip representation, and
//! series marked execution-scoped ([`Registry::execution_histogram`] /
//! [`Registry::execution_counter`] — span timers, scheduler effort,
//! solver iteration tallies) are excluded — so seeded equal runs
//! expose byte-identical text at any `--jobs` width (the property the
//! CLI's `--prom-out` snapshots rely on). Execution-scoped series
//! remain visible in the JSON snapshot.

use crate::registry::Registry;
use std::fmt::Write as _;

/// Sanitize a dotted metric name into the Prometheus exposition
/// alphabet (`[a-zA-Z0-9_]`), with the workspace's `mzd_` prefix.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("mzd_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label *value* for the exposition format: backslash, double
/// quote and newline are the three characters the format reserves
/// (`\\`, `\"`, `\n`); everything else passes through verbatim.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a label set as `{k="v",...}` with values escaped, or an
/// empty string for no labels. Label *names* are sanitized to the
/// exposition alphabet; pairs are emitted in the order given (callers
/// keep them sorted for byte-stable output).
#[must_use]
pub fn render_label_set(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        for c in k.chars() {
            out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
        }
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Format a sample value: finite floats use the shortest round-trip
/// form, non-finite values use the exposition spellings.
fn write_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// A sample value as the exposition spells it: shortest round-trip for
/// finite floats, `NaN`/`+Inf`/`-Inf` otherwise. The one formatter
/// every exposition writer in the workspace shares, so labeled series
/// rendered outside this module stay byte-compatible with [`render`].
#[must_use]
pub fn format_value(v: f64) -> String {
    let mut s = String::new();
    write_value(&mut s, v);
    s
}

/// Render `registry` in Prometheus text exposition format.
///
/// Histogram `_bucket` series are cumulative; bounds whose bucket is
/// empty are elided (the cumulative value at any retained bound is
/// exact), and the mandatory `le="+Inf"` bucket always closes the
/// series at the total count.
#[must_use]
pub fn render(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::with_capacity(4096);
    for (name, value) in &snapshot.counters {
        if registry.is_execution_scoped(name) {
            // Scheduler-effort counts vary with the `--jobs` width;
            // emitting them would break the exposition's byte-identity
            // across job counts.
            continue;
        }
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = write!(out, "{n} ");
        write_value(&mut out, *value);
        out.push('\n');
    }
    for (name, histogram) in registry.histogram_entries() {
        if registry.is_execution_scoped(&name) {
            // Span timers carry real elapsed time and solver iteration
            // tallies vary with parallel range splitting; emitting them
            // would break the exposition's byte-identity across reruns
            // and job counts.
            continue;
        }
        let n = sanitize_name(&name);
        let count = histogram.count();
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut previous = 0u64;
        for (bound, cumulative) in histogram.cumulative_buckets() {
            if bound.is_finite() {
                if cumulative == previous {
                    continue; // empty bucket: cumulative value unchanged
                }
                previous = cumulative;
                let _ = write!(out, "{n}_bucket{{le=\"");
                write_value(&mut out, bound);
                let _ = writeln!(out, "\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {count}");
        let _ = write!(out, "{n}_sum ");
        write_value(&mut out, histogram.sum());
        out.push('\n');
        let _ = writeln!(out, "{n}_count {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal exposition-format validator: every non-comment line is
    /// `name[{labels}] value`, names match the exposition alphabet.
    fn validate(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad name: {name}"
            );
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "bad value: {value}"
            );
        }
    }

    #[test]
    fn renders_all_metric_kinds() {
        let r = Registry::new();
        r.counter("sim.rounds").add(7);
        r.gauge("server.buffer.occupancy_bytes").set(1.5e6);
        let h = r.histogram("sim.round.service_time");
        for i in 1..=100 {
            h.record(f64::from(i) * 0.01);
        }
        let text = render(&r);
        validate(&text);
        assert!(text.contains("# TYPE mzd_sim_rounds counter"));
        assert!(text.contains("mzd_sim_rounds 7"));
        assert!(text.contains("# TYPE mzd_server_buffer_occupancy_bytes gauge"));
        assert!(text.contains("mzd_server_buffer_occupancy_bytes 1500000"));
        assert!(text.contains("# TYPE mzd_sim_round_service_time histogram"));
        assert!(text.contains("mzd_sim_round_service_time_bucket{le=\"+Inf\"} 100"));
        assert!(text.contains("mzd_sim_round_service_time_count 100"));
        assert!(text.contains("mzd_sim_round_service_time_sum 50.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_at_count() {
        let r = Registry::new();
        let h = r.histogram("t");
        for v in [1e-4, 1e-4, 1e-2, 1.0, 1e9] {
            h.record(v);
        }
        let text = render(&r);
        validate(&text);
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("mzd_t_bucket{le=\"") {
                bucket_lines += 1;
                let count: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(count >= last, "buckets must be cumulative: {text}");
                last = count;
            }
        }
        // 4 distinct finite buckets (the 1e9 observation only appears in
        // +Inf) — elision keeps empty buckets out.
        assert_eq!(bucket_lines, 4, "{text}");
        assert_eq!(last, 5);
        assert!(text.contains("mzd_t_count 5"));
    }

    #[test]
    fn empty_histogram_still_exposes_inf_bucket() {
        let r = Registry::new();
        let _ = r.histogram("empty.series");
        let text = render(&r);
        validate(&text);
        assert!(text.contains("mzd_empty_series_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("mzd_empty_series_sum 0"));
        assert!(text.contains("mzd_empty_series_count 0"));
    }

    #[test]
    fn sanitizes_names_deterministically() {
        assert_eq!(sanitize_name("a.b-c d"), "mzd_a_b_c_d");
        let r = Registry::new();
        r.counter("x.y").inc();
        assert_eq!(render(&r), render(&r));
    }

    #[test]
    fn execution_scoped_series_are_excluded() {
        let r = Registry::new();
        r.histogram("sim.round.service_time").record(0.5);
        r.counter("sim.rounds").inc();
        r.execution_histogram("core.chernoff.minimize")
            .record(0.000_8);
        r.execution_counter("par.steals").add(17);
        assert!(r.is_execution_scoped("core.chernoff.minimize"));
        assert!(r.is_execution_scoped("par.steals"));
        assert!(!r.is_execution_scoped("sim.round.service_time"));
        let text = render(&r);
        validate(&text);
        assert!(text.contains("mzd_sim_round_service_time_bucket"));
        assert!(text.contains("mzd_sim_rounds 1"));
        // Wall-clock time and jobs-dependent effort counts have no
        // place in byte-identical output; both series stay in the JSON
        // snapshot only.
        assert!(!text.contains("chernoff_minimize"), "{text}");
        assert!(!text.contains("par_steals"), "{text}");
        let snapshot = r.snapshot();
        assert!(snapshot.histograms.contains_key("core.chernoff.minimize"));
        assert_eq!(snapshot.counters.get("par.steals"), Some(&17));
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // All three at once, in the order backslash-first escaping must
        // preserve: `\` then `"` then newline.
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
        // Idempotence does NOT hold (escaping escapes the escapes) —
        // exactly one pass is applied on the way out.
        assert_eq!(escape_label_value("a\\nb"), "a\\\\nb");
    }

    #[test]
    fn renders_label_sets() {
        assert_eq!(render_label_set(&[]), "");
        assert_eq!(render_label_set(&[("node", "3")]), "{node=\"3\"}");
        assert_eq!(
            render_label_set(&[("node", "0"), ("disk", "2")]),
            "{node=\"0\",disk=\"2\"}"
        );
        // Values with reserved characters survive a round through the
        // exposition grammar; names are forced into the alphabet.
        assert_eq!(
            render_label_set(&[("zone.id", "a\"b\\c\nd")]),
            "{zone_id=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn format_value_spells_specials() {
        assert_eq!(format_value(1.5), "1.5");
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
    }
}
