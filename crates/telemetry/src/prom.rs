//! Prometheus text exposition (version 0.0.4) for a [`Registry`].
//!
//! [`render`] emits the whole registry — counters, gauges, and
//! histograms with cumulative `_bucket{le="..."}` series — in the
//! plain-text format every Prometheus-compatible scraper and textfile
//! collector understands. Metric names keep the workspace's dotted
//! convention internally and are sanitized to `mzd_`-prefixed
//! underscore form on the way out (`sim.round.service_time` →
//! `mzd_sim_round_service_time`).
//!
//! The output is a pure function of the registry state: names are
//! sorted, no timestamps are emitted, and float formatting uses Rust's
//! shortest round-trip representation — so equal registries expose
//! byte-identical text (the property the CLI's `--prom-out` snapshots
//! rely on).

use crate::registry::Registry;
use std::fmt::Write as _;

/// Sanitize a dotted metric name into the Prometheus exposition
/// alphabet (`[a-zA-Z0-9_]`), with the workspace's `mzd_` prefix.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("mzd_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Format a sample value: finite floats use the shortest round-trip
/// form, non-finite values use the exposition spellings.
fn write_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Render `registry` in Prometheus text exposition format.
///
/// Histogram `_bucket` series are cumulative; bounds whose bucket is
/// empty are elided (the cumulative value at any retained bound is
/// exact), and the mandatory `le="+Inf"` bucket always closes the
/// series at the total count.
#[must_use]
pub fn render(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::with_capacity(4096);
    for (name, value) in &snapshot.counters {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = write!(out, "{n} ");
        write_value(&mut out, *value);
        out.push('\n');
    }
    for (name, histogram) in registry.histogram_entries() {
        let n = sanitize_name(&name);
        let count = histogram.count();
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut previous = 0u64;
        for (bound, cumulative) in histogram.cumulative_buckets() {
            if bound.is_finite() {
                if cumulative == previous {
                    continue; // empty bucket: cumulative value unchanged
                }
                previous = cumulative;
                let _ = write!(out, "{n}_bucket{{le=\"");
                write_value(&mut out, bound);
                let _ = writeln!(out, "\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {count}");
        let _ = write!(out, "{n}_sum ");
        write_value(&mut out, histogram.sum());
        out.push('\n');
        let _ = writeln!(out, "{n}_count {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal exposition-format validator: every non-comment line is
    /// `name[{labels}] value`, names match the exposition alphabet.
    fn validate(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad name: {name}"
            );
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "bad value: {value}"
            );
        }
    }

    #[test]
    fn renders_all_metric_kinds() {
        let r = Registry::new();
        r.counter("sim.rounds").add(7);
        r.gauge("server.buffer.occupancy_bytes").set(1.5e6);
        let h = r.histogram("sim.round.service_time");
        for i in 1..=100 {
            h.record(f64::from(i) * 0.01);
        }
        let text = render(&r);
        validate(&text);
        assert!(text.contains("# TYPE mzd_sim_rounds counter"));
        assert!(text.contains("mzd_sim_rounds 7"));
        assert!(text.contains("# TYPE mzd_server_buffer_occupancy_bytes gauge"));
        assert!(text.contains("mzd_server_buffer_occupancy_bytes 1500000"));
        assert!(text.contains("# TYPE mzd_sim_round_service_time histogram"));
        assert!(text.contains("mzd_sim_round_service_time_bucket{le=\"+Inf\"} 100"));
        assert!(text.contains("mzd_sim_round_service_time_count 100"));
        assert!(text.contains("mzd_sim_round_service_time_sum 50.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_at_count() {
        let r = Registry::new();
        let h = r.histogram("t");
        for v in [1e-4, 1e-4, 1e-2, 1.0, 1e9] {
            h.record(v);
        }
        let text = render(&r);
        validate(&text);
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("mzd_t_bucket{le=\"") {
                bucket_lines += 1;
                let count: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(count >= last, "buckets must be cumulative: {text}");
                last = count;
            }
        }
        // 4 distinct finite buckets (the 1e9 observation only appears in
        // +Inf) — elision keeps empty buckets out.
        assert_eq!(bucket_lines, 4, "{text}");
        assert_eq!(last, 5);
        assert!(text.contains("mzd_t_count 5"));
    }

    #[test]
    fn empty_histogram_still_exposes_inf_bucket() {
        let r = Registry::new();
        let _ = r.histogram("empty.series");
        let text = render(&r);
        validate(&text);
        assert!(text.contains("mzd_empty_series_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("mzd_empty_series_sum 0"));
        assert!(text.contains("mzd_empty_series_count 0"));
    }

    #[test]
    fn sanitizes_names_deterministically() {
        assert_eq!(sanitize_name("a.b-c d"), "mzd_a_b_c_d");
        let r = Registry::new();
        r.counter("x.y").inc();
        assert_eq!(render(&r), render(&r));
    }
}
