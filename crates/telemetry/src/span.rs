//! Span timing: RAII guards that record elapsed wall-clock seconds into
//! a histogram.

use crate::registry::Histogram;
use std::time::Instant;

/// Causal identity of a span within a trace: the trace it belongs to,
/// its own span id, and its parent span (`None` for a root).
///
/// This is the linkage type the SLO layer's tracer uses to thread one
/// stream's journey (admission → queueing → cache lookup → disk sweep →
/// delivery) through parent/child spans; it carries no timing itself —
/// pair it with [`Span`] for wall-clock histograms or with logical
/// (round-derived) timestamps for deterministic trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Trace id shared by every span of one causal chain (by convention
    /// the stream id).
    pub trace: u64,
    /// This span's id, unique within the trace's tracer.
    pub span: u64,
    /// The parent span's id; `None` for a root span.
    pub parent: Option<u64>,
}

impl SpanContext {
    /// A root context: no parent.
    #[must_use]
    pub fn root(trace: u64, span: u64) -> Self {
        Self {
            trace,
            span,
            parent: None,
        }
    }

    /// A child context: same trace, this context as parent.
    #[must_use]
    pub fn child(&self, span: u64) -> Self {
        Self {
            trace: self.trace,
            span,
            parent: Some(self.span),
        }
    }
}

/// A running timer that records its elapsed seconds into a histogram
/// when dropped (or explicitly finished).
///
/// Obtain one from the [`crate::span!`] macro (global registry) or
/// [`Span::enter`] (any histogram handle):
///
/// ```
/// use mzd_telemetry::{Registry, Span};
/// let registry = Registry::new();
/// {
///     let _span = Span::enter(registry.histogram("solver.iteration"));
///     // ... timed work ...
/// } // recorded here
/// assert_eq!(registry.histogram("solver.iteration").count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    start: Instant,
    finished: bool,
}

impl Span {
    /// Start timing against `histogram`.
    #[must_use]
    pub fn enter(histogram: Histogram) -> Self {
        Self {
            histogram,
            start: Instant::now(),
            finished: false,
        }
    }

    /// Stop now, record, and return the elapsed seconds.
    pub fn finish(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.histogram.record(elapsed);
        self.finished = true;
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.histogram.record(self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn drop_records_once() {
        let r = Registry::new();
        {
            let _span = Span::enter(r.histogram("t"));
        }
        assert_eq!(r.histogram("t").count(), 1);
    }

    #[test]
    fn finish_records_once_and_reports_elapsed() {
        let r = Registry::new();
        let span = Span::enter(r.histogram("t"));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let elapsed = span.finish();
        assert!(elapsed >= 0.002, "elapsed {elapsed}");
        assert_eq!(r.histogram("t").count(), 1);
        let s = r.histogram("t").snapshot();
        assert!(s.min >= 0.002);
    }

    #[test]
    fn span_context_child_links_to_parent() {
        let root = SpanContext::root(9, 1);
        assert_eq!(root.parent, None);
        let child = root.child(2);
        assert_eq!(child.trace, 9);
        assert_eq!(child.parent, Some(1));
        let grandchild = child.child(3);
        assert_eq!(grandchild.parent, Some(2));
        assert_eq!(grandchild.trace, 9);
    }

    #[test]
    fn global_span_macro_compiles_and_records() {
        let before = crate::global().histogram("test.span_macro").count();
        {
            let _span = crate::span!("test.span_macro");
        }
        assert_eq!(
            crate::global().histogram("test.span_macro").count(),
            before + 1
        );
    }
}
