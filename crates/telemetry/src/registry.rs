//! The metrics registry: named counters, gauges and quantile histograms.
//!
//! Handles are `Arc`-backed and lock-free on the hot path; the registry
//! itself is only locked when a handle is first looked up or when a
//! snapshot is taken.

use crate::json;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// The quantiles every histogram snapshot reports, with their labels.
pub const QUANTILE_LABELS: [(&str, f64); 4] =
    [("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999)];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (queue depth, buffer bytes).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (atomic read-modify-write).
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The fixed log-bucket geometry shared by [`Histogram`] and by the
/// mergeable quantile sketches in `mzd-obs`.
///
/// Nine log-spaced buckets per factor of ten across thirteen decades
/// starting at `1e-9`, plus one underflow and one overflow slot. The
/// layout is a compile-time constant — never adapted to the data — so
/// two histograms or sketches over the same unit merge *exactly* by
/// bucket-wise addition, in any order, which is what makes fleet-level
/// quantiles byte-stable at any `--jobs` width.
pub mod geometry {
    /// Log-spaced buckets per factor of 10.
    pub const BUCKETS_PER_DECADE: usize = 9;
    /// Decades spanned by the regular buckets.
    pub const DECADES: usize = 13;
    /// Number of regular (finite-bound) buckets.
    pub const BUCKET_COUNT: usize = BUCKETS_PER_DECADE * DECADES;
    /// Total storage slots: `[underflow, BUCKET_COUNT regular, overflow]`.
    pub const SLOT_COUNT: usize = BUCKET_COUNT + 2;
    /// Lower edge of the first regular bucket (1 ns when the unit is
    /// seconds).
    pub const LOW: f64 = 1e-9;

    /// Storage slot (0 = underflow, `BUCKET_COUNT + 1` = overflow) for a
    /// recorded value. Zero, negatives and NaN all land in the underflow
    /// slot (callers that want to drop NaN must do so before indexing).
    #[must_use]
    pub fn bucket_index(value: f64) -> usize {
        if !(value > LOW) {
            return 0;
        }
        let position = (value / LOW).log10() * BUCKETS_PER_DECADE as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = position as usize; // truncation; position > 0 here
        if idx >= BUCKET_COUNT {
            BUCKET_COUNT + 1
        } else {
            idx + 1
        }
    }

    /// Representative value (geometric bucket midpoint) for a slot; the
    /// underflow slot reports `LOW`.
    #[must_use]
    pub fn bucket_value(index: usize) -> f64 {
        if index == 0 {
            return LOW;
        }
        #[allow(clippy::cast_precision_loss)]
        let exp = (index - 1) as f64 + 0.5;
        LOW * 10f64.powf(exp / BUCKETS_PER_DECADE as f64)
    }

    /// Upper edge of the slot at `index`: `LOW` for the underflow slot,
    /// `+∞` for the overflow slot.
    #[must_use]
    pub fn bucket_bound(index: usize) -> f64 {
        if index == 0 {
            return LOW;
        }
        if index > BUCKET_COUNT {
            return f64::INFINITY;
        }
        #[allow(clippy::cast_precision_loss)]
        let exp = index as f64;
        LOW * 10f64.powf(exp / BUCKETS_PER_DECADE as f64)
    }
}

use geometry::{bucket_index, bucket_value, BUCKET_COUNT};

/// A fixed-bucket log-scale histogram with atomic recording and
/// quantile estimation.
///
/// Values spanning `1e-9` to `1e4` land in one of 117 log-spaced
/// buckets (relative width ≈ 29%, so quantile estimates carry at most
/// ~13% relative error — ample for service-time tails). Values at or
/// below `1e-9` (including zero and negatives) are clamped into an
/// underflow bucket, values above `1e4` into an overflow bucket; exact
/// `min`/`max`/`sum` are tracked separately, and NaNs are dropped.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    /// `[underflow, 117 regular buckets..., overflow]`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits, CAS-accumulated.
    sum: AtomicU64,
    /// f64 bits, CAS-minimized.
    min: AtomicU64,
    /// f64 bits, CAS-maximized.
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: (0..BUCKET_COUNT + 2).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Histogram {
    /// Record one observation. NaN is dropped.
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        // CAS-accumulate the f64 bit patterns.
        let mut bits = inner.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(bits) + value).to_bits();
            match inner
                .sum
                .compare_exchange_weak(bits, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => bits = actual,
            }
        }
        let mut bits = inner.min.load(Ordering::Relaxed);
        while value < f64::from_bits(bits) {
            match inner.min.compare_exchange_weak(
                bits,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => bits = actual,
            }
        }
        let mut bits = inner.max.load(Ordering::Relaxed);
        while value > f64::from_bits(bits) {
            match inner.max.compare_exchange_weak(
                bits,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => bits = actual,
            }
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0 ≤ q ≤ 1`) from the buckets.
    ///
    /// Accuracy is limited by the bucket resolution (~13% relative);
    /// exact extremes come from [`Histogram::snapshot`]'s `min`/`max`.
    /// Returns NaN for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let inner = &*self.0;
        let total = inner.count.load(Ordering::Relaxed);
        if total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based ceil(q·total).
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in inner.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                // Clamp the estimate into the true observed range.
                let min = f64::from_bits(inner.min.load(Ordering::Relaxed));
                let max = f64::from_bits(inner.max.load(Ordering::Relaxed));
                return bucket_value(i).clamp(min, max);
            }
        }
        f64::from_bits(inner.max.load(Ordering::Relaxed))
    }

    /// Cumulative bucket counts as `(upper_bound, count_le)` pairs, in
    /// ascending bound order, ending with `(+∞, total count)` — the
    /// exposition shape Prometheus histograms use. The underflow bucket
    /// (values ≤ 1 ns) reports under the first regular bound.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let inner = &*self.0;
        let mut out = Vec::with_capacity(BUCKET_COUNT + 1);
        let mut cumulative = 0u64;
        for (i, bucket) in inner.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if i == 0 {
                // Underflow merges into the first regular bound below.
                continue;
            }
            out.push((geometry::bucket_bound(i), cumulative));
        }
        out
    }

    /// An immutable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum();
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 {
                f64::NAN
            } else {
                sum / count as f64
            },
            min: f64::from_bits(self.0.min.load(Ordering::Relaxed)),
            max: f64::from_bits(self.0.max.load(Ordering::Relaxed)),
            quantiles: QUANTILE_LABELS.map(|(_, q)| self.quantile(q)),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean (NaN when empty).
    pub mean: f64,
    /// Exact minimum (+∞ when empty).
    pub min: f64,
    /// Exact maximum (−∞ when empty).
    pub max: f64,
    /// Estimates for [`QUANTILE_LABELS`], in order.
    pub quantiles: [f64; 4],
}

/// A named collection of metrics.
///
/// Cloning a returned handle and storing it is the intended hot-path
/// pattern; `counter`/`gauge`/`histogram` take a read–write lock only on
/// first registration.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Counter>>,
    gauges: RwLock<HashMap<String, Gauge>>,
    histograms: RwLock<HashMap<String, Histogram>>,
    /// Names of metrics that describe the *execution* rather than the
    /// modeled system: wall-clock span timers, scheduler effort
    /// (task/steal counts), solver iteration tallies. Their values vary
    /// with real elapsed time or with `--jobs`, so exporters that
    /// promise byte-identity (the Prometheus exposition) skip them; the
    /// JSON snapshot keeps them as diagnostics.
    execution: RwLock<std::collections::HashSet<String>>,
}

fn get_or_insert<T: Clone + Default>(map: &RwLock<HashMap<String, T>>, name: &str) -> T {
    if let Some(found) = map.read().expect("metrics lock").get(name) {
        return found.clone();
    }
    map.write()
        .expect("metrics lock")
        .entry(name.to_string())
        .or_default()
        .clone()
}

impl Registry {
    /// An empty registry (tests, scoped measurement).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.histograms, name)
    }

    fn mark_execution(&self, name: &str) {
        {
            let marked = self.execution.read().expect("metrics lock");
            if marked.contains(name) {
                return;
            }
        }
        self.execution
            .write()
            .expect("metrics lock")
            .insert(name.to_string());
    }

    /// The histogram named `name`, additionally marked execution-scoped
    /// ([`Registry::is_execution_scoped`]). Span timers use this: their
    /// values are real elapsed time, so they are excluded from the
    /// deterministic Prometheus exposition and live only in the JSON
    /// snapshot (like the phase profiler, wall-clock data is outside
    /// the byte-identity contract). Solver iteration histograms use it
    /// too — the work a parallel scan performs depends on how the range
    /// was split.
    #[must_use]
    pub fn execution_histogram(&self, name: &str) -> Histogram {
        self.mark_execution(name);
        get_or_insert(&self.histograms, name)
    }

    /// The counter named `name`, additionally marked execution-scoped
    /// ([`Registry::is_execution_scoped`]). Scheduler-effort counters
    /// (tasks dispatched, ranges stolen) use this: their values depend
    /// on the `--jobs` width, not on the modeled system.
    #[must_use]
    pub fn execution_counter(&self, name: &str) -> Counter {
        self.mark_execution(name);
        get_or_insert(&self.counters, name)
    }

    /// Whether `name` was registered through
    /// [`Registry::execution_histogram`] or
    /// [`Registry::execution_counter`].
    #[must_use]
    pub fn is_execution_scoped(&self, name: &str) -> bool {
        self.execution.read().expect("metrics lock").contains(name)
    }

    /// Handles to every registered histogram, sorted by name — for
    /// exporters (e.g. Prometheus exposition) that need raw bucket
    /// counts rather than the quantile summary a [`Snapshot`] carries.
    #[must_use]
    pub fn histogram_entries(&self) -> Vec<(String, Histogram)> {
        let mut entries: Vec<(String, Histogram)> = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// A point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Render as a pretty-printed JSON document:
    ///
    /// ```json
    /// {
    ///   "counters": {"server.admission.rejected": 3},
    ///   "gauges": {"server.buffer.occupancy_bytes": 123456.0},
    ///   "histograms": {
    ///     "sim.round.service_time": {
    ///       "count": 100, "sum": 81.2, "mean": 0.812,
    ///       "min": 0.7, "max": 1.1,
    ///       "p50": 0.81, "p95": 0.93, "p99": 1.02, "p999": 1.1
    ///     }
    ///   }
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            out.push_str(": ");
            out.push_str(&value.to_string());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            out.push_str(": ");
            json::write_f64(&mut out, *value);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            out.push_str(&format!(": {{\"count\": {}, \"sum\": ", h.count));
            json::write_f64(&mut out, h.sum);
            out.push_str(", \"mean\": ");
            json::write_f64(&mut out, h.mean);
            out.push_str(", \"min\": ");
            json::write_f64(&mut out, h.min);
            out.push_str(", \"max\": ");
            json::write_f64(&mut out, h.max);
            for ((label, _), estimate) in QUANTILE_LABELS.iter().zip(h.quantiles) {
                out.push_str(&format!(", \"{label}\": "));
                json::write_f64(&mut out, estimate);
            }
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// The process-wide registry library code records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 5); // same underlying metric
        let g = r.gauge("q");
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn bucket_geometry_is_monotone_and_consistent() {
        // Index is monotone in the value and bucket_value lands in its
        // own bucket.
        let mut prev = 0;
        for i in 0..200 {
            let v = 1e-10 * 1.35f64.powi(i);
            let idx = bucket_index(v);
            assert!(idx >= prev, "index went backwards at {v}");
            prev = idx;
        }
        for idx in 1..=BUCKET_COUNT {
            assert_eq!(bucket_index(bucket_value(idx)), idx);
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT + 1);
        assert_eq!(bucket_index(1e9), BUCKET_COUNT + 1);
    }

    #[test]
    fn histogram_empty_state() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_nan());
        let s = h.snapshot();
        assert!(s.mean.is_nan());
        assert_eq!(s.min, f64::INFINITY);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        let r = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = r.counter("hot");
                let h = r.histogram("hist");
                scope.spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        h.record(1e-3 * (1.0 + (i % 7) as f64));
                    }
                });
            }
        });
        assert_eq!(r.counter("hot").get(), threads * per_thread);
        assert_eq!(r.histogram("hist").count(), threads * per_thread);
        // The CAS-accumulated sum is exact here: every addend is a small
        // multiple of 1e-3, far above f64 rounding at this magnitude.
        let per_thread_sum: u64 = (0..per_thread).map(|i| 1 + i % 7).sum();
        let expected_sum = threads as f64 * 1e-3 * per_thread_sum as f64;
        let sum = r.histogram("hist").sum();
        assert!(
            (sum - expected_sum).abs() / expected_sum < 1e-9,
            "sum {sum} vs {expected_sum}"
        );
    }

    #[test]
    fn quantiles_track_a_uniform_distribution() {
        // 10_000 evenly spaced values on (0, 1]: the q-quantile is q, up
        // to the ~13% relative bucket resolution.
        let h = Histogram::default();
        for i in 1..=10_000 {
            h.record(f64::from(i) / 10_000.0);
        }
        for (q, expected) in [(0.5, 0.5), (0.95, 0.95), (0.99, 0.99)] {
            let est = h.quantile(q);
            assert!(
                (est / expected - 1.0).abs() < 0.15,
                "q = {q}: estimate {est} vs {expected}"
            );
        }
        // Extremes clamp to the exact observed range.
        assert!(h.quantile(0.0) >= 1e-4);
        assert!(h.quantile(1.0) <= 1.0 + 1e-12);
    }

    #[test]
    fn quantiles_track_an_exponential_distribution() {
        // Inverse-CDF samples of Exp(1): quantile q is -ln(1-q). A
        // long-tailed distribution exercises many decades of buckets.
        let h = Histogram::default();
        let n = 20_000;
        for i in 0..n {
            let u = (f64::from(i) + 0.5) / f64::from(n);
            h.record(-(1.0 - u).ln());
        }
        for q in [0.5f64, 0.95, 0.99, 0.999] {
            let expected = -(1.0 - q).ln();
            let est = h.quantile(q);
            assert!(
                (est / expected - 1.0).abs() < 0.15,
                "q = {q}: estimate {est} vs {expected}"
            );
        }
    }

    #[test]
    fn cumulative_buckets_cover_underflow_and_overflow() {
        let h = Histogram::default();
        for v in [0.0, 1e-12, 5e-4, 5e-4, 2.0, 1e9] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), BUCKET_COUNT + 1);
        // Monotone, finite bounds ascending, closed by +Inf at count.
        let mut last = 0;
        for window in buckets.windows(2) {
            assert!(window[0].0 < window[1].0 || window[1].0.is_infinite());
        }
        for &(_, c) in &buckets {
            assert!(c >= last);
            last = c;
        }
        assert_eq!(buckets.last().unwrap().0, f64::INFINITY);
        assert_eq!(buckets.last().unwrap().1, h.count());
        // Underflow observations (0.0 and 1e-12) count under the first
        // regular bound.
        assert_eq!(buckets[0].1, 2);
        // Every value lands at or below its reported bound.
        let le = |v: f64| buckets.iter().find(|&&(b, _)| v <= b).unwrap().1;
        assert!(le(5e-4) >= 4);
        assert_eq!(le(2.0), 5);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let r = Registry::new();
        r.counter("c.one").add(7);
        r.gauge("g \"quoted\"").set(1.25);
        let h = r.histogram("h.x");
        for i in 1..=100 {
            h.record(f64::from(i) * 0.01);
        }
        let text = r.snapshot().to_json();
        let doc = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("counters").unwrap().get("c.one").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            doc.get("gauges")
                .unwrap()
                .get("g \"quoted\"")
                .unwrap()
                .as_f64(),
            Some(1.25)
        );
        let hx = doc.get("histograms").unwrap().get("h.x").unwrap();
        assert_eq!(hx.get("count").unwrap().as_f64(), Some(100.0));
        let p50 = hx.get("p50").unwrap().as_f64().unwrap();
        assert!((p50 - 0.5).abs() / 0.5 < 0.15, "p50 {p50}");
    }
}
