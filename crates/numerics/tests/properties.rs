//! Property-based tests for the numerical foundations: identities that
//! must hold over the whole parameter space, not just at hand-picked
//! points.

use mzd_numerics::integrate::{adaptive_simpson, GaussLegendre};
use mzd_numerics::minimize::brent_minimize;
use mzd_numerics::rng::{Gamma, LogNormal, Pareto, Sample};
use mzd_numerics::roots::brent;
use mzd_numerics::special::{gamma_p, gamma_q, inverse_gamma_p, ln_gamma, standard_normal_cdf};
use mzd_numerics::stats::{wilson_interval, OnlineStats};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gamma_p_is_a_cdf(a in 0.05f64..500.0, x in 0.0f64..2000.0) {
        let p = gamma_p(a, x).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
        // Monotone in x.
        let p2 = gamma_p(a, x + 0.5).unwrap();
        prop_assert!(p2 >= p - 1e-12);
        // Complement identity.
        let q = gamma_q(a, x).unwrap();
        prop_assert!((p + q - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gamma_recurrence_holds(a in 0.2f64..300.0) {
        // ln Γ(a+1) = ln a + ln Γ(a)
        let lhs = ln_gamma(a + 1.0);
        let rhs = a.ln() + ln_gamma(a);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn inverse_gamma_round_trip(a in 0.2f64..300.0, p in 0.0001f64..0.9999) {
        let x = inverse_gamma_p(a, p).unwrap();
        let p2 = gamma_p(a, x).unwrap();
        prop_assert!((p2 - p).abs() < 1e-7, "a={a}, p={p}: got {p2}");
    }

    #[test]
    fn normal_cdf_is_monotone_and_symmetric(x in -8.0f64..8.0) {
        let c = standard_normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(standard_normal_cdf(x + 0.25) >= c);
        prop_assert!((c + standard_normal_cdf(-x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quadratures_agree_on_smooth_integrands(
        a in -3.0f64..0.0,
        b in 0.5f64..4.0,
        k in 0.2f64..3.0,
        c in -2.0f64..2.0,
    ) {
        let f = move |x: f64| (c * x).sin() + (-k * x * x).exp();
        let gl = GaussLegendre::new(48).unwrap().integrate_panels(f, a, b, 4);
        let si = adaptive_simpson(f, a, b, 1e-11).unwrap();
        prop_assert!((gl - si).abs() < 1e-7 * si.abs().max(1.0), "gl {gl} vs simpson {si}");
    }

    #[test]
    fn brent_root_on_random_increasing_cubic(
        r in -5.0f64..5.0,
        s in 0.01f64..3.0,
    ) {
        // f(x) = s(x − r)³ + (x − r): strictly increasing, root at r.
        let f = move |x: f64| {
            let d = x - r;
            s * d * d * d + d
        };
        let root = brent(f, -10.0, 10.0, 1e-13).unwrap();
        prop_assert!((root - r).abs() < 1e-7, "root {root} vs {r}");
    }

    #[test]
    fn brent_minimum_of_random_quartic(
        m in -4.0f64..4.0,
        a4 in 0.05f64..2.0,
        a2 in 0.05f64..2.0,
    ) {
        // f(x) = a4(x−m)⁴ + a2(x−m)²: unique minimum at m.
        let f = move |x: f64| {
            let d = x - m;
            a4 * d * d * d * d + a2 * d * d
        };
        let found = brent_minimize(f, -10.0, 10.0, 1e-12).unwrap();
        prop_assert!((found.x - m).abs() < 1e-4, "min at {} vs {m}", found.x);
    }

    #[test]
    fn online_stats_matches_batch_on_random_data(data in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = mzd_numerics::stats::mean(&data);
        let var = mzd_numerics::stats::variance(&data);
        prop_assert!((s.mean() - mean).abs() <= 1e-9 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-6 * var.abs().max(1.0));
    }

    #[test]
    fn wilson_interval_contains_point_estimate(successes in 0u64..1000, extra in 0u64..1000) {
        let trials = successes + extra;
        if trials > 0 {
            let ci = wilson_interval(successes, trials, 0.95);
            let p_hat = successes as f64 / trials as f64;
            prop_assert!(ci.contains(p_hat));
            prop_assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
        }
    }

    #[test]
    fn samplers_respect_their_moments(
        mean in 1.0f64..1e6,
        cv in 0.05f64..1.2,
        seed in 0u64..100,
    ) {
        let var = (mean * cv) * (mean * cv);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Gamma::from_mean_variance(mean, var).unwrap();
        let ln = LogNormal::from_mean_variance(mean, var).unwrap();
        let pa = Pareto::from_mean_variance(mean, var).unwrap();
        for d in [&g as &dyn SampleDyn, &ln, &pa] {
            prop_assert!((d.mean_dyn() - mean).abs() < 1e-6 * mean);
            // One draw is positive and finite.
            let x = d.sample_dyn(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }
}

/// Object-safe shim over [`Sample`] so the proptest above can loop over
/// heterogeneous distributions.
trait SampleDyn {
    fn sample_dyn(&self, rng: &mut StdRng) -> f64;
    fn mean_dyn(&self) -> f64;
}

impl<T: Sample> SampleDyn for T {
    fn sample_dyn(&self, rng: &mut StdRng) -> f64 {
        self.sample(rng)
    }
    fn mean_dyn(&self) -> f64 {
        self.mean()
    }
}
