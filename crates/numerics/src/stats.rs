//! Streaming and batch statistics for simulation output analysis.
//!
//! The validation experiments (§4 of the paper) estimate small tail
//! probabilities (`p_late`, `p_error`) from simulation runs; this module
//! provides Welford streaming moments, empirical quantiles, and binomial
//! proportion confidence intervals (Wilson score — appropriate for the
//! small counts that arise when estimating probabilities near zero).

use crate::special::standard_normal_quantile;

/// Numerically stable streaming mean/variance/min/max (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Empirical quantile of a sample with linear interpolation
/// (type-7 / the default of most statistics packages).
///
/// Sorts a copy of the data; `q` is clamped to `[0, 1]`. Returns `NaN`
/// for an empty slice.
#[must_use]
pub fn quantile(data: &[f64], q: f64) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `x`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials` at confidence `level` (e.g. `0.95`).
///
/// Well-behaved near 0 and 1 — exactly where the paper's tail-probability
/// estimates live (e.g. 4 late rounds out of 10⁴).
///
/// Returns a degenerate `[0, 1]` interval when `trials == 0`.
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, level: f64) -> ConfidenceInterval {
    if trials == 0 {
        return ConfidenceInterval { lo: 0.0, hi: 1.0 };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = standard_normal_quantile(0.5 + 0.5 * level.clamp(0.0, 1.0 - 1e-12));
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ConfidenceInterval {
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// Sample mean of a slice (`NaN` when empty).
#[must_use]
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance of a slice (`NaN` for fewer than 2 points).
#[must_use]
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return f64::NAN;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_batch() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - mean(&data)).abs() < 1e-12);
        assert!((s.variance() - variance(&data)).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert!(s.std_error() > 0.0);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        let mut s = OnlineStats::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert!(s.variance().is_nan());
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.5, -1.0];
        let b_data = [10.0, 0.5, 2.2];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for &x in &a_data {
            a.push(x);
            all.push(x);
        }
        for &x in &b_data {
            b.push(x);
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);

        // Merging into / from empty.
        let mut e = OnlineStats::new();
        e.merge(&all);
        assert_eq!(e.count(), all.count());
        let snapshot = e;
        e.merge(&OnlineStats::new());
        assert_eq!(e, snapshot);
    }

    #[test]
    fn quantile_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((quantile(&data, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&data, 1.0 / 3.0) - 2.0).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
        // Clamping out-of-range q.
        assert_eq!(quantile(&data, -3.0), 1.0);
        assert_eq!(quantile(&data, 7.0), 4.0);
    }

    #[test]
    fn wilson_interval_sane() {
        let ci = wilson_interval(50, 100, 0.95);
        assert!(ci.contains(0.5));
        assert!(ci.lo > 0.39 && ci.hi < 0.61);
        // Zero successes still yields a nonzero upper bound.
        let ci = wilson_interval(0, 1000, 0.95);
        assert_eq!(ci.lo, 0.0);
        assert!(ci.hi > 0.0 && ci.hi < 0.01);
        // All successes.
        let ci = wilson_interval(1000, 1000, 0.95);
        assert_eq!(ci.hi, 1.0);
        assert!(ci.lo > 0.99);
        // Degenerate trials.
        let ci = wilson_interval(0, 0, 0.95);
        assert_eq!((ci.lo, ci.hi), (0.0, 1.0));
        assert_eq!(ci.width(), 1.0);
    }

    #[test]
    fn wilson_narrower_at_lower_confidence() {
        let a = wilson_interval(30, 200, 0.99);
        let b = wilson_interval(30, 200, 0.90);
        assert!(b.width() < a.width());
    }

    #[test]
    fn batch_mean_variance_edge_cases() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[2.0, 4.0]), 2.0);
    }
}
