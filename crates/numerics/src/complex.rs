//! Minimal complex arithmetic (`f64` re/im) — enough for characteristic
//! functions and their inversion. The standard library has no complex
//! type and the sanctioned crate set has no `num-complex`, so the small
//! amount needed lives here.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from parts.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Construct from polar form `r·e^{iθ}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Modulus `|z|` (hypot — no overflow).
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument `arg z ∈ (−π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// `e^z`.
    #[must_use]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal `ln z`.
    #[must_use]
    pub fn ln(self) -> Self {
        Self {
            re: self.abs().ln(),
            im: self.arg(),
        }
    }

    /// `z^p` for real `p` (principal branch).
    #[must_use]
    pub fn powf(self, p: f64) -> Self {
        if self == Self::ZERO {
            return if p == 0.0 { Self::ONE } else { Self::ZERO };
        }
        (self.ln() * Complex::new(p, 0.0)).exp()
    }

    /// Reciprocal `1/z`.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.re * self.re + self.im * self.im;
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Whether both parts are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division by multiplying with the reciprocal — intentional, not a
    // copy-paste slip.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl From<f64> for Complex {
    fn from(x: f64) -> Self {
        Complex::new(x, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn field_arithmetic() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.0, 4.0);
        assert_eq!(a + b, Complex::new(2.0, 2.0));
        assert_eq!(a - b, Complex::new(4.0, -6.0));
        assert_eq!(a * b, Complex::new(5.0, 14.0));
        assert!(close(a / b * b, a, 1e-14));
        assert_eq!(-a, Complex::new(-3.0, 2.0));
        assert_eq!(a * 2.0, Complex::new(6.0, -4.0));
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }

    #[test]
    fn euler_identity() {
        // e^{iπ} = −1
        let z = (Complex::I * std::f64::consts::PI).exp();
        assert!(close(z, Complex::new(-1.0, 0.0), 1e-14));
    }

    #[test]
    fn exp_ln_round_trip() {
        for &(re, im) in &[(0.5, 1.2), (-2.0, 3.0), (4.0, -0.7)] {
            let z = Complex::new(re, im);
            assert!(close(z.ln().exp(), z, 1e-12 * z.abs()));
        }
    }

    #[test]
    fn powers_match_repeated_multiplication() {
        let z = Complex::new(1.2, -0.8);
        let p3 = z.powf(3.0);
        let m3 = z * z * z;
        assert!(close(p3, m3, 1e-12 * m3.abs()));
        assert_eq!(Complex::ZERO.powf(2.0), Complex::ZERO);
        assert_eq!(Complex::ZERO.powf(0.0), Complex::ONE);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
        assert_eq!(z.conj().im, -z.im);
    }

    #[test]
    fn recip_and_finiteness() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z.recip() * z, Complex::ONE, 1e-14));
        assert!(z.is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
    }
}
