//! Scalar minimization: golden-section search and Brent's parabolic method.
//!
//! The heart of the paper's machinery is the Chernoff bound
//! `P[T_N ≥ t] ≤ inf_{θ≥0} e^{-θt} M(θ)` (eq. 3.1.5): the infimum is found
//! numerically. We minimize `ln h(θ)` — a convex function of θ on the open
//! interval where the moment generating function exists — so any local
//! minimizer is global and unimodal-search methods apply.

use crate::{NumericsError, Result};

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Argument of the minimum.
    pub x: f64,
    /// Function value at [`Minimum::x`].
    pub value: f64,
    /// Number of function evaluations spent.
    pub evaluations: usize,
}

const GOLDEN: f64 = 0.618_033_988_749_894_9; // (√5 − 1) / 2

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
///
/// Derivative-free and robust; converges linearly with ratio φ⁻¹. Runs
/// until the bracket is below `tol` (relative to `|x|`, with an absolute
/// floor) or 300 iterations.
///
/// # Errors
/// [`NumericsError::Domain`] unless `a < b` and both are finite.
pub fn golden_section<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<Minimum> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(NumericsError::Domain {
            what: "golden_section",
            detail: format!("require finite a < b, got [{a}, {b}]"),
        });
    }
    let mut lo = a;
    let mut hi = b;
    let mut x1 = hi - GOLDEN * (hi - lo);
    let mut x2 = lo + GOLDEN * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2;
    for _ in 0..300 {
        if hi - lo <= tol.max(1e-15) * (lo.abs() + hi.abs()).max(1.0) {
            break;
        }
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - GOLDEN * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + GOLDEN * (hi - lo);
            f2 = f(x2);
        }
        evals += 1;
    }
    let (x, value) = if f1 <= f2 { (x1, f1) } else { (x2, f2) };
    Ok(Minimum {
        x,
        value,
        evaluations: evals,
    })
}

/// Brent's parabolic-interpolation minimizer on `[a, b]` for unimodal `f`.
///
/// Superlinear on smooth functions; falls back to golden-section steps when
/// the parabola misbehaves. This is the default optimizer for the Chernoff
/// exponent.
///
/// ```
/// let m = mzd_numerics::minimize::brent_minimize(|x| (x - 2.0_f64).powi(2), 0.0, 5.0, 1e-12)
///     .unwrap();
/// assert!((m.x - 2.0).abs() < 1e-6);
/// ```
///
/// # Errors
/// [`NumericsError::Domain`] unless `a < b` and both are finite.
pub fn brent_minimize<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<Minimum> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(NumericsError::Domain {
            what: "brent_minimize",
            detail: format!("require finite a < b, got [{a}, {b}]"),
        });
    }
    const CGOLD: f64 = 0.381_966_011_250_105; // 1 − φ⁻¹
    const ZEPS: f64 = 1e-18;
    let tol = tol.max(1e-14);

    let (mut lo, mut hi) = (a, b);
    let mut x = lo + CGOLD * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut evals = 1;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for _ in 0..300 {
        let xm = 0.5 * (lo + hi);
        let tol1 = tol * x.abs() + ZEPS;
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (hi - lo) {
            return Ok(Minimum {
                x,
                value: fx,
                evaluations: evals,
            });
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Trial parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = e;
            e = d;
            if p.abs() < (0.5 * q * etemp).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if u - lo < tol2 || hi - u < tol2 {
                    d = tol1.copysign(xm - x);
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= xm { lo - x } else { hi - x };
            d = CGOLD * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else {
            x + tol1.copysign(d)
        };
        let fu = f(u);
        evals += 1;
        if fu <= fx {
            if u >= x {
                lo = x;
            } else {
                hi = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    Ok(Minimum {
        x,
        value: fx,
        evaluations: evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn golden_finds_parabola_vertex() {
        let m = golden_section(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 10.0, 1e-10).unwrap();
        assert_close(m.x, 2.5, 1e-7);
        assert_close(m.value, 1.0, 1e-12);
        assert!(m.evaluations > 2);
    }

    #[test]
    fn brent_min_parabola_vertex_fast() {
        let m = brent_minimize(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 10.0, 1e-12).unwrap();
        assert_close(m.x, 2.5, 1e-8);
        // Parabolic interpolation should need far fewer evals than golden.
        let g = golden_section(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 10.0, 1e-12).unwrap();
        assert!(m.evaluations < g.evaluations);
    }

    #[test]
    fn brent_min_transcendental() {
        // min of x·e^x... actually minimize f(x) = x² + sin(5x) on [-1,1]
        // (unimodal near its global min ≈ −0.2905).
        let m = brent_minimize(|x| x * x - x.ln(), 0.1, 5.0, 1e-12).unwrap();
        // f' = 2x − 1/x = 0 → x = 1/√2
        assert_close(m.x, 1.0 / std::f64::consts::SQRT_2, 1e-7);
    }

    #[test]
    fn chernoff_shaped_objective() {
        // ln h(θ) for an exponential MGF: −θt + N ln(λ/(λ−θ));
        // minimizer θ* = λ − N/t.
        let (lambda, n, t) = (50.0, 20.0, 1.0);
        let obj = |th: f64| -th * t + n * (lambda / (lambda - th)).ln();
        let m = brent_minimize(obj, 1e-9, lambda * (1.0 - 1e-9), 1e-13).unwrap();
        assert_close(m.x, lambda - n / t, 1e-5);
    }

    #[test]
    fn minimum_at_boundary_is_handled() {
        // Monotone decreasing → minimum at right edge.
        let m = brent_minimize(|x| -x, 0.0, 1.0, 1e-10).unwrap();
        assert!(m.x > 0.999);
        let g = golden_section(|x| -x, 0.0, 1.0, 1e-10).unwrap();
        assert!(g.x > 0.999);
    }

    #[test]
    fn invalid_intervals_rejected() {
        assert!(golden_section(|x| x, 1.0, 0.0, 1e-9).is_err());
        assert!(brent_minimize(|x| x, 0.0, f64::NAN, 1e-9).is_err());
    }
}
