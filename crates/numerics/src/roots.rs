//! Scalar root finding: bisection and Brent's method.
//!
//! Used by the analytic model to solve `h'(θ) = 0` cross-checks, to invert
//! monotone CDFs, and by the admission-control search to locate quality
//! thresholds along continuous parameter sweeps.

use crate::{NumericsError, Result};

/// Maximum iterations for the bracketing root finders.
const MAX_ITER: usize = 200;

/// Find a root of `f` in `[a, b]` by bisection. Requires a sign change.
///
/// Robust and derivative-free; linear convergence. Returns the midpoint of
/// the final bracket once its width is below `tol` (absolute).
///
/// # Errors
/// [`NumericsError::BadBracket`] if `f(a)` and `f(b)` have the same sign,
/// [`NumericsError::Domain`] for invalid bounds.
pub fn bisect<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(NumericsError::Domain {
            what: "bisect",
            detail: format!("require finite a < b, got [{a}, {b}]"),
        });
    }
    let mut lo = a;
    let mut hi = b;
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::BadBracket {
            what: "bisect",
            detail: format!("f({a}) = {flo} and f({b}) = {fhi} have the same sign"),
        });
    }
    let mut flo = flo;
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || hi - lo < tol.max(f64::EPSILON * mid.abs()) {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Find a root of `f` in `[a, b]` with Brent's method (inverse quadratic
/// interpolation + secant + bisection safeguards). Superlinear convergence
/// on smooth functions, never worse than bisection.
///
/// # Errors
/// [`NumericsError::BadBracket`] if there is no sign change over `[a, b]`,
/// [`NumericsError::Domain`] for invalid bounds.
pub fn brent<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(NumericsError::Domain {
            what: "brent",
            detail: format!("require finite a < b, got [{a}, {b}]"),
        });
    }
    let mut xa = a;
    let mut xb = b;
    let mut fa = f(xa);
    let mut fb = f(xb);
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::BadBracket {
            what: "brent",
            detail: format!("f({a}) = {fa} and f({b}) = {fb} have the same sign"),
        });
    }
    let mut xc = xa;
    let mut fc = fa;
    let mut d = xb - xa;
    let mut e = d;
    for _ in 0..MAX_ITER {
        if fb.abs() > fc.abs() {
            // Ensure b is the best estimate.
            xa = xb;
            xb = xc;
            xc = xa;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * xb.abs() + 0.5 * tol;
        let xm = 0.5 * (xc - xb);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(xb);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic / secant interpolation.
            let s = fb / fa;
            let (mut p, mut q) = if xa == xc {
                (2.0 * xm * s, 1.0 - s)
            } else {
                let q = fa / fc;
                let r = fb / fc;
                (
                    s * (2.0 * xm * q * (q - r) - (xb - xa) * (r - 1.0)),
                    (q - 1.0) * (r - 1.0) * (s - 1.0),
                )
            };
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        xa = xb;
        fa = fb;
        xb += if d.abs() > tol1 { d } else { tol1.copysign(xm) };
        fb = f(xb);
        if (fb > 0.0) == (fc > 0.0) {
            xc = xa;
            fc = fa;
            d = xb - xa;
            e = d;
        }
    }
    Err(NumericsError::NoConvergence {
        what: "brent",
        iterations: MAX_ITER,
    })
}

/// Expand a bracket geometrically to the right from `a` until `f` changes
/// sign, then locate the root with [`brent`].
///
/// Useful for monotone functions with unknown scale (e.g. finding where a
/// Chernoff bound crosses a threshold as `t` grows).
///
/// # Errors
/// Propagates bracket/convergence failures; errors if no sign change is
/// found before `hi_limit`.
pub fn brent_expand_right<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    initial_step: f64,
    hi_limit: f64,
    tol: f64,
) -> Result<f64> {
    let fa = f(a);
    if fa == 0.0 {
        return Ok(a);
    }
    let mut step = initial_step.abs().max(1e-300);
    let mut lo = a;
    let mut flo = fa;
    loop {
        let hi = (lo + step).min(hi_limit);
        let fhi = f(hi);
        if fhi == 0.0 {
            return Ok(hi);
        }
        if flo.signum() != fhi.signum() {
            return brent(f, lo, hi, tol);
        }
        if hi >= hi_limit {
            return Err(NumericsError::BadBracket {
                what: "brent_expand_right",
                detail: format!("no sign change found in [{a}, {hi_limit}]"),
            });
        }
        lo = hi;
        flo = fhi;
        step *= 2.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert_close(r, std::f64::consts::SQRT_2, 1e-11);
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-9).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_err());
        assert!(bisect(|x| x, 1.0, 0.0, 1e-9).is_err());
    }

    #[test]
    fn brent_transcendental_roots() {
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14).unwrap();
        assert_close(r, 0.739_085_133_215_160_6, 1e-12);
        let r = brent(|x| x.exp() - 5.0, 0.0, 3.0, 1e-14).unwrap();
        assert_close(r, 5.0f64.ln(), 1e-12);
    }

    #[test]
    fn brent_matches_bisect_but_faster_converges() {
        let f = |x: f64| x.powi(3) - 2.0 * x - 5.0; // classic Brent test, root ≈ 2.0945515
        let rb = brent(f, 2.0, 3.0, 1e-14).unwrap();
        assert_close(rb, 2.094_551_481_542_327, 1e-10);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn expand_right_finds_distant_root() {
        let r = brent_expand_right(|x| x - 1000.0, 0.0, 1.0, 1e9, 1e-10).unwrap();
        assert_close(r, 1000.0, 1e-6);
    }

    #[test]
    fn expand_right_respects_limit() {
        assert!(brent_expand_right(|x| x - 1000.0, 0.0, 1.0, 10.0, 1e-10).is_err());
    }

    #[test]
    fn expand_right_root_at_start() {
        assert_eq!(
            brent_expand_right(|x| x, 0.0, 1.0, 10.0, 1e-10).unwrap(),
            0.0
        );
    }
}
