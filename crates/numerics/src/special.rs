//! Special functions: log-gamma, regularized incomplete gamma (and its
//! inverse), error function, and the standard normal CDF/quantile.
//!
//! These are the classical algorithms (Lanczos approximation, power series +
//! Lentz continued fraction, Halley-refined Wilson–Hilferty inverse) with
//! accuracy around `1e-13` relative over the ranges exercised by the model:
//! Gamma shapes `β ∈ [0.1, 1e4]` and percentile levels `p ∈ [1e-12, 1-1e-12]`.

use crate::{NumericsError, Result};

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey / Numerical Recipes).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_1,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_312e-7,
];

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation; relative error below `1e-13` on
/// `x ∈ (0, 1e15)`.
///
/// ```
/// // Γ(5) = 4! = 24
/// assert!((mzd_numerics::special::ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
///
/// # Panics
/// Does not panic; returns `f64::NAN` for `x <= 0` (poles and the branch
/// cut are not needed by this workspace).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    if x <= 0.0 || x.is_nan() {
        return f64::NAN;
    }
    // For small x use the recurrence ln Γ(x) = ln Γ(x+1) − ln x to keep the
    // Lanczos series in its sweet spot.
    if x < 0.5 {
        return ln_gamma(x + 1.0) - x.ln();
    }
    let xm1 = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (xm1 + i as f64);
    }
    let t = xm1 + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (xm1 + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
#[must_use]
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Maximum iterations for the incomplete-gamma series / continued fraction.
const IG_MAX_ITER: usize = 600;
/// Convergence tolerance for incomplete-gamma evaluation.
const IG_EPS: f64 = 1e-15;

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x ≥ 0`.
///
/// This is the CDF of a Gamma(shape `a`, scale 1) random variable.
///
/// # Errors
/// Returns [`NumericsError::Domain`] if `a ≤ 0` or `x < 0`, and
/// [`NumericsError::NoConvergence`] if the series/continued fraction fails
/// (practically unreachable for finite inputs).
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !(x >= 0.0) {
        return Err(NumericsError::Domain {
            what: "gamma_p",
            detail: format!("require a > 0 and x >= 0, got a = {a}, x = {x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Errors
/// Same domain requirements as [`gamma_p`].
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !(x >= 0.0) {
        return Err(NumericsError::Domain {
            what: "gamma_q",
            detail: format!("require a > 0 and x >= 0, got a = {a}, x = {x}"),
        });
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x)?)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`, convergent (and used) for
/// `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..IG_MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * IG_EPS {
            let lg = ln_gamma(a);
            return Ok((sum * (-x + a * x.ln() - lg).exp()).clamp(0.0, 1.0));
        }
    }
    Err(NumericsError::NoConvergence {
        what: "gamma_p_series",
        iterations: IG_MAX_ITER,
    })
}

/// Modified-Lentz continued fraction evaluation of `Q(a, x)`, convergent
/// (and used) for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> Result<f64> {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=IG_MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < IG_EPS {
            let lg = ln_gamma(a);
            return Ok((h * (-x + a * x.ln() - lg).exp()).clamp(0.0, 1.0));
        }
    }
    Err(NumericsError::NoConvergence {
        what: "gamma_q_cf",
        iterations: IG_MAX_ITER,
    })
}

/// Inverse of the regularized lower incomplete gamma function: finds `x`
/// with `P(a, x) = p`.
///
/// This is the quantile function of Gamma(shape `a`, scale 1); the
/// worst-case admission bound (paper eq. 4.1) uses it for the 95th/99th
/// percentile of the fragment-size distribution.
///
/// Starts from the Wilson–Hilferty normal approximation and polishes with
/// Halley steps on `P(a, x) − p` (the derivative is the Gamma pdf).
///
/// # Errors
/// [`NumericsError::Domain`] unless `a > 0` and `0 ≤ p < 1`.
pub fn inverse_gamma_p(a: f64, p: f64) -> Result<f64> {
    if !(a > 0.0) || !(0.0..1.0).contains(&p) {
        return Err(NumericsError::Domain {
            what: "inverse_gamma_p",
            detail: format!("require a > 0 and 0 <= p < 1, got a = {a}, p = {p}"),
        });
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    let lg = ln_gamma(a);

    // Wilson–Hilferty: if G ~ Gamma(a,1) then (G/a)^(1/3) is approximately
    // normal with mean 1 − 1/(9a) and variance 1/(9a).
    let z = standard_normal_quantile(p);
    let t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
    let mut x = if t > 0.0 {
        a * t * t * t
    } else {
        // Deep lower tail or tiny shape: use the small-x asymptotic
        // P(a, x) ≈ x^a / (a Γ(a)).
        ((p * a).ln() + lg).mul_add(1.0 / a, 0.0).exp()
    };
    if !x.is_finite() || x <= 0.0 {
        x = a.max(1e-8);
    }

    // Halley iteration: f(x) = P(a,x) − p, f' = pdf, f''/f' = (a−1)/x − 1.
    for _ in 0..64 {
        let f = gamma_p(a, x)? - p;
        let ln_pdf = (a - 1.0) * x.ln() - x - lg;
        let pdf = ln_pdf.exp();
        if pdf <= 0.0 || !pdf.is_finite() {
            break;
        }
        let newton = f / pdf;
        let hal = newton / (1.0 - 0.5 * newton * ((a - 1.0) / x - 1.0)).max(0.5);
        let mut x_new = x - hal;
        if x_new <= 0.0 {
            x_new = 0.5 * x;
        }
        if (x_new - x).abs() <= 1e-14 * x.max(1.0) {
            return Ok(x_new);
        }
        x = x_new;
    }
    // Fall back to bisection if Halley stalled (extremely skewed cases).
    let mut lo = 0.0;
    let mut hi = x.max(1.0);
    while gamma_p(a, hi)? < p {
        hi *= 2.0;
        if hi > 1e300 {
            return Err(NumericsError::NoConvergence {
                what: "inverse_gamma_p",
                iterations: 64,
            });
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gamma_p(a, mid)? < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1e-14 * hi.max(1.0) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Error function `erf(x)`, via the regularized incomplete gamma identity
/// `erf(x) = sign(x) · P(1/2, x²)`.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x).unwrap_or(f64::NAN);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// cancellation in the right tail.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        // No cancellation on this side: erf(−x) ≥ 0.
        return 1.0 + erf(-x);
    }
    gamma_q(0.5, x * x).unwrap_or(f64::NAN)
}

/// Standard normal cumulative distribution function `Φ(x)`.
#[must_use]
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function `Φ⁻¹(p)` for `0 < p < 1`
/// (Acklam's rational approximation, refined with one Halley step; absolute
/// error below `1e-12`).
///
/// Returns `±∞` at `p ∈ {0, 1}` and `NaN` outside `[0, 1]`.
#[must_use]
pub fn standard_normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement using the exact CDF.
    let e = standard_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the binomial coefficient `ln C(n, k)`.
///
/// Exact via `ln Γ`; valid for `0 ≤ k ≤ n`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            assert_close(ln_gamma(f64::from(n)), fact.ln(), 1e-13);
            fact *= f64::from(n);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-13);
        // Γ(3/2) = √π / 2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-13,
        );
    }

    #[test]
    fn ln_gamma_reflection_small_arg() {
        // Recurrence consistency: Γ(x+1) = x Γ(x)
        for &x in &[0.1, 0.25, 0.45, 0.75, 1.3, 2.6, 11.5] {
            assert_close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_invalid_is_nan() {
        assert!(ln_gamma(0.0).is_nan());
        assert!(ln_gamma(-1.5).is_nan());
        assert!(ln_gamma(f64::NAN).is_nan());
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 − e^{-x} (exponential CDF).
        for &x in &[0.01, 0.5, 1.0, 3.0, 10.0] {
            assert_close(gamma_p(1.0, x).unwrap(), 1.0 - (-x).exp(), 1e-13);
        }
        // P(a, 0) = 0, Q(a, 0) = 1.
        assert_eq!(gamma_p(3.3, 0.0).unwrap(), 0.0);
        assert_eq!(gamma_q(3.3, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn gamma_p_chi_squared_connection() {
        // If X ~ χ²(k) then P[X ≤ x] = P(k/2, x/2).
        // χ²(8) 99th percentile is 20.090235... so P(4, 10.0451...) ≈ 0.99.
        let p = gamma_p(4.0, 20.090_235_029_663_233 / 2.0).unwrap();
        assert_close(p, 0.99, 1e-9);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.3, 1.0, 4.0, 17.5, 230.0] {
            for &x in &[0.01, 0.7, a, 2.0 * a, 5.0 * a] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert_close(p + q, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_domain_errors() {
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(-1.0, 1.0).is_err());
        assert!(gamma_p(1.0, -0.5).is_err());
        assert!(gamma_q(0.0, 1.0).is_err());
    }

    #[test]
    fn inverse_gamma_p_round_trips() {
        for &a in &[0.5, 1.0, 2.0, 4.0, 25.0, 400.0] {
            for &p in &[1e-6, 0.01, 0.05, 0.5, 0.95, 0.99, 1.0 - 1e-6] {
                let x = inverse_gamma_p(a, p).unwrap();
                let p2 = gamma_p(a, x).unwrap();
                assert_close(p2, p, 1e-8);
            }
        }
    }

    #[test]
    fn inverse_gamma_p_paper_percentiles() {
        // Shape 4 (mean 200 KB, sd 100 KB → β = 4): the paper's worst-case
        // bound uses the 99th and 95th size percentiles.
        let x99 = inverse_gamma_p(4.0, 0.99).unwrap();
        assert_close(x99, 10.045_117_514_831_617, 1e-8); // χ²(8) pct / 2
        let x95 = inverse_gamma_p(4.0, 0.95).unwrap();
        assert_close(x95, 7.753_656_528_757_033, 1e-8);
    }

    #[test]
    fn inverse_gamma_p_edges() {
        assert_eq!(inverse_gamma_p(3.0, 0.0).unwrap(), 0.0);
        assert!(inverse_gamma_p(3.0, 1.0).is_err());
        assert!(inverse_gamma_p(-1.0, 0.5).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
    }

    #[test]
    fn erfc_right_tail_no_cancellation() {
        // erfc(5) ≈ 1.537e-12 — a naive 1 − erf would lose everything.
        assert_close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry_and_known() {
        assert_close(standard_normal_cdf(0.0), 0.5, 1e-14);
        assert_close(standard_normal_cdf(1.959_963_984_540_054), 0.975, 1e-10);
        for &x in &[0.3, 1.1, 2.7] {
            assert_close(standard_normal_cdf(x) + standard_normal_cdf(-x), 1.0, 1e-12);
        }
    }

    #[test]
    fn normal_quantile_round_trips() {
        for &p in &[1e-10, 1e-4, 0.025, 0.31, 0.5, 0.77, 0.975, 1.0 - 1e-4] {
            let z = standard_normal_quantile(p);
            assert_close(standard_normal_cdf(z), p, 1e-9);
        }
        assert_eq!(standard_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(standard_normal_quantile(1.0), f64::INFINITY);
        assert!(standard_normal_quantile(-0.1).is_nan());
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_close(ln_choose(5, 2), 10.0f64.ln(), 1e-12);
        assert_close(ln_choose(10, 0), 0.0, 1e-12);
        assert_close(ln_choose(10, 10), 0.0, 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        // C(1200, 12) — the paper's M and g.
        let direct: f64 = (0..12).map(|i| ((1200 - i) as f64).ln()).sum::<f64>() - ln_gamma(13.0);
        assert_close(ln_choose(1200, 12), direct, 1e-10);
    }
}
