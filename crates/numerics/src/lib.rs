//! Numerical foundations for the `mzd` workspace.
//!
//! The PODS'97 model of Nerjes, Muth and Weikum needs a small but sharp set
//! of numerical tools that the authors had available in an off-the-shelf
//! mathematics package:
//!
//! * **Special functions** ([`special`]) — log-gamma, the regularized
//!   incomplete gamma function and its inverse (for Gamma-distribution CDFs
//!   and percentiles, e.g. the 99th size percentile in the worst-case
//!   admission bound, eq. 4.1), and the error function.
//! * **Quadrature** ([`integrate`]) — adaptive Simpson and Gauss–Legendre
//!   rules, used to integrate the multi-zone transfer-time density
//!   (eq. 3.2.7) and its moments.
//! * **Root finding** ([`roots`]) and **scalar minimization** ([`minimize`])
//!   — Brent's methods, used to find the optimal Chernoff parameter θ that
//!   minimizes `e^{-θt} M(θ)` (eq. 3.1.5 / 3.2.12).
//! * **Random variates** ([`rng`]) — Gamma, lognormal, Pareto, normal and
//!   exponential samplers built on [`rand`], because the sanctioned offline
//!   crate set does not include `rand_distr`. Used by the simulator and the
//!   workload generators.
//! * **Statistics** ([`stats`]) — streaming moments, quantiles and
//!   confidence intervals for simulation output analysis.
//!
//! Everything is `f64`, deterministic, allocation-light and documented with
//! the numerical method used, so results are reproducible bit-for-bit for a
//! fixed seed and platform.

#![warn(missing_docs)]

pub mod complex;
pub mod integrate;
pub mod minimize;
pub mod rng;
pub mod roots;
pub mod special;
pub mod stats;

/// Machine-epsilon-scaled default tolerance used across the crate where a
/// caller does not provide one.
pub const DEFAULT_TOL: f64 = 1e-12;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// An argument was outside the mathematical domain of the function.
    Domain {
        /// Which routine rejected the argument.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Which routine failed to converge.
        what: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A bracketing precondition did not hold (e.g. no sign change).
    BadBracket {
        /// Which routine rejected the bracket.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for NumericsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericsError::Domain { what, detail } => {
                write!(f, "domain error in {what}: {detail}")
            }
            NumericsError::NoConvergence { what, iterations } => {
                write!(f, "{what} failed to converge after {iterations} iterations")
            }
            NumericsError::BadBracket { what, detail } => {
                write!(f, "bad bracket in {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

/// Result alias for fallible numerical routines.
pub type Result<T> = std::result::Result<T, NumericsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = NumericsError::Domain {
            what: "gamma_p",
            detail: "a must be positive".into(),
        };
        assert!(e.to_string().contains("gamma_p"));
        let e = NumericsError::NoConvergence {
            what: "brent",
            iterations: 100,
        };
        assert!(e.to_string().contains("100"));
        let e = NumericsError::BadBracket {
            what: "bisect",
            detail: "same sign".into(),
        };
        assert!(e.to_string().contains("bisect"));
    }
}
