//! Random-variate generation built on [`rand`].
//!
//! The offline crate set does not include `rand_distr`, so the samplers the
//! simulator and the workload generators need are implemented here:
//!
//! * [`Normal`] — polar (Marsaglia) method,
//! * [`Gamma`] — Marsaglia–Tsang squeeze method (with the `α < 1` boost),
//! * [`LogNormal`] — exponentiated normal,
//! * [`Pareto`] — inverse-CDF (Lomax-style heavy tail, type I),
//! * [`Exponential`] — inverse-CDF.
//!
//! All samplers are parameter-validated at construction and pure at sample
//! time; determinism is inherited from the caller's RNG (the workspace uses
//! seeded `StdRng` everywhere).

use crate::{NumericsError, Result};
use rand::{Rng, RngExt as _};

/// A distribution that can draw `f64` samples from an RNG.
pub trait Sample {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Mean of the distribution, if finite.
    fn mean(&self) -> f64;

    /// Variance of the distribution, if finite.
    fn variance(&self) -> f64;
}

/// Normal distribution `N(μ, σ²)` sampled with the polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create a normal distribution with mean `mu` and standard deviation
    /// `sigma > 0` (`sigma == 0` is allowed and degenerates to a point mass).
    ///
    /// # Errors
    /// [`NumericsError::Domain`] if `sigma < 0` or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(NumericsError::Domain {
                what: "Normal::new",
                detail: format!("require finite mu and sigma >= 0, got ({mu}, {sigma})"),
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Draw a standard normal variate.
    #[inline]
    pub fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Marsaglia polar method; rejection probability 1 − π/4 per trial.
        loop {
            let u: f64 = rng.random_range(-1.0..1.0);
            let v: f64 = rng.random_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * Self::standard_sample(rng)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

/// Gamma distribution with shape `alpha > 0` and scale `theta > 0`
/// (mean `αθ`, variance `αθ²`), sampled with Marsaglia–Tsang.
///
/// Note the paper parameterizes Gamma with *rate* `α` and *shape* `β`
/// (pdf `α(αx)^{β−1}e^{−αx}/Γ(β)`); see [`Gamma::from_rate_shape`] and
/// [`Gamma::from_mean_variance`] for those conventions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
    /// Marsaglia–Tsang `d = k − 1/3` for the (boosted, if `shape < 1`)
    /// shape — precomputed at construction so the per-sample hot path
    /// does no division or square root beyond the method itself. The
    /// values are the same pure functions of `shape` the sampler used
    /// to evaluate per call, so the draw stream is unchanged.
    d: f64,
    /// Marsaglia–Tsang `c = 1/√(9d)`, precomputed likewise.
    c: f64,
}

impl Gamma {
    /// Create from shape `k > 0` and scale `θ > 0`.
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless both parameters are positive finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !(shape > 0.0) || !(scale > 0.0) || !shape.is_finite() || !scale.is_finite() {
            return Err(NumericsError::Domain {
                what: "Gamma::new",
                detail: format!("require shape > 0 and scale > 0, got ({shape}, {scale})"),
            });
        }
        let k = if shape < 1.0 { shape + 1.0 } else { shape };
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        Ok(Self { shape, scale, d, c })
    }

    /// Create from the paper's rate/shape convention:
    /// pdf `α(αx)^{β−1}e^{−αx}/Γ(β)` with rate `alpha` and shape `beta`.
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless both parameters are positive finite.
    pub fn from_rate_shape(alpha: f64, beta: f64) -> Result<Self> {
        if !(alpha > 0.0) {
            return Err(NumericsError::Domain {
                what: "Gamma::from_rate_shape",
                detail: format!("require rate alpha > 0, got {alpha}"),
            });
        }
        Self::new(beta, 1.0 / alpha)
    }

    /// Moment-match: the Gamma with the given mean and variance
    /// (`α = E/Var`, `β = E²/Var` in the paper's eq. 3.1.2 convention).
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless `mean > 0` and `variance > 0`.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Result<Self> {
        if !(mean > 0.0) || !(variance > 0.0) {
            return Err(NumericsError::Domain {
                what: "Gamma::from_mean_variance",
                detail: format!("require mean > 0 and variance > 0, got ({mean}, {variance})"),
            });
        }
        Self::new(mean * mean / variance, variance / mean)
    }

    /// Shape parameter `k` (= the paper's `β`).
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ` (= `1/α` in the paper's convention).
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Rate parameter `α = 1/θ` (the paper's convention).
    #[must_use]
    pub fn rate(&self) -> f64 {
        1.0 / self.scale
    }

    /// Quantile (inverse CDF) at probability `p ∈ [0, 1)`.
    ///
    /// # Errors
    /// Propagates [`crate::special::inverse_gamma_p`] domain errors.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        Ok(crate::special::inverse_gamma_p(self.shape, p)? * self.scale)
    }

    /// CDF at `x`.
    ///
    /// # Errors
    /// Propagates [`crate::special::gamma_p`] domain errors for `x < 0`.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        if x <= 0.0 {
            return Ok(0.0);
        }
        crate::special::gamma_p(self.shape, x / self.scale)
    }

    /// Probability density at `x`.
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let th = self.scale;
        ((k - 1.0) * (x / th).ln() - x / th - crate::special::ln_gamma(k) - th.ln()).exp()
    }
}

impl Sample for Gamma {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia & Tsang (2000): for shape ≥ 1 draw via the cubed
        // normal squeeze; for shape < 1 use the boosting identity
        // G(k) = G(k+1) · U^{1/k}. The method constants d and c for the
        // effective shape are precomputed in the struct.
        let boost = if self.shape < 1.0 {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            u.powf(1.0 / self.shape)
        } else {
            1.0
        };
        let d = self.d;
        let c = self.c;
        loop {
            let x = Normal::standard_sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            // Squeeze check then full check.
            if u < 1.0 - 0.033_1 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * boost * self.scale;
            }
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
}

/// Lognormal distribution: `exp(N(μ, σ²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the underlying normal parameters (`mu` = log-scale mean,
    /// `sigma > 0` = log-scale standard deviation).
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless `sigma > 0` and both finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() || !(sigma > 0.0) || !sigma.is_finite() {
            return Err(NumericsError::Domain {
                what: "LogNormal::new",
                detail: format!("require finite mu and sigma > 0, got ({mu}, {sigma})"),
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Moment-match the lognormal to a target mean and variance
    /// (both on the linear scale).
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless `mean > 0` and `variance > 0`.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Result<Self> {
        if !(mean > 0.0) || !(variance > 0.0) {
            return Err(NumericsError::Domain {
                what: "LogNormal::from_mean_variance",
                detail: format!("require mean > 0 and variance > 0, got ({mean}, {variance})"),
            });
        }
        let sigma2 = (1.0 + variance / (mean * mean)).ln();
        Ok(Self {
            mu: mean.ln() - 0.5 * sigma2,
            sigma: sigma2.sqrt(),
        })
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard_sample(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

/// Pareto (type I) distribution with scale `x_min > 0` and tail index
/// `alpha > 0`: `P[X > x] = (x_min/x)^α` for `x ≥ x_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Create from scale and tail index.
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless both parameters are positive finite.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self> {
        if !(x_min > 0.0) || !(alpha > 0.0) || !x_min.is_finite() || !alpha.is_finite() {
            return Err(NumericsError::Domain {
                what: "Pareto::new",
                detail: format!("require x_min > 0 and alpha > 0, got ({x_min}, {alpha})"),
            });
        }
        Ok(Self { x_min, alpha })
    }

    /// Moment-match to a target mean and variance. Requires the implied
    /// tail index to exceed 2 (finite variance), which holds whenever
    /// `variance` is finite and positive.
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless `mean > 0` and `variance > 0`.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Result<Self> {
        if !(mean > 0.0) || !(variance > 0.0) {
            return Err(NumericsError::Domain {
                what: "Pareto::from_mean_variance",
                detail: format!("require mean > 0 and variance > 0, got ({mean}, {variance})"),
            });
        }
        // For Pareto(x_min, α): mean = αx/(α−1), var = x²α/((α−1)²(α−2)).
        // var/mean² = 1/(α(α−2)) → α = 1 + √(1 + mean²/var).
        let alpha = 1.0 + (1.0 + mean * mean / variance).sqrt();
        let x_min = mean * (alpha - 1.0) / alpha;
        Self::new(x_min, alpha)
    }

    /// The tail index α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The scale (minimum value) `x_min`.
    #[must_use]
    pub fn x_min(&self) -> f64 {
        self.x_min
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        self.x_min / u.powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.x_min * self.x_min * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
}

/// Poisson distribution with mean `lambda > 0`, sampled with Knuth's
/// product method for small means and a normal approximation with
/// continuity correction above `lambda = 64` (error well under the
/// simulation noise it feeds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create from mean `λ > 0`.
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless `lambda` is positive finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(NumericsError::Domain {
                what: "Poisson::new",
                detail: format!("require lambda > 0, got {lambda}"),
            });
        }
        Ok(Self { lambda })
    }

    /// Draw one count.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda <= 64.0 {
            // Knuth: multiply uniforms until the product drops below
            // e^{-lambda}.
            let limit = (-self.lambda).exp();
            let mut product = 1.0f64;
            let mut k = 0u64;
            loop {
                product *= rng.random::<f64>().max(f64::MIN_POSITIVE);
                if product <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction.
            let z = Normal::standard_sample(rng);
            let v = self.lambda + self.lambda.sqrt() * z + 0.5;
            if v < 0.0 {
                0
            } else {
                v.floor() as u64
            }
        }
    }
}

impl Sample for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_count(rng) as f64
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }
}

/// Exponential distribution with rate `lambda > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create from rate `λ > 0`.
    ///
    /// # Errors
    /// [`NumericsError::Domain`] unless `lambda` is positive finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(NumericsError::Domain {
                what: "Exponential::new",
                detail: format!("require lambda > 0, got {lambda}"),
            });
        }
        Ok(Self { lambda })
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_stats<D: Sample>(d: &D, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for i in 0..n {
            let x = d.sample(&mut rng);
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        (mean, m2 / (n - 1) as f64)
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let (m, v) = sample_stats(&d, 200_000, 1);
        assert!((m - 3.0).abs() < 0.03, "mean {m}");
        assert!((v - 4.0).abs() < 0.1, "var {v}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok()); // point mass allowed
    }

    #[test]
    fn gamma_moments_large_shape() {
        let d = Gamma::new(4.0, 50_000.0).unwrap(); // the paper's size dist (bytes)
        assert_eq!(d.mean(), 200_000.0);
        assert_eq!(d.variance(), 1e10);
        let (m, v) = sample_stats(&d, 200_000, 2);
        assert!((m / 200_000.0 - 1.0).abs() < 0.01, "mean {m}");
        assert!((v / 1e10 - 1.0).abs() < 0.05, "var {v}");
    }

    #[test]
    fn gamma_moments_small_shape() {
        let d = Gamma::new(0.4, 2.0).unwrap();
        let (m, v) = sample_stats(&d, 400_000, 3);
        assert!((m - 0.8).abs() < 0.01, "mean {m}");
        assert!((v - 1.6).abs() < 0.05, "var {v}");
    }

    #[test]
    fn gamma_parameter_conversions() {
        let g = Gamma::from_mean_variance(200.0, 10_000.0).unwrap();
        assert!((g.shape() - 4.0).abs() < 1e-12);
        assert!((g.scale() - 50.0).abs() < 1e-12);
        assert!((g.rate() - 0.02).abs() < 1e-15);
        let g2 = Gamma::from_rate_shape(0.02, 4.0).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn gamma_pdf_cdf_consistency() {
        let g = Gamma::new(4.0, 50.0).unwrap();
        // CDF'(x) ≈ pdf(x) by central differences.
        for &x in &[50.0, 150.0, 200.0, 400.0] {
            let h = 1e-4 * x;
            let num = (g.cdf(x + h).unwrap() - g.cdf(x - h).unwrap()) / (2.0 * h);
            assert!((num - g.pdf(x)).abs() < 1e-6 * g.pdf(x).max(1e-12));
        }
        assert_eq!(g.cdf(-1.0).unwrap(), 0.0);
        assert_eq!(g.pdf(-1.0), 0.0);
    }

    #[test]
    fn gamma_quantile_round_trip() {
        let g = Gamma::from_mean_variance(200_000.0, 1e10).unwrap();
        for &p in &[0.05, 0.5, 0.95, 0.99] {
            let x = g.quantile(p).unwrap();
            assert!((g.cdf(x).unwrap() - p).abs() < 1e-9);
        }
    }

    #[test]
    fn gamma_rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -2.0).is_err());
        assert!(Gamma::from_mean_variance(-1.0, 1.0).is_err());
        assert!(Gamma::from_rate_shape(0.0, 1.0).is_err());
    }

    #[test]
    fn lognormal_moment_matching() {
        let d = LogNormal::from_mean_variance(200.0, 10_000.0).unwrap();
        assert!((d.mean() - 200.0).abs() < 1e-9);
        assert!((d.variance() - 10_000.0).abs() < 1e-6);
        let (m, v) = sample_stats(&d, 400_000, 4);
        assert!((m / 200.0 - 1.0).abs() < 0.01, "mean {m}");
        assert!((v / 10_000.0 - 1.0).abs() < 0.08, "var {v}");
    }

    #[test]
    fn pareto_moment_matching() {
        let d = Pareto::from_mean_variance(200.0, 10_000.0).unwrap();
        assert!(d.alpha() > 2.0);
        assert!((d.mean() - 200.0).abs() < 1e-9);
        assert!((d.variance() - 10_000.0).abs() < 1e-6);
        let (m, _) = sample_stats(&d, 800_000, 5);
        assert!((m / 200.0 - 1.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn pareto_infinite_moments_flagged() {
        let d = Pareto::new(1.0, 0.9).unwrap();
        assert!(d.mean().is_infinite());
        let d = Pareto::new(1.0, 1.5).unwrap();
        assert!(d.mean().is_finite());
        assert!(d.variance().is_infinite());
    }

    #[test]
    fn pareto_samples_respect_minimum() {
        let d = Pareto::new(5.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 5.0);
        }
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::new(0.25).unwrap();
        let (m, v) = sample_stats(&d, 200_000, 7);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
        assert!((v - 16.0).abs() < 0.5, "var {v}");
        assert!(Exponential::new(0.0).is_err());
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let d = Poisson::new(3.5).unwrap();
        let (m, v) = sample_stats(&d, 200_000, 8);
        assert!((m - 3.5).abs() < 0.03, "mean {m}");
        assert!((v - 3.5).abs() < 0.1, "var {v}");
    }

    #[test]
    fn poisson_moments_large_lambda_normal_branch() {
        let d = Poisson::new(200.0).unwrap();
        let (m, v) = sample_stats(&d, 200_000, 9);
        assert!((m / 200.0 - 1.0).abs() < 0.005, "mean {m}");
        assert!((v / 200.0 - 1.0).abs() < 0.05, "var {v}");
    }

    #[test]
    fn poisson_counts_are_nonnegative_integers() {
        let d = Poisson::new(0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let mut zeros = 0;
        for _ in 0..10_000 {
            let k = d.sample_count(&mut rng);
            if k == 0 {
                zeros += 1;
            }
        }
        // P[0] = e^{-0.05} ≈ 0.951.
        assert!((f64::from(zeros) / 10_000.0 - 0.951).abs() < 0.01);
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn samplers_are_deterministic_for_fixed_seed() {
        let d = Gamma::new(4.0, 50.0).unwrap();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
