//! Numerical quadrature: adaptive Simpson and Gauss–Legendre rules.
//!
//! The multi-zone transfer-time density (paper eq. 3.2.7) is a smooth
//! product-distribution integral over the transfer-rate support
//! `[C_min/ROT, C_max/ROT]`; its moments feed the Gamma moment-matching of
//! §3.2. Gauss–Legendre is the workhorse (the integrands are analytic);
//! adaptive Simpson is kept as an error-controlled cross-check and for
//! integrands with mild kinks (e.g. piecewise seek curves).

use crate::{NumericsError, Result};

/// Integrate `f` over `[a, b]` with adaptive Simpson's rule to absolute
/// tolerance `tol`.
///
/// # Errors
/// [`NumericsError::Domain`] for non-finite bounds,
/// [`NumericsError::NoConvergence`] if the recursion depth budget (60) is
/// exhausted before reaching `tol`.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::Domain {
            what: "adaptive_simpson",
            detail: format!("bounds must be finite, got [{a}, {b}]"),
        });
    }
    if a == b {
        return Ok(0.0);
    }
    let (lo, hi, sign) = if a < b { (a, b, 1.0) } else { (b, a, -1.0) };
    let m = 0.5 * (lo + hi);
    let flo = f(lo);
    let fm = f(m);
    let fhi = f(hi);
    let whole = simpson_rule(lo, hi, flo, fm, fhi);
    let v = simpson_recurse(&f, lo, hi, flo, fm, fhi, whole, tol.max(1e-300), 60)?;
    Ok(sign * v)
}

fn simpson_rule(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> Result<f64> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_rule(a, m, fa, flm, fm);
    let right = simpson_rule(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol || (b - a) < 1e-14 * (a.abs() + b.abs() + 1.0) {
        return Ok(left + right + delta / 15.0);
    }
    if depth == 0 {
        return Err(NumericsError::NoConvergence {
            what: "adaptive_simpson",
            iterations: 60,
        });
    }
    let lv = simpson_recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)?;
    let rv = simpson_recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)?;
    Ok(lv + rv)
}

/// A Gauss–Legendre quadrature rule of fixed order on `[-1, 1]`.
///
/// Nodes and weights are computed once (Newton iteration on the Legendre
/// polynomial, the standard Golub-free construction) and can be reused for
/// many integrals — the analytic model evaluates the transfer-time density
/// at hundreds of points when validating the Gamma approximation.
#[derive(Debug, Clone)]
pub struct GaussLegendre {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussLegendre {
    /// Construct the rule with `n ≥ 1` points (exact for polynomials of
    /// degree `2n − 1`).
    ///
    /// # Errors
    /// [`NumericsError::Domain`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(NumericsError::Domain {
                what: "GaussLegendre::new",
                detail: "order must be at least 1".into(),
            });
        }
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Chebyshev-based initial guess for the i-th root.
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut pp = 0.0;
            for _ in 0..100 {
                // Evaluate P_n(x) and P'_n(x) by recurrence.
                let mut p0 = 1.0;
                let mut p1 = x;
                for k in 2..=n {
                    let kf = k as f64;
                    let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
                    p0 = p1;
                    p1 = p2;
                }
                // p1 = P_n, p0 = P_{n−1}
                let pn = if n == 1 { x } else { p1 };
                let pnm1 = if n == 1 { 1.0 } else { p0 };
                pp = n as f64 * (x * pn - pnm1) / (x * x - 1.0);
                let dx = pn / pp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            let w = 2.0 / ((1.0 - x * x) * pp * pp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        Ok(Self { nodes, weights })
    }

    /// Number of quadrature points.
    #[must_use]
    pub fn order(&self) -> usize {
        self.nodes.len()
    }

    /// Integrate `f` over `[a, b]`.
    pub fn integrate<F: Fn(f64) -> f64>(&self, f: F, a: f64, b: f64) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        let mut acc = 0.0;
        for (&x, &w) in self.nodes.iter().zip(&self.weights) {
            acc += w * f(mid + half * x);
        }
        half * acc
    }

    /// The explicit `(node, weight)` pairs of [`Self::integrate_panels`]
    /// over `[a, b]` with `pieces` equal panels, in evaluation order —
    /// `integrate_panels(f, …) == Σ w_k · f(x_k)` exactly. Lets a caller
    /// evaluate an expensive integrand once per node and reuse the
    /// samples across many related integrals (e.g. one characteristic
    /// function inverted at many grid points).
    #[must_use]
    pub fn panel_points(&self, a: f64, b: f64, pieces: usize) -> Vec<(f64, f64)> {
        let pieces = pieces.max(1);
        let h = (b - a) / pieces as f64;
        let mut points = Vec::with_capacity(pieces * self.nodes.len());
        for k in 0..pieces {
            let lo = a + h * k as f64;
            let half = 0.5 * h;
            let mid = lo + half;
            for (&x, &w) in self.nodes.iter().zip(&self.weights) {
                points.push((mid + half * x, half * w));
            }
        }
        points
    }

    /// Integrate `f` over `[a, b]` split into `pieces` equal panels —
    /// useful when the integrand has moderate curvature variation across
    /// the interval (e.g. densities peaked near one end).
    pub fn integrate_panels<F: Fn(f64) -> f64>(&self, f: F, a: f64, b: f64, pieces: usize) -> f64 {
        let pieces = pieces.max(1);
        let h = (b - a) / pieces as f64;
        let mut acc = 0.0;
        for k in 0..pieces {
            let lo = a + h * k as f64;
            acc += self.integrate(&f, lo, lo + h);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact for cubics.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 1e-12).unwrap();
        // ∫ = x⁴/4 − x² + x on [−1, 3] = (81/4 − 9 + 3) − (1/4 − 1 − 1) = 16
        assert_close(v, 16.0, 1e-12);
    }

    #[test]
    fn simpson_transcendental() {
        let v = adaptive_simpson(f64::sin, 0.0, std::f64::consts::PI, 1e-12).unwrap();
        assert_close(v, 2.0, 1e-10);
        let v = adaptive_simpson(|x| (-x).exp(), 0.0, 30.0, 1e-13).unwrap();
        assert_close(v, 1.0, 1e-9);
    }

    #[test]
    fn simpson_reversed_bounds_negates() {
        let fwd = adaptive_simpson(|x| x.exp(), 0.0, 1.0, 1e-12).unwrap();
        let rev = adaptive_simpson(|x| x.exp(), 1.0, 0.0, 1e-12).unwrap();
        assert_close(fwd, -rev, 1e-13);
    }

    #[test]
    fn simpson_degenerate_and_bad_inputs() {
        assert_eq!(adaptive_simpson(|x| x, 2.0, 2.0, 1e-9).unwrap(), 0.0);
        assert!(adaptive_simpson(|x| x, f64::NAN, 1.0, 1e-9).is_err());
        assert!(adaptive_simpson(|x| x, 0.0, f64::INFINITY, 1e-9).is_err());
    }

    #[test]
    fn gauss_legendre_low_orders_known_nodes() {
        // n = 2: nodes ±1/√3, weights 1.
        let g = GaussLegendre::new(2).unwrap();
        assert_close(g.nodes[1], 1.0 / 3.0f64.sqrt(), 1e-14);
        assert_close(g.weights[0], 1.0, 1e-14);
        // n = 3: nodes 0, ±√(3/5); weights 8/9, 5/9.
        let g = GaussLegendre::new(3).unwrap();
        assert_close(g.nodes[2], (3.0f64 / 5.0).sqrt(), 1e-14);
        assert_close(g.weights[1], 8.0 / 9.0, 1e-14);
        assert_close(g.weights[0], 5.0 / 9.0, 1e-14);
    }

    #[test]
    fn gauss_legendre_exactness_degree() {
        // Order n integrates x^(2n−1) exactly.
        let g = GaussLegendre::new(8).unwrap();
        let v = g.integrate(|x| x.powi(15), 0.0, 1.0);
        assert_close(v, 1.0 / 16.0, 1e-13);
    }

    #[test]
    fn gauss_legendre_matches_simpson_on_density_like_integrand() {
        // Integrand shaped like the multi-zone transfer-time inner integral.
        let f = |r: f64| r * r * (-0.8 * r).exp();
        let g = GaussLegendre::new(64).unwrap();
        let gl = g.integrate(f, 7.0, 11.5);
        let si = adaptive_simpson(f, 7.0, 11.5, 1e-13).unwrap();
        assert_close(gl, si, 1e-11);
    }

    #[test]
    fn gauss_legendre_panels() {
        let g = GaussLegendre::new(16).unwrap();
        let one = g.integrate(|x| (-x * x).exp(), -6.0, 6.0);
        let many = g.integrate_panels(|x| (-x * x).exp(), -6.0, 6.0, 8);
        assert_close(many, std::f64::consts::PI.sqrt(), 1e-12);
        // Single panel at order 16 over a wide Gaussian is noticeably worse.
        assert!(
            (one - std::f64::consts::PI.sqrt()).abs() >= (many - std::f64::consts::PI.sqrt()).abs()
        );
    }

    #[test]
    fn gauss_legendre_zero_order_rejected() {
        assert!(GaussLegendre::new(0).is_err());
    }

    #[test]
    fn gauss_legendre_weights_sum_to_two() {
        for n in [1, 2, 5, 16, 64, 128] {
            let g = GaussLegendre::new(n).unwrap();
            let s: f64 = g.weights.iter().sum();
            assert_close(s, 2.0, 1e-12);
            assert_eq!(g.order(), n);
        }
    }

    #[test]
    fn panel_points_reproduce_panel_integration() {
        let g = GaussLegendre::new(16).unwrap();
        let f = |x: f64| (x * 1.7).sin() * (-0.3 * x).exp();
        for pieces in [1usize, 3, 17] {
            let direct = g.integrate_panels(f, 0.25, 9.5, pieces);
            let points = g.panel_points(0.25, 9.5, pieces);
            assert_eq!(points.len(), pieces * g.order());
            let via_points: f64 = points.iter().map(|&(x, w)| w * f(x)).sum();
            assert_close(via_points, direct, 1e-13);
            // Weights cover the interval.
            let total_w: f64 = points.iter().map(|&(_, w)| w).sum();
            assert_close(total_w, 9.5 - 0.25, 1e-12);
        }
    }
}
