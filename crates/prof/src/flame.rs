//! Inline-SVG flame chart rendered from collapsed-stack text.
//!
//! The input is the `stack;path;here VALUE` format of
//! [`crate::collapsed`] (or any flamegraph.pl-compatible file); the
//! output is a self-contained `<svg>` element — no scripts, no external
//! references — suitable for embedding in the `mzd report` page. Pure
//! function of its input: equal profiles render byte-identical charts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Debug, Default)]
struct Node {
    /// Value attributed to this frame itself.
    self_value: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn total(&self) -> u64 {
        self.self_value + self.children.values().map(Node::total).sum::<u64>()
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

/// Parse collapsed-stack lines into a root tree. Malformed lines are
/// skipped, matching the report renderer's tolerance.
fn parse(collapsed: &str) -> Node {
    let mut root = Node::default();
    for line in collapsed.lines() {
        let line = line.trim();
        let Some((stack, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        if stack.is_empty() {
            continue;
        }
        let mut node = &mut root;
        for frame in stack.split(';') {
            node = node.children.entry(frame.to_string()).or_default();
        }
        node.self_value += value;
    }
    root
}

const WIDTH: f64 = 1000.0;
const ROW: f64 = 17.0;
/// Frames narrower than this many px are dropped (unreadable anyway).
const MIN_W: f64 = 0.5;

/// Deterministic warm palette keyed by the frame name.
fn color(name: &str) -> &'static str {
    const PALETTE: [&str; 8] = [
        "#e4573f", "#e67e22", "#e3a72f", "#d4533b", "#eb9c51", "#cd6633", "#e8743b", "#da8a3d",
    ];
    PALETTE[crate::fnv1a64(name.as_bytes()) as usize % PALETTE.len()]
}

fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[allow(clippy::cast_precision_loss)]
fn emit(out: &mut String, name: &str, node: &Node, x: f64, depth: usize, scale: f64, total: u64) {
    let w = node.total() as f64 * scale;
    if w < MIN_W {
        return;
    }
    let y = depth as f64 * ROW;
    let pct = 100.0 * node.total() as f64 / total as f64;
    let _ = write!(
        out,
        "<g><title>{} ({} ns, {:.1}%)</title>\
         <rect x=\"{:.2}\" y=\"{y:.1}\" width=\"{:.2}\" height=\"{:.1}\" \
         fill=\"{}\" stroke=\"#fff\" stroke-width=\"0.5\"/>",
        esc(name),
        node.total(),
        pct,
        x,
        w,
        ROW - 1.0,
        color(name)
    );
    if w >= 40.0 {
        let _ = write!(
            out,
            "<text x=\"{:.2}\" y=\"{:.1}\" font-size=\"11\" fill=\"#fff\" \
             font-family=\"monospace\">{}</text>",
            x + 3.0,
            y + ROW - 5.0,
            esc(name)
        );
    }
    out.push_str("</g>");
    let mut cx = x;
    for (child_name, child) in &node.children {
        emit(out, child_name, child, cx, depth + 1, scale, total);
        cx += child.total() as f64 * scale;
    }
}

/// Render collapsed-stack text as an inline SVG flame chart. An empty
/// or unparsable profile renders a placeholder SVG rather than failing.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn render_flame_svg(collapsed: &str) -> String {
    let root = parse(collapsed);
    let total = root.total();
    if total == 0 {
        return String::from(
            "<svg viewBox=\"0 0 1000 24\" width=\"1000\" height=\"24\" role=\"img\">\
             <text x=\"4\" y=\"16\" font-size=\"12\" fill=\"#777\">\
             (empty profile)</text></svg>",
        );
    }
    let depth = root.depth() - 1; // root itself is not drawn
    let height = depth.max(1) as f64 * ROW + 2.0;
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {WIDTH} {height:.0}\" width=\"{WIDTH}\" height=\"{height:.0}\" \
         role=\"img\">"
    );
    let scale = WIDTH / total as f64;
    let mut x = 0.0;
    for (name, child) in &root.children {
        emit(&mut out, name, child, x, 0, scale, total);
        x += child.total() as f64 * scale;
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_stacks() {
        let svg = render_flame_svg("round 100\nround;sweep 700\nround;slo 200\n");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("round"));
        assert!(svg.contains("sweep"));
        // Sweep occupies 70% of the width.
        assert!(svg.contains("width=\"700.00\""), "{svg}");
        // Deterministic: same input, same bytes.
        assert_eq!(
            svg,
            render_flame_svg("round 100\nround;sweep 700\nround;slo 200\n")
        );
        // Self-contained.
        assert!(!svg.contains("http"));
        assert!(!svg.contains("<script"));
    }

    #[test]
    fn empty_and_malformed_profiles_render_placeholder() {
        assert!(render_flame_svg("").contains("empty profile"));
        assert!(render_flame_svg("no trailing value\n???\n").contains("empty profile"));
        // A malformed line among good ones is skipped.
        let svg = render_flame_svg("garbage\na;b 50\n");
        assert!(svg.contains("</svg>"));
        assert!(!svg.contains("empty profile"));
    }

    #[test]
    fn escapes_frame_names() {
        let svg = render_flame_svg("<evil>&\"x\" 1000\n");
        assert!(!svg.contains("<evil>"));
        assert!(svg.contains("&lt;evil&gt;"));
    }
}
