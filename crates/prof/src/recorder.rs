//! Flight recorder: a fixed-capacity ring of full-fidelity per-round
//! snapshots, dumped as a deterministic post-mortem bundle on demand.
//!
//! The ring is preallocated at attach time and `push` writes into it
//! without allocating or resizing, so recording costs a handful of moves
//! per round on the server's hot loop. Snapshots carry only logical time
//! (round ids, RNG stream positions) and deterministic state — never
//! wall-clock — so a bundle dumped from a seeded run is byte-identical
//! across reruns and across `--jobs` widths.
//!
//! A bundle is a directory with two files:
//!
//! * `rounds.jsonl` — the retained snapshots, oldest first, one JSON
//!   object per line;
//! * `MANIFEST.json` — schema id, trigger, trigger round, capture
//!   counts, a config echo, and per-file byte lengths + FNV-1a-64
//!   checksums so `mzd postmortem` can detect truncation or tampering.

use mzd_telemetry::json::{self, Value};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Why a bundle was dumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DumpTrigger {
    /// The SLO fast-burn alert was raised this round.
    SloFastBurn,
    /// The degradation ladder escalated a rung this round.
    DegradeEscalation,
    /// A disk overran the round deadline this round.
    RoundOverrun,
    /// A panic unwound through the installed hook.
    Panic,
    /// A fleet declared one or more node leases expired this round (a
    /// lease expiry storm — every node's recorder dumps so the outage
    /// window is auditable from all vantage points).
    LeaseExpiryStorm,
    /// A stream exhausted the composed fleet glitch budget `g` this
    /// round (the per-stream bound the cluster admits against).
    BudgetBreach,
    /// The health detector ejected a gray node this round: its streams
    /// migrated and the fleet guarantee was re-composed, so the window
    /// leading up to the ejection is worth a full-fidelity bundle.
    HealthEjection,
    /// Explicit request (CLI `--dump-on-exit`, tests).
    Manual,
}

impl DumpTrigger {
    /// Stable identifier used in bundle directory names and manifests.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DumpTrigger::SloFastBurn => "slo.fast_burn",
            DumpTrigger::DegradeEscalation => "degrade.escalated",
            DumpTrigger::RoundOverrun => "round.overrun",
            DumpTrigger::Panic => "panic",
            DumpTrigger::LeaseExpiryStorm => "lease.expiry_storm",
            DumpTrigger::BudgetBreach => "budget.breach",
            DumpTrigger::HealthEjection => "health.ejection",
            DumpTrigger::Manual => "manual",
        }
    }

    /// Parse the manifest form back.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "slo.fast_burn" => DumpTrigger::SloFastBurn,
            "degrade.escalated" => DumpTrigger::DegradeEscalation,
            "round.overrun" => DumpTrigger::RoundOverrun,
            "panic" => DumpTrigger::Panic,
            "lease.expiry_storm" => DumpTrigger::LeaseExpiryStorm,
            "budget.breach" => DumpTrigger::BudgetBreach,
            "health.ejection" => DumpTrigger::HealthEjection,
            "manual" => DumpTrigger::Manual,
            _ => return None,
        })
    }
}

/// One disk's phase decomposition for one round — a copy of the
/// simulator's `RoundOutcome` split (`seek + rotation + transfer +
/// stall + fault = service_time`, exactly).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiskPhases {
    /// Disk index.
    pub disk: u32,
    /// Requests served in the sweep.
    pub requests: u32,
    /// Total sweep service time, seconds.
    pub service_time: f64,
    /// Whether the disk overran the round deadline.
    pub late: bool,
    /// Seek component, seconds.
    pub seek_time: f64,
    /// Rotational-latency component, seconds.
    pub rotational_time: f64,
    /// Transfer component, seconds.
    pub transfer_time: f64,
    /// Thermal-recalibration stall component, seconds.
    pub stall_time: f64,
    /// Injected-fault component, seconds.
    pub fault_time: f64,
}

/// Cumulative fault-injector counters as of a snapshot's round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTotals {
    /// Media errors injected.
    pub media_errors: u64,
    /// Retry rereads performed.
    pub retries: u64,
    /// Transient stalls injected.
    pub stalls: u64,
    /// Remap detours taken.
    pub remaps: u64,
    /// Reads abandoned after retry exhaustion.
    pub failed_reads: u64,
    /// Rounds a disk spent unavailable.
    pub unavailable_rounds: u64,
}

/// Full-fidelity state of one server round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundSnapshot {
    /// 0-based round index.
    pub round: u64,
    /// Active streams at end of round.
    pub active_streams: u64,
    /// Streams queued for admission at end of round.
    pub waiting_streams: u64,
    /// Glitched stream-rounds this round.
    pub glitches: u64,
    /// Degradation-ladder rung (0 = full service).
    pub rung: u8,
    /// SLO fast-window burn rate (0 when no SLO layer).
    pub burn_fast: f64,
    /// SLO slow-window burn rate.
    pub burn_slow: f64,
    /// SLO long-window burn rate.
    pub burn_long: f64,
    /// Cache hits this round.
    pub cache_hits: u64,
    /// Cache delayed hits (coalesced onto an in-flight fetch).
    pub cache_delayed_hits: u64,
    /// Cache misses this round.
    pub cache_misses: u64,
    /// Cache resident bytes at end of round.
    pub cache_occupancy_bytes: f64,
    /// Per-disk active-stream load vector for the next round.
    pub load: Vec<u32>,
    /// Per-disk RNG stream positions: rounds each disk simulator has
    /// drawn (the logical position of its private xoshiro stream).
    pub rng_positions: Vec<u64>,
    /// Per-disk phase decomposition.
    pub disks: Vec<DiskPhases>,
    /// Cumulative fault counters summed over disks.
    pub faults: FaultTotals,
}

fn push_u64(out: &mut String, key: &str, v: u64) {
    out.push(',');
    json::write_escaped(out, key);
    out.push(':');
    out.push_str(&v.to_string());
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    out.push(',');
    json::write_escaped(out, key);
    out.push(':');
    json::write_f64(out, v);
}

impl RoundSnapshot {
    /// Serialize as one line of JSON (fixed member order — byte-stable
    /// for identical state).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256 + self.disks.len() * 160);
        out.push_str("{\"round\":");
        out.push_str(&self.round.to_string());
        push_u64(&mut out, "active", self.active_streams);
        push_u64(&mut out, "waiting", self.waiting_streams);
        push_u64(&mut out, "glitches", self.glitches);
        push_u64(&mut out, "rung", u64::from(self.rung));
        push_f64(&mut out, "burn_fast", self.burn_fast);
        push_f64(&mut out, "burn_slow", self.burn_slow);
        push_f64(&mut out, "burn_long", self.burn_long);
        push_u64(&mut out, "cache_hits", self.cache_hits);
        push_u64(&mut out, "cache_delayed_hits", self.cache_delayed_hits);
        push_u64(&mut out, "cache_misses", self.cache_misses);
        push_f64(
            &mut out,
            "cache_occupancy_bytes",
            self.cache_occupancy_bytes,
        );
        out.push_str(",\"load\":[");
        for (i, l) in self.load.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&l.to_string());
        }
        out.push_str("],\"rng_positions\":[");
        for (i, p) in self.rng_positions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_string());
        }
        out.push_str("],\"disks\":[");
        for (i, d) in self.disks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"disk\":");
            out.push_str(&d.disk.to_string());
            push_u64(&mut out, "requests", u64::from(d.requests));
            push_f64(&mut out, "service_time", d.service_time);
            out.push_str(",\"late\":");
            out.push_str(if d.late { "true" } else { "false" });
            push_f64(&mut out, "seek_time", d.seek_time);
            push_f64(&mut out, "rotational_time", d.rotational_time);
            push_f64(&mut out, "transfer_time", d.transfer_time);
            push_f64(&mut out, "stall_time", d.stall_time);
            push_f64(&mut out, "fault_time", d.fault_time);
            out.push('}');
        }
        out.push_str("],\"faults\":{\"media_errors\":");
        out.push_str(&self.faults.media_errors.to_string());
        push_u64(&mut out, "retries", self.faults.retries);
        push_u64(&mut out, "stalls", self.faults.stalls);
        push_u64(&mut out, "remaps", self.faults.remaps);
        push_u64(&mut out, "failed_reads", self.faults.failed_reads);
        push_u64(
            &mut out,
            "unavailable_rounds",
            self.faults.unavailable_rounds,
        );
        out.push_str("}}");
        out
    }

    /// Parse a `rounds.jsonl` line back into a snapshot. Returns `None`
    /// for malformed lines; missing numeric members default to 0 so old
    /// bundles stay readable across additive schema growth.
    #[must_use]
    pub fn parse_json_line(line: &str) -> Option<Self> {
        let doc = json::parse(line).ok()?;
        let num = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let int = |v: &Value, key: &str| num(v, key).max(0.0) as u64;
        let mut snap = RoundSnapshot {
            round: int(&doc, "round"),
            active_streams: int(&doc, "active"),
            waiting_streams: int(&doc, "waiting"),
            glitches: int(&doc, "glitches"),
            #[allow(clippy::cast_possible_truncation)]
            rung: int(&doc, "rung").min(u64::from(u8::MAX)) as u8,
            burn_fast: num(&doc, "burn_fast"),
            burn_slow: num(&doc, "burn_slow"),
            burn_long: num(&doc, "burn_long"),
            cache_hits: int(&doc, "cache_hits"),
            cache_delayed_hits: int(&doc, "cache_delayed_hits"),
            cache_misses: int(&doc, "cache_misses"),
            cache_occupancy_bytes: num(&doc, "cache_occupancy_bytes"),
            ..RoundSnapshot::default()
        };
        if let Some(load) = doc.get("load").and_then(Value::as_array) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            snap.load.extend(
                load.iter()
                    .map(|v| v.as_f64().unwrap_or(0.0).max(0.0) as u32),
            );
        }
        if let Some(pos) = doc.get("rng_positions").and_then(Value::as_array) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            snap.rng_positions.extend(
                pos.iter()
                    .map(|v| v.as_f64().unwrap_or(0.0).max(0.0) as u64),
            );
        }
        if let Some(disks) = doc.get("disks").and_then(Value::as_array) {
            for d in disks {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                snap.disks.push(DiskPhases {
                    disk: int(d, "disk") as u32,
                    requests: int(d, "requests") as u32,
                    service_time: num(d, "service_time"),
                    late: d.get("late") == Some(&Value::Bool(true)),
                    seek_time: num(d, "seek_time"),
                    rotational_time: num(d, "rotational_time"),
                    transfer_time: num(d, "transfer_time"),
                    stall_time: num(d, "stall_time"),
                    fault_time: num(d, "fault_time"),
                });
            }
        }
        if let Some(f) = doc.get("faults") {
            snap.faults = FaultTotals {
                media_errors: int(f, "media_errors"),
                retries: int(f, "retries"),
                stalls: int(f, "stalls"),
                remaps: int(f, "remaps"),
                failed_reads: int(f, "failed_reads"),
                unavailable_rounds: int(f, "unavailable_rounds"),
            };
        }
        Some(snap)
    }
}

/// The fixed-capacity snapshot ring. Push never allocates after
/// construction; the ring retains the newest `capacity` snapshots.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Option<RoundSnapshot>>,
    /// Snapshots pushed over the recorder's lifetime.
    pushed: u64,
}

impl FlightRecorder {
    /// An empty ring retaining at most `capacity` rounds (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            pushed: 0,
        }
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Snapshots currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::try_from(self.pushed).map_or(self.slots.len(), |p| p.min(self.slots.len()))
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Snapshots pushed over the recorder's lifetime (retained or
    /// since overwritten).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Record one round, overwriting the oldest slot when full.
    pub fn push(&mut self, snapshot: RoundSnapshot) {
        let idx = usize::try_from(self.pushed % self.slots.len() as u64).expect("ring index fits");
        self.slots[idx] = Some(snapshot);
        self.pushed += 1;
    }

    /// Retained snapshots, oldest first.
    #[must_use]
    pub fn iter_oldest_first(&self) -> Vec<&RoundSnapshot> {
        let cap = self.slots.len() as u64;
        let start = self.pushed.saturating_sub(cap);
        (start..self.pushed)
            .filter_map(|i| self.slots[usize::try_from(i % cap).expect("ring index fits")].as_ref())
            .collect()
    }
}

/// Recorder configuration: ring size, bundle destination, dump limits
/// and the config echo replayed into every manifest.
#[derive(Debug, Clone)]
pub struct RecorderSettings {
    /// Rounds retained (default 64).
    pub capacity: usize,
    /// Directory bundles are written under (created on demand).
    pub out_dir: PathBuf,
    /// Maximum bundles dumped per run; later triggers are counted but
    /// not written (default 4).
    pub max_dumps: usize,
    /// `(key, value)` pairs echoed into each manifest's `config` object
    /// — the run's provenance (disk profile, seed, fragment moments)
    /// so `mzd postmortem` can rebuild the analytic model.
    pub config_echo: Vec<(String, String)>,
}

impl RecorderSettings {
    /// Defaults: 64 rounds, 4 dumps, bundles under `dir`.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            capacity: 64,
            out_dir: dir.into(),
            max_dumps: 4,
            config_echo: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct RecorderInner {
    ring: FlightRecorder,
    settings: RecorderSettings,
    /// `(trigger, bundle path)` of every dump written.
    dumps: Vec<(DumpTrigger, PathBuf)>,
    /// Triggers suppressed by the `max_dumps` cap or by having already
    /// dumped for the same trigger kind.
    suppressed: u64,
}

/// Shared handle to a flight recorder: clone freely; the server pushes,
/// the panic hook and the CLI dump.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<RecorderInner>>,
}

/// Lock that survives a poisoned mutex: the panic hook dumps *during*
/// unwinding, when the pushing thread may have poisoned the lock.
fn lock(inner: &Mutex<RecorderInner>) -> std::sync::MutexGuard<'_, RecorderInner> {
    inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Recorder {
    /// Create a recorder with the given settings.
    #[must_use]
    pub fn new(settings: RecorderSettings) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RecorderInner {
                ring: FlightRecorder::new(settings.capacity),
                settings,
                dumps: Vec::new(),
                suppressed: 0,
            })),
        }
    }

    /// Record one round's snapshot.
    pub fn push(&self, snapshot: RoundSnapshot) {
        lock(&self.inner).ring.push(snapshot);
    }

    /// Snapshots currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.inner).ring.len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).ring.is_empty()
    }

    /// Bundles dumped so far, as `(trigger, path)`.
    #[must_use]
    pub fn dumps(&self) -> Vec<(DumpTrigger, PathBuf)> {
        lock(&self.inner).dumps.clone()
    }

    /// Dump the retained window as a bundle, if the trigger is eligible:
    /// each trigger kind dumps at most once per run, and at most
    /// `max_dumps` bundles are written in total. Returns the bundle
    /// directory when one was written, `None` when suppressed or empty.
    ///
    /// # Errors
    /// Propagates bundle I/O failures.
    pub fn trigger_dump(&self, trigger: DumpTrigger) -> std::io::Result<Option<PathBuf>> {
        let mut inner = lock(&self.inner);
        if inner.ring.is_empty() {
            return Ok(None);
        }
        if inner.dumps.len() >= inner.settings.max_dumps
            || inner.dumps.iter().any(|(t, _)| *t == trigger)
        {
            inner.suppressed += 1;
            return Ok(None);
        }
        let path = write_bundle(&inner.ring, &inner.settings, trigger)?;
        inner.dumps.push((trigger, path.clone()));
        Ok(Some(path))
    }
}

/// FNV-1a 64-bit checksum — dependency-free integrity check for bundle
/// files (not cryptographic; detects truncation and accidental edits).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Bundle schema identifier written into every manifest.
pub const BUNDLE_SCHEMA: &str = "mzd-postmortem/v1";

fn write_bundle(
    ring: &FlightRecorder,
    settings: &RecorderSettings,
    trigger: DumpTrigger,
) -> std::io::Result<PathBuf> {
    let snaps = ring.iter_oldest_first();
    let last_round = snaps.last().map_or(0, |s| s.round);
    let dir = settings.out_dir.join(format!(
        "postmortem-r{last_round:06}-{}",
        trigger.as_str().replace('.', "-")
    ));
    std::fs::create_dir_all(&dir)?;
    let mut rounds = String::with_capacity(snaps.len() * 256);
    for s in &snaps {
        rounds.push_str(&s.to_json_line());
        rounds.push('\n');
    }
    std::fs::write(dir.join("rounds.jsonl"), &rounds)?;
    let mut manifest = String::with_capacity(512);
    manifest.push_str("{\n  \"schema\": ");
    json::write_escaped(&mut manifest, BUNDLE_SCHEMA);
    manifest.push_str(",\n  \"trigger\": ");
    json::write_escaped(&mut manifest, trigger.as_str());
    manifest.push_str(&format!(
        ",\n  \"round\": {last_round},\n  \"captured\": {},\n  \"capacity\": {},\n  \"config\": {{",
        snaps.len(),
        ring.capacity()
    ));
    for (i, (k, v)) in settings.config_echo.iter().enumerate() {
        manifest.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json::write_escaped(&mut manifest, k);
        manifest.push_str(": ");
        json::write_escaped(&mut manifest, v);
    }
    manifest.push_str("\n  },\n  \"files\": [\n    {\"name\": \"rounds.jsonl\", \"bytes\": ");
    manifest.push_str(&rounds.len().to_string());
    manifest.push_str(&format!(
        ", \"fnv1a64\": \"{:016x}\"}}\n  ]\n}}\n",
        fnv1a64(rounds.as_bytes())
    ));
    std::fs::write(dir.join("MANIFEST.json"), manifest)?;
    Ok(dir)
}

/// A bundle read back from disk, checksum-verified.
#[derive(Debug, Clone, PartialEq)]
pub struct Bundle {
    /// Manifest schema id.
    pub schema: String,
    /// What fired the dump.
    pub trigger: String,
    /// Round of the newest retained snapshot (the trigger round).
    pub round: u64,
    /// Snapshots the manifest says were captured.
    pub captured: u64,
    /// Ring capacity at dump time.
    pub capacity: u64,
    /// Config echo: run provenance as `(key, value)` pairs, sorted.
    pub config: Vec<(String, String)>,
    /// The retained snapshots, oldest first.
    pub rounds: Vec<RoundSnapshot>,
}

impl Bundle {
    /// A config echo value by key.
    #[must_use]
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Read and validate a bundle directory: manifest schema, file
/// checksums and snapshot lines.
///
/// # Errors
/// A human-readable message for I/O failures, checksum mismatches, an
/// unknown schema or malformed snapshot lines.
pub fn read_bundle(dir: &Path) -> Result<Bundle, String> {
    let manifest_path = dir.join("MANIFEST.json");
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let doc = json::parse(&manifest_text).map_err(|e| format!("manifest is not JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    if schema != BUNDLE_SCHEMA {
        return Err(format!(
            "unsupported bundle schema `{schema}` (expected `{BUNDLE_SCHEMA}`)"
        ));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let int = |key: &str| doc.get(key).and_then(Value::as_f64).unwrap_or(0.0).max(0.0) as u64;
    let mut config: Vec<(String, String)> = doc
        .get("config")
        .and_then(Value::as_object)
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                .collect()
        })
        .unwrap_or_default();
    config.sort();
    let files = doc
        .get("files")
        .and_then(Value::as_array)
        .ok_or("manifest has no files list")?;
    let mut rounds_text = None;
    for f in files {
        let name = f.get("name").and_then(Value::as_str).unwrap_or("");
        let path = dir.join(name);
        let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {name}: {e}"))?;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let want_len = f.get("bytes").and_then(Value::as_f64).unwrap_or(-1.0) as i64;
        if want_len >= 0 && bytes.len() as i64 != want_len {
            return Err(format!(
                "{name}: {} bytes on disk, manifest says {want_len} (truncated bundle?)",
                bytes.len()
            ));
        }
        let want_sum = f.get("fnv1a64").and_then(Value::as_str).unwrap_or("");
        let got_sum = format!("{:016x}", fnv1a64(&bytes));
        if !want_sum.is_empty() && got_sum != want_sum {
            return Err(format!(
                "{name}: checksum mismatch (manifest {want_sum}, file {got_sum})"
            ));
        }
        if name == "rounds.jsonl" {
            rounds_text = Some(String::from_utf8(bytes).map_err(|_| "rounds.jsonl is not UTF-8")?);
        }
    }
    let rounds_text = rounds_text.ok_or("manifest lists no rounds.jsonl")?;
    let mut rounds = Vec::new();
    for (i, line) in rounds_text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        rounds.push(
            RoundSnapshot::parse_json_line(line)
                .ok_or_else(|| format!("rounds.jsonl line {} is malformed", i + 1))?,
        );
    }
    Ok(Bundle {
        schema,
        trigger: doc
            .get("trigger")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        round: int("round"),
        captured: int("captured"),
        capacity: int("capacity"),
        config,
        rounds,
    })
}

/// Install a process-wide panic hook that dumps `recorder`'s window
/// (trigger `panic`) before delegating to the previous hook, so a crash
/// mid-run still leaves a post-mortem bundle behind. Installs over the
/// current hook; call at most once per process.
pub fn install_panic_hook(recorder: Recorder) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // Best-effort: a failed dump must not mask the original panic.
        let _ = recorder.trigger_dump(DumpTrigger::Panic);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(round: u64) -> RoundSnapshot {
        RoundSnapshot {
            round,
            active_streams: 10,
            glitches: round % 3,
            burn_fast: 0.5 * round as f64,
            load: vec![5, 5],
            rng_positions: vec![round + 1, round + 1],
            disks: vec![DiskPhases {
                disk: 0,
                requests: 5,
                service_time: 0.8,
                late: false,
                seek_time: 0.1,
                rotational_time: 0.2,
                transfer_time: 0.5,
                stall_time: 0.0,
                fault_time: 0.0,
            }],
            ..RoundSnapshot::default()
        }
    }

    #[test]
    fn snapshot_json_round_trips() {
        let s = snap(17);
        let line = s.to_json_line();
        let back = RoundSnapshot::parse_json_line(&line).expect("parses");
        assert_eq!(back, s);
        assert!(RoundSnapshot::parse_json_line("not json").is_none());
    }

    #[test]
    fn ring_retains_newest_window() {
        let mut r = FlightRecorder::new(4);
        assert!(r.is_empty());
        for i in 0..10 {
            r.push(snap(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.pushed(), 10);
        let rounds: Vec<u64> = r.iter_oldest_first().iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![6, 7, 8, 9]);
    }

    #[test]
    fn dump_and_read_back_verifies() {
        let dir = std::env::temp_dir().join(format!("mzd-prof-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut settings = RecorderSettings::new(&dir);
        settings.capacity = 8;
        settings.config_echo = vec![
            ("disk".into(), "viking".into()),
            ("seed".into(), "7".into()),
        ];
        let rec = Recorder::new(settings);
        assert!(rec.trigger_dump(DumpTrigger::Manual).unwrap().is_none());
        for i in 0..20 {
            rec.push(snap(i));
        }
        let path = rec
            .trigger_dump(DumpTrigger::SloFastBurn)
            .unwrap()
            .expect("dumped");
        // Same trigger kind dumps once.
        assert!(rec
            .trigger_dump(DumpTrigger::SloFastBurn)
            .unwrap()
            .is_none());
        let bundle = read_bundle(&path).expect("valid bundle");
        assert_eq!(bundle.schema, BUNDLE_SCHEMA);
        assert_eq!(bundle.trigger, "slo.fast_burn");
        assert_eq!(bundle.round, 19);
        assert_eq!(bundle.rounds.len(), 8);
        assert_eq!(bundle.rounds[0].round, 12);
        assert_eq!(bundle.config_value("disk"), Some("viking"));
        // Tampering is detected.
        let rounds_path = path.join("rounds.jsonl");
        let mut text = std::fs::read_to_string(&rounds_path).unwrap();
        text.push('\n');
        std::fs::write(&rounds_path, text).unwrap();
        assert!(read_bundle(&path).unwrap_err().contains("bytes"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_dumps_caps_bundle_count() {
        let dir = std::env::temp_dir().join(format!("mzd-prof-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut settings = RecorderSettings::new(&dir);
        settings.max_dumps = 1;
        let rec = Recorder::new(settings);
        rec.push(snap(0));
        assert!(rec
            .trigger_dump(DumpTrigger::RoundOverrun)
            .unwrap()
            .is_some());
        assert!(rec
            .trigger_dump(DumpTrigger::DegradeEscalation)
            .unwrap()
            .is_none());
        assert_eq!(rec.dumps().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn trigger_names_round_trip() {
        for t in [
            DumpTrigger::SloFastBurn,
            DumpTrigger::DegradeEscalation,
            DumpTrigger::RoundOverrun,
            DumpTrigger::Panic,
            DumpTrigger::LeaseExpiryStorm,
            DumpTrigger::BudgetBreach,
            DumpTrigger::Manual,
        ] {
            assert_eq!(DumpTrigger::parse(t.as_str()), Some(t));
        }
        assert_eq!(DumpTrigger::parse("nope"), None);
    }
}
