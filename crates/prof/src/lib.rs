//! Flight recorder and phase profiler for the mzd workspace.
//!
//! The paper's guarantees are probabilistic, so a violated guarantee is
//! only auditable if the system can reconstruct *exactly* which rounds,
//! disks and phases spent the time. This crate provides the two
//! attribution surfaces the rest of the workspace records into:
//!
//! * **Flight recorder** ([`Recorder`], [`RoundSnapshot`]) — a
//!   fixed-capacity ring of full-fidelity per-round snapshots (phase
//!   decomposition per disk, load vector, cache/fault/degrade state,
//!   RNG stream positions). On an SLO fast-burn alert, a
//!   degradation-ladder escalation, a round overrun, a panic, or an
//!   explicit request, the retained window is dumped as a deterministic
//!   post-mortem bundle ([`read_bundle`]) that `mzd postmortem` renders
//!   and diffs against the analytic seek/rotation/transfer
//!   decomposition.
//! * **Phase profiler** ([`phase`], [`collapsed`]) — scoped guards that
//!   aggregate self/child wall time per phase into collapsed-stack
//!   lines, exportable via `serve --profile-out` and rendered as an
//!   inline-SVG flame chart ([`render_flame_svg`]) in `mzd report`.
//!
//! Like its siblings, the crate is dependency-free beyond the
//! workspace's own `mzd-telemetry` (for its JSON reader/writer).
//! Snapshots carry only logical time — round ids and RNG stream
//! positions, never wall-clock — so bundles from a seeded run are
//! byte-identical across reruns and `--jobs` widths. Profiler output is
//! wall-clock by nature and is *not* part of that determinism contract.

#![warn(missing_docs)]

mod flame;
mod fleet;
mod profile;
mod recorder;

pub use flame::render_flame_svg;
pub use fleet::{
    read_fleet_bundle, write_fleet_manifest, FleetBundle, FleetNodeEntry, FLEET_SCHEMA,
};
pub use profile::{collapsed, phase, profiling_enabled, reset_profile, set_profiling, PhaseGuard};
pub use recorder::{
    fnv1a64, install_panic_hook, read_bundle, Bundle, DiskPhases, DumpTrigger, FaultTotals,
    FlightRecorder, Recorder, RecorderSettings, RoundSnapshot, BUNDLE_SCHEMA,
};
