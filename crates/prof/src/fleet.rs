//! Correlated fleet postmortems: one manifest tying together the
//! per-node flight-recorder bundles dumped for a single fleet-level
//! trigger.
//!
//! A multi-node outage is only auditable if every node's retained
//! window around the *same logical round* is captured together: the
//! failed node's last recorded rounds, the surviving nodes absorbing
//! the migrated load, and the dispatcher's view of when the lease
//! lapsed. [`write_fleet_manifest`] records which node dumped what
//! (keyed by logical round, never wall-clock), and [`read_fleet_bundle`]
//! reads it all back with the same tamper detection [`read_bundle`]
//! applies per node: the fleet manifest carries an FNV-1a-64 checksum
//! of each node manifest, and each node manifest checksums its own
//! snapshot file — a chain from the fleet root to every disk-round.

use crate::recorder::{fnv1a64, read_bundle, Bundle, DumpTrigger};
use mzd_telemetry::json::{self, Value};
use std::path::{Path, PathBuf};

/// Fleet manifest schema identifier.
pub const FLEET_SCHEMA: &str = "mzd-fleet-postmortem/v1";

/// One node's entry in a fleet bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetNodeEntry {
    /// The node's fleet-wide id.
    pub node: u32,
    /// The node's bundle directory, relative to the fleet directory;
    /// `None` when that node's recorder had nothing to dump (e.g. a
    /// node that never ran a round before the trigger).
    pub bundle: Option<String>,
}

/// A fleet bundle read back from disk, fully checksum-verified.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBundle {
    /// Manifest schema id.
    pub schema: String,
    /// The fleet-level trigger (manifest spelling of [`DumpTrigger`]).
    pub trigger: String,
    /// The logical fleet round the trigger fired on.
    pub round: u64,
    /// Per-node entries in node-id order.
    pub entries: Vec<FleetNodeEntry>,
    /// The verified per-node bundles, parallel to `entries` (`None`
    /// where a node had no dump).
    pub nodes: Vec<Option<Bundle>>,
}

/// Write `dir/MANIFEST.json` correlating the per-node bundle
/// directories dumped for one fleet trigger at logical `round`.
///
/// `nodes` is `(node id, bundle directory)` in node-id order; bundle
/// paths are stored relative to `dir` (each node recorder's `out_dir`
/// is a subdirectory of the fleet directory by construction). Output is
/// deterministic: no timestamps, fixed key order, node order preserved.
///
/// # Errors
/// I/O errors creating the directory, reading a node manifest for its
/// checksum, or writing the fleet manifest.
pub fn write_fleet_manifest(
    dir: &Path,
    trigger: DumpTrigger,
    round: u64,
    nodes: &[(u32, Option<PathBuf>)],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = String::with_capacity(512);
    manifest.push_str("{\n  \"schema\": ");
    json::write_escaped(&mut manifest, FLEET_SCHEMA);
    manifest.push_str(",\n  \"trigger\": ");
    json::write_escaped(&mut manifest, trigger.as_str());
    manifest.push_str(&format!(",\n  \"round\": {round},\n  \"nodes\": ["));
    for (i, (node, bundle)) in nodes.iter().enumerate() {
        manifest.push_str(if i == 0 { "\n    " } else { ",\n    " });
        manifest.push_str(&format!("{{\"node\": {node}, \"bundle\": "));
        match bundle {
            None => manifest.push_str("null}"),
            Some(path) => {
                let rel = path.strip_prefix(dir).unwrap_or(path);
                let rel = rel.to_string_lossy().replace('\\', "/");
                json::write_escaped(&mut manifest, &rel);
                let node_manifest = std::fs::read(path.join("MANIFEST.json"))?;
                manifest.push_str(&format!(
                    ", \"manifest_fnv1a64\": \"{:016x}\"}}",
                    fnv1a64(&node_manifest)
                ));
            }
        }
    }
    manifest.push_str("\n  ]\n}\n");
    let path = dir.join("MANIFEST.json");
    std::fs::write(&path, manifest)?;
    Ok(path)
}

/// Read and verify a fleet bundle directory: the fleet manifest's
/// schema, each node manifest's checksum against the fleet record, and
/// (via [`read_bundle`]) each node bundle's own file checksums and
/// snapshot lines.
///
/// # Errors
/// A human-readable message naming the first failing layer — the fleet
/// manifest, a node manifest checksum, or a node bundle's contents.
pub fn read_fleet_bundle(dir: &Path) -> Result<FleetBundle, String> {
    let manifest_path = dir.join("MANIFEST.json");
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("fleet manifest is not JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    if schema != FLEET_SCHEMA {
        return Err(format!(
            "unsupported fleet schema `{schema}` (expected `{FLEET_SCHEMA}`)"
        ));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let round = doc
        .get("round")
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
        .max(0.0) as u64;
    let listed = doc
        .get("nodes")
        .and_then(Value::as_array)
        .ok_or("fleet manifest has no nodes list")?;
    let mut entries = Vec::with_capacity(listed.len());
    let mut nodes = Vec::with_capacity(listed.len());
    for item in listed {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let node = item
            .get("node")
            .and_then(Value::as_f64)
            .ok_or("node entry without an id")?
            .max(0.0) as u32;
        let bundle = item
            .get("bundle")
            .and_then(Value::as_str)
            .map(ToString::to_string);
        match &bundle {
            None => nodes.push(None),
            Some(rel) => {
                let bundle_dir = dir.join(rel);
                let want = item
                    .get("manifest_fnv1a64")
                    .and_then(Value::as_str)
                    .unwrap_or("");
                let bytes = std::fs::read(bundle_dir.join("MANIFEST.json"))
                    .map_err(|e| format!("node {node}: cannot read {rel}/MANIFEST.json: {e}"))?;
                let got = format!("{:016x}", fnv1a64(&bytes));
                if !want.is_empty() && got != want {
                    return Err(format!(
                        "node {node}: manifest checksum mismatch (fleet says {want}, file {got})"
                    ));
                }
                let parsed = read_bundle(&bundle_dir).map_err(|e| format!("node {node}: {e}"))?;
                nodes.push(Some(parsed));
            }
        }
        entries.push(FleetNodeEntry { node, bundle });
    }
    Ok(FleetBundle {
        schema,
        trigger: doc
            .get("trigger")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        round,
        entries,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RecorderSettings, RoundSnapshot};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mzd_fleet_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn node_dump(base: &Path, node: u32, rounds: u64) -> PathBuf {
        let settings = RecorderSettings {
            capacity: 8,
            out_dir: base.join(format!("node-{node}")),
            max_dumps: 4,
            config_echo: vec![("node".into(), node.to_string())],
        };
        let rec = Recorder::new(settings);
        for r in 0..rounds {
            rec.push(RoundSnapshot {
                round: r,
                ..RoundSnapshot::default()
            });
        }
        rec.trigger_dump(DumpTrigger::LeaseExpiryStorm)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn fleet_manifest_round_trips() {
        let dir = temp_dir("roundtrip");
        let b0 = node_dump(&dir, 0, 5);
        let b2 = node_dump(&dir, 2, 5);
        write_fleet_manifest(
            &dir,
            DumpTrigger::LeaseExpiryStorm,
            4,
            &[(0, Some(b0)), (1, None), (2, Some(b2))],
        )
        .unwrap();
        let fleet = read_fleet_bundle(&dir).unwrap();
        assert_eq!(fleet.schema, FLEET_SCHEMA);
        assert_eq!(fleet.trigger, "lease.expiry_storm");
        assert_eq!(fleet.round, 4);
        assert_eq!(fleet.entries.len(), 3);
        assert!(fleet.nodes[0].is_some());
        assert!(fleet.nodes[1].is_none());
        let b = fleet.nodes[2].as_ref().unwrap();
        assert_eq!(b.config_value("node"), Some("2"));
        assert_eq!(b.rounds.len(), 5);
        // Relative paths: the fleet directory is relocatable as a unit.
        assert!(fleet.entries[0]
            .bundle
            .as_deref()
            .unwrap()
            .starts_with("node-0/"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_node_manifest_is_rejected() {
        let dir = temp_dir("tamper");
        let b0 = node_dump(&dir, 0, 3);
        write_fleet_manifest(&dir, DumpTrigger::BudgetBreach, 2, &[(0, Some(b0.clone()))]).unwrap();
        let mut text = std::fs::read_to_string(b0.join("MANIFEST.json")).unwrap();
        text.push('\n');
        std::fs::write(b0.join("MANIFEST.json"), text).unwrap();
        let err = read_fleet_bundle(&dir).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let dir = temp_dir("schema");
        std::fs::write(
            dir.join("MANIFEST.json"),
            "{\"schema\": \"something-else\", \"nodes\": []}",
        )
        .unwrap();
        let err = read_fleet_bundle(&dir).unwrap_err();
        assert!(err.contains("unsupported fleet schema"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
