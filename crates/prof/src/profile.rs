//! Phase profiler: scoped RAII guards that attribute wall-clock time to
//! a stack of named phases, aggregated process-wide into collapsed-stack
//! lines (`a;b;c <self-nanoseconds>`) — the format `flamegraph.pl` and
//! inferno consume directly.
//!
//! Complements the [`mzd_telemetry::span!`] histograms: a span records
//! one phase's latency distribution; the profiler records *where inside
//! the round the time went*, with parent/child attribution (a parent's
//! self time excludes its children). Disabled by default; a disabled
//! [`phase`] call costs one relaxed atomic load and returns an inert
//! guard, so instrumentation can stay in the hot loop permanently (see
//! the `prof_overhead` bench in `mzd-bench`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Accumulated `(self nanoseconds, enters)` per `;`-joined stack.
static TOTALS: Mutex<Option<BTreeMap<String, (u64, u64)>>> = Mutex::new(None);

struct Frame {
    name: &'static str,
    start: Instant,
    /// Nanoseconds attributed to already-finished children.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Whether the profiler is collecting.
#[must_use]
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off. Turning it off leaves accumulated totals
/// readable via [`collapsed`]; guards opened while enabled still finish
/// correctly after a disable.
pub fn set_profiling(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Drop all accumulated totals (the per-thread stacks of live guards are
/// untouched).
pub fn reset_profile() {
    *TOTALS.lock().expect("profile totals lock") = None;
}

/// Enter a named phase. The returned guard attributes the scope's
/// elapsed time to the current thread's phase stack when dropped.
/// Inert (one atomic load) while profiling is disabled.
#[must_use]
pub fn phase(name: &'static str) -> PhaseGuard {
    if !profiling_enabled() {
        return PhaseGuard { active: false };
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            name,
            start: Instant::now(),
            child_ns: 0,
        });
    });
    PhaseGuard { active: true }
}

/// RAII guard returned by [`phase`].
#[derive(Debug)]
pub struct PhaseGuard {
    active: bool,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(frame) = stack.pop() else {
                return;
            };
            let elapsed = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            let mut key = String::with_capacity(32);
            for f in stack.iter() {
                key.push_str(f.name);
                key.push(';');
            }
            key.push_str(frame.name);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(elapsed);
            }
            let mut totals = TOTALS.lock().expect("profile totals lock");
            let entry = totals
                .get_or_insert_with(BTreeMap::new)
                .entry(key)
                .or_insert((0, 0));
            entry.0 = entry.0.saturating_add(self_ns);
            entry.1 += 1;
        });
    }
}

/// The accumulated profile in collapsed-stack form: one
/// `stack;path;here <self-ns>` line per distinct stack, sorted by stack
/// so equal profiles render identically. Empty string when nothing was
/// collected.
#[must_use]
pub fn collapsed() -> String {
    let totals = TOTALS.lock().expect("profile totals lock");
    let Some(totals) = totals.as_ref() else {
        return String::new();
    };
    let mut out = String::with_capacity(totals.len() * 48);
    for (stack, (self_ns, _)) in totals {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&self_ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The profiler state is process-global, so all profiler tests run
    /// inside this one test body.
    #[test]
    fn phases_nest_and_collapse() {
        reset_profile();
        assert!(!profiling_enabled());
        {
            // Disabled: inert guard, nothing collected.
            let _g = phase("ignored");
        }
        assert_eq!(collapsed(), "");

        set_profiling(true);
        {
            let _round = phase("round");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _sweep = phase("sweep");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
            {
                let _slo = phase("slo");
            }
        }
        set_profiling(false);
        let text = collapsed();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        // Sorted stacks: round, round;slo, round;sweep.
        assert!(lines[0].starts_with("round "), "{text}");
        assert!(lines[1].starts_with("round;slo "), "{text}");
        assert!(lines[2].starts_with("round;sweep "), "{text}");
        let ns = |line: &str| line.rsplit(' ').next().unwrap().parse::<u64>().unwrap();
        // Self time excludes children: the sweep slept longer than the
        // round body's own 2 ms.
        assert!(ns(lines[2]) >= 3_000_000, "{text}");
        assert!(ns(lines[0]) >= 1_000_000, "{text}");
        assert!(ns(lines[0]) < ns(lines[2]) + ns(lines[1]) + 60_000_000);

        reset_profile();
        assert_eq!(collapsed(), "");
    }
}
