//! Glitch-budget burn-rate alerting.
//!
//! The admission controller promises a per-stream-round glitch budget
//! `p` (derived from the quality target: `δ` for a round-overrun
//! target, `g/M` for the per-stream glitch-rate target). The *burn
//! rate* is the observed glitch rate divided by that budget: burn 1.0
//! means glitches arrive exactly as fast as the guarantee tolerates,
//! burn 10 means the budget is being consumed ten times too fast.
//!
//! Following the SRE multi-window pattern, an alert raises only when
//! **both** a fast window (reacts quickly, noisy) and a slow window
//! (confirms the trend) burn above the raise factor; it clears only
//! after a full hysteresis period of the fast window staying below the
//! clear factor. Raise→clear therefore always takes at least
//! `hysteresis` rounds: alerts cannot flap by construction.

use crate::SloError;
use std::collections::VecDeque;

/// Configuration of a [`BurnRateEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnConfig {
    /// Tolerated glitches per stream-round — the admitted budget `p`.
    pub budget: f64,
    /// Fast window, rounds. Must fill completely before any alert can
    /// raise (no alarms off a handful of rounds).
    pub fast_window: usize,
    /// Slow confirmation window, rounds.
    pub slow_window: usize,
    /// Long reporting window, rounds (gauge only — never alerts).
    pub long_window: usize,
    /// Raise when fast *and* slow burn reach this multiple of budget.
    pub raise_factor: f64,
    /// Clear-eligible when the fast burn is below this multiple.
    pub clear_factor: f64,
    /// Consecutive clear-eligible rounds required before the alert
    /// actually clears.
    pub hysteresis: u64,
}

impl BurnConfig {
    /// The default windows and factors for a given glitch budget:
    /// 64/512/4096-round windows, raise at 6× budget, clear below 3×,
    /// 64 rounds of hysteresis.
    #[must_use]
    pub fn for_budget(budget: f64) -> Self {
        Self {
            budget,
            fast_window: 64,
            slow_window: 512,
            long_window: 4096,
            raise_factor: 6.0,
            clear_factor: 3.0,
            hysteresis: 64,
        }
    }

    fn validate(&self) -> Result<(), SloError> {
        if !(self.budget > 0.0) || !self.budget.is_finite() {
            return Err(SloError::Invalid(format!(
                "burn budget must be positive, got {}",
                self.budget
            )));
        }
        if self.fast_window == 0 || self.slow_window < self.fast_window {
            return Err(SloError::Invalid(format!(
                "windows must satisfy 0 < fast ({}) <= slow ({})",
                self.fast_window, self.slow_window
            )));
        }
        if !(self.raise_factor > 0.0) || !(self.clear_factor > 0.0) {
            return Err(SloError::Invalid(
                "raise and clear factors must be positive".into(),
            ));
        }
        if self.clear_factor > self.raise_factor {
            return Err(SloError::Invalid(format!(
                "clear factor {} must not exceed raise factor {}",
                self.clear_factor, self.raise_factor
            )));
        }
        Ok(())
    }
}

/// A sliding window of per-round `(stream_rounds, glitches)` pairs with
/// running sums.
#[derive(Debug)]
struct Window {
    ring: VecDeque<(u64, u64)>,
    cap: usize,
    stream_rounds: u64,
    glitches: u64,
}

impl Window {
    fn new(cap: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(cap + 1),
            cap,
            stream_rounds: 0,
            glitches: 0,
        }
    }

    fn push(&mut self, stream_rounds: u64, glitches: u64) {
        self.ring.push_back((stream_rounds, glitches));
        self.stream_rounds += stream_rounds;
        self.glitches += glitches;
        if self.ring.len() > self.cap {
            let (sr, g) = self.ring.pop_front().expect("len > cap >= 1");
            self.stream_rounds -= sr;
            self.glitches -= g;
        }
    }

    fn full(&self) -> bool {
        self.ring.len() >= self.cap
    }

    /// Observed glitch rate over the window divided by the budget; 0
    /// while the window holds no stream-rounds at all.
    fn burn(&self, budget: f64) -> f64 {
        if self.stream_rounds == 0 {
            return 0.0;
        }
        (self.glitches as f64 / self.stream_rounds as f64) / budget
    }
}

/// An alert state change reported by [`BurnRateEngine::observe_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertTransition {
    /// The fast-burn alert went active this round.
    Raised,
    /// The alert cleared after a full hysteresis period of quiet.
    Cleared,
}

/// Multi-window burn-rate tracker with hysteresis.
#[derive(Debug)]
pub struct BurnRateEngine {
    cfg: BurnConfig,
    fast: Window,
    slow: Window,
    long: Window,
    alert_active: bool,
    quiet_rounds: u64,
    rounds_observed: u64,
    alerts_raised: u64,
}

impl BurnRateEngine {
    /// Build an engine.
    ///
    /// # Errors
    /// [`SloError::Invalid`] for a non-positive budget, inverted
    /// windows, or clear factor above raise factor.
    pub fn new(cfg: BurnConfig) -> Result<Self, SloError> {
        cfg.validate()?;
        Ok(Self {
            fast: Window::new(cfg.fast_window),
            slow: Window::new(cfg.slow_window),
            long: Window::new(cfg.long_window),
            cfg,
            alert_active: false,
            quiet_rounds: 0,
            rounds_observed: 0,
            alerts_raised: 0,
        })
    }

    /// Feed one round: how many stream-rounds were served and how many
    /// of them glitched. Returns an alert transition when the state
    /// changed this round.
    pub fn observe_round(&mut self, stream_rounds: u64, glitches: u64) -> Option<AlertTransition> {
        self.fast.push(stream_rounds, glitches);
        self.slow.push(stream_rounds, glitches);
        self.long.push(stream_rounds, glitches);
        self.rounds_observed += 1;
        let fast = self.fast.burn(self.cfg.budget);
        let slow = self.slow.burn(self.cfg.budget);
        if self.alert_active {
            if fast < self.cfg.clear_factor {
                self.quiet_rounds += 1;
                if self.quiet_rounds >= self.cfg.hysteresis {
                    self.alert_active = false;
                    self.quiet_rounds = 0;
                    return Some(AlertTransition::Cleared);
                }
            } else {
                self.quiet_rounds = 0;
            }
        } else if self.fast.full() && fast >= self.cfg.raise_factor && slow >= self.cfg.raise_factor
        {
            self.alert_active = true;
            self.quiet_rounds = 0;
            self.alerts_raised += 1;
            return Some(AlertTransition::Raised);
        }
        None
    }

    /// Burn rate over the fast window.
    #[must_use]
    pub fn burn_fast(&self) -> f64 {
        self.fast.burn(self.cfg.budget)
    }

    /// Burn rate over the slow window.
    #[must_use]
    pub fn burn_slow(&self) -> f64 {
        self.slow.burn(self.cfg.budget)
    }

    /// Burn rate over the long reporting window.
    #[must_use]
    pub fn burn_long(&self) -> f64 {
        self.long.burn(self.cfg.budget)
    }

    /// Whether a fast-burn alert is currently active.
    #[must_use]
    pub fn alert_active(&self) -> bool {
        self.alert_active
    }

    /// Rounds observed so far.
    #[must_use]
    pub fn rounds_observed(&self) -> u64 {
        self.rounds_observed
    }

    /// Alerts raised so far.
    #[must_use]
    pub fn alerts_raised(&self) -> u64 {
        self.alerts_raised
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &BurnConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(budget: f64) -> BurnRateEngine {
        BurnRateEngine::new(BurnConfig {
            fast_window: 8,
            slow_window: 32,
            long_window: 64,
            hysteresis: 8,
            ..BurnConfig::for_budget(budget)
        })
        .unwrap()
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(BurnRateEngine::new(BurnConfig::for_budget(0.0)).is_err());
        assert!(BurnRateEngine::new(BurnConfig::for_budget(f64::NAN)).is_err());
        let mut c = BurnConfig::for_budget(0.01);
        c.slow_window = 1;
        assert!(BurnRateEngine::new(c).is_err());
        let mut c = BurnConfig::for_budget(0.01);
        c.clear_factor = c.raise_factor + 1.0;
        assert!(BurnRateEngine::new(c).is_err());
    }

    #[test]
    fn zero_glitches_never_alert() {
        let mut e = engine(0.01);
        for _ in 0..1000 {
            assert_eq!(e.observe_round(30, 0), None);
        }
        assert!(!e.alert_active());
        assert_eq!(e.burn_fast(), 0.0);
    }

    #[test]
    fn alert_needs_a_full_fast_window() {
        let mut e = engine(0.01);
        // Seven catastrophic rounds: window (8) not yet full, no alert.
        for _ in 0..7 {
            assert_eq!(e.observe_round(10, 10), None);
        }
        // Eighth fills the window: both burns at 100x.
        assert_eq!(e.observe_round(10, 10), Some(AlertTransition::Raised));
        assert!(e.alert_active());
        assert!(e.burn_fast() > 50.0);
    }

    #[test]
    fn clears_only_after_hysteresis_and_reports_counts() {
        let mut e = engine(0.01);
        for _ in 0..8 {
            e.observe_round(10, 10);
        }
        assert!(e.alert_active());
        assert_eq!(e.alerts_raised(), 1);
        // Quiet rounds: the fast window must first drain below the
        // clear factor (7 rounds — while any bad round remains in the
        // 8-round window the burn stays over 3x), and only then does
        // the hysteresis counter run for 8 more rounds.
        for i in 0..14 {
            assert_eq!(e.observe_round(10, 0), None, "round {i}");
            assert!(e.alert_active());
        }
        assert_eq!(e.observe_round(10, 0), Some(AlertTransition::Cleared));
        assert!(!e.alert_active());
        assert_eq!(e.rounds_observed(), 23);
    }

    #[test]
    fn noise_during_alert_resets_the_quiet_counter() {
        let mut e = engine(0.01);
        for _ in 0..8 {
            e.observe_round(10, 10);
        }
        for _ in 0..7 {
            assert_eq!(e.observe_round(10, 0), None);
        }
        // A loud round (fast burn back over clear factor) resets quiet.
        assert_eq!(e.observe_round(10, 10), None);
        for _ in 0..7 {
            assert_eq!(e.observe_round(10, 0), None);
        }
        assert!(e.alert_active(), "quiet counter must have reset");
    }

    #[test]
    fn slow_window_vetoes_a_brief_spike() {
        // One fast window of disaster after a long quiet history: the
        // slow window dilutes the burn below the raise factor.
        let mut e = engine(0.01);
        for _ in 0..32 {
            e.observe_round(10, 0);
        }
        // 8 bad rounds: fast burn 100x, slow burn = 80/320/0.01 = 25x.
        // With raise factor 6 both are over -- use a harsher budget to
        // demonstrate the veto: budget such that slow stays under.
        let mut e2 = BurnRateEngine::new(BurnConfig {
            fast_window: 8,
            slow_window: 32,
            long_window: 64,
            raise_factor: 30.0,
            clear_factor: 3.0,
            hysteresis: 8,
            budget: 0.01,
        })
        .unwrap();
        for _ in 0..32 {
            e2.observe_round(10, 0);
        }
        for _ in 0..8 {
            assert_eq!(e2.observe_round(10, 10), None);
        }
        assert!(!e2.alert_active(), "slow window must veto");
        assert!(e2.burn_fast() >= 30.0);
        assert!(e2.burn_slow() < 30.0);
    }

    #[test]
    fn idle_rounds_do_not_divide_by_zero() {
        let mut e = engine(0.01);
        for _ in 0..100 {
            assert_eq!(e.observe_round(0, 0), None);
        }
        assert_eq!(e.burn_fast(), 0.0);
        assert_eq!(e.burn_long(), 0.0);
    }
}
