//! SLO machinery for the mzd server: is the analytic guarantee still
//! holding *right now*?
//!
//! The paper's admission control promises a glitch budget (§3.1's
//! `p_late ≤ δ`, §3.3's per-stream `ε`); PR 1's telemetry records what
//! actually happened. This crate closes the loop with three always-on
//! interpreters of those raw observations:
//!
//! * [`BurnRateEngine`] — SRE-style multi-window burn-rate alerting on
//!   the admitted glitch budget: the observed per-stream-round glitch
//!   rate divided by the budget, over fast (64-round) and slow
//!   (512-round) sliding windows, with hysteresis so alerts cannot
//!   flap. The server freezes cache-aware over-admission while a
//!   fast-burn alert is active.
//! * [`ConformanceChecker`] — online model-conformance monitoring via
//!   the probability integral transform: each observed round service
//!   time is pushed through the analytic predicted CDF (`mzd-core`'s
//!   exact Gil–Pelaez inversion); if the model is right the transformed
//!   values are uniform on `[0, 1]`. The checker keeps a binned PIT
//!   histogram, a KS-style max deviation, and raises a *drift* signal
//!   on one-sided upper-tail exceedance — the direction that actually
//!   voids the guarantee (the model is deliberately conservative below
//!   the mean, so two-sided uniformity testing would false-alarm).
//! * [`Tracer`] — per-stream causal spans (admission → queueing →
//!   cache lookup / delayed-hit coalescing → batch / SCAN sweep →
//!   transfer → delivery) exportable as Chrome trace-event JSON,
//!   loadable in Perfetto. Timestamps are *logical* (round index ×
//!   round length): the rest of the workspace deliberately records no
//!   wall-clock time so seeded replays stay byte-identical.
//!
//! [`report::render_html`] turns a run's metrics/events JSONL into a
//! self-contained HTML page with inline-SVG sparklines — no external
//! assets, viewable offline.
//!
//! Like `mzd-telemetry` and `mzd-cache`, this crate depends on nothing
//! outside the workspace (only the telemetry crate, for the JSON
//! writer/parser and the span-context type).

#![warn(missing_docs)]

pub mod burn;
pub mod conformance;
pub mod report;
pub mod trace;

pub use burn::{AlertTransition, BurnConfig, BurnRateEngine};
pub use conformance::{ConformanceChecker, ConformanceConfig, DriftTransition};
pub use trace::{render_chrome_json, TraceEvent, Tracer};

/// Errors from SLO configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum SloError {
    /// A configuration parameter was invalid.
    Invalid(String),
}

impl std::fmt::Display for SloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SloError::Invalid(msg) => write!(f, "invalid SLO parameters: {msg}"),
        }
    }
}

impl std::error::Error for SloError {}

/// Conservative lower confidence bound on a rate measured as
/// `successes` out of `trials`: the Wilson score interval's lower
/// endpoint at ~95% (z = 2). Returns 0 for empty samples.
///
/// Shared by the drift detector (tail-exceedance rate must *provably*
/// exceed its tolerance before an alarm) — the same
/// evidence-before-action posture as the cache-aware admission bound.
#[must_use]
pub fn wilson_lower_bound(successes: u64, trials: u64) -> f64 {
    if trials == 0 || successes == 0 {
        return 0.0;
    }
    let n = trials as f64;
    let p = (successes.min(trials)) as f64 / n;
    let z2 = 4.0; // z = 2 ≈ 95.45% two-sided
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let margin = (z2 * (p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt();
    ((center - margin) / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_bound_edges() {
        assert_eq!(wilson_lower_bound(0, 0), 0.0);
        assert_eq!(wilson_lower_bound(0, 50), 0.0);
        let all = wilson_lower_bound(50, 50);
        assert!(all > 0.8 && all < 1.0, "all-hits bound {all}");
        // Monotone in evidence.
        assert!(wilson_lower_bound(500, 500) > all);
        // Below the point estimate.
        assert!(wilson_lower_bound(10, 100) < 0.1);
    }
}
