//! Causal trace collection and Chrome trace-event export.
//!
//! A [`Tracer`] accumulates complete spans (`ph: "X"` duration events)
//! and renders them as Chrome trace-event JSON — the format Perfetto
//! and `chrome://tracing` load directly. Span identity and causality
//! use [`mzd_telemetry::SpanContext`]: every span carries its trace id,
//! its own span id and its parent span id in `args`, so per-stream
//! causal chains (admission → queue wait → cache lookup → disk fetch →
//! delivery) survive the export.
//!
//! Timestamps are **logical**: the workspace deliberately records no
//! wall-clock time (seeded replays must be byte-identical), so callers
//! supply microseconds derived from `round index × round length`.

use mzd_telemetry::json::{write_escaped, write_f64};
use mzd_telemetry::SpanContext;

/// One complete span (a Chrome `ph: "X"` duration event).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (e.g. `stream.round`, `disk.sweep`).
    pub name: String,
    /// Category, used by trace viewers for filtering.
    pub cat: &'static str,
    /// Process lane (1 = streams, 2 = disks by convention).
    pub pid: u32,
    /// Thread lane (stream id or disk index).
    pub tid: u64,
    /// Start, microseconds of logical time.
    pub ts_us: u64,
    /// Duration, microseconds (at least 1 so viewers render it).
    pub dur_us: u64,
    /// Causal identity: trace, span and parent ids.
    pub ctx: SpanContext,
    /// Extra numeric arguments rendered into `args`.
    pub args: Vec<(&'static str, u64)>,
}

/// Collects spans and renders Chrome trace-event JSON.
///
/// Bounded: beyond `capacity` spans new records are counted as dropped
/// instead of stored, so a long run cannot exhaust memory.
#[derive(Debug)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    next_span: u64,
    capacity: usize,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer holding up to one million spans.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(1 << 20)
    }

    /// A tracer with an explicit span capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            next_span: 1,
            capacity,
            dropped: 0,
        }
    }

    /// Rebase span-id allocation to start at `base + 1`.
    ///
    /// A fleet runs one tracer per node plus one at the dispatcher; when
    /// their spans are stitched into a single trace, ids allocated from
    /// the default counter would collide across tracers. Each node's
    /// tracer is rebased into a disjoint range (node `i` at
    /// `(i + 1) << 40` by cluster convention, the fleet tracer at 0), so
    /// a merged trace keeps every parent/span edge unambiguous.
    ///
    /// Call before any span is allocated; ids already handed out are not
    /// rewritten.
    pub fn set_span_base(&mut self, base: u64) {
        self.next_span = self.next_span.max(base + 1);
    }

    fn alloc_span_id(&mut self) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    /// Open a new root context for `trace` (e.g. a stream id).
    pub fn root(&mut self, trace: u64) -> SpanContext {
        let span = self.alloc_span_id();
        SpanContext::root(trace, span)
    }

    /// Derive a child context under `parent`.
    pub fn child(&mut self, parent: &SpanContext) -> SpanContext {
        let span = self.alloc_span_id();
        parent.child(span)
    }

    /// Record one complete span. `dur_us` is clamped up to 1 so zero-
    /// length spans stay visible in viewers.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        ctx: SpanContext,
        args: &[(&'static str, u64)],
    ) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            pid,
            tid,
            ts_us,
            dur_us: dur_us.max(1),
            ctx,
            args: args.to_vec(),
        });
    }

    /// Spans recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no span has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Spans discarded after the capacity was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorded spans, in recording order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Render the Chrome trace-event JSON object
    /// (`{"traceEvents": [...], ...}`).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        render_chrome_json(&self.events, self.dropped)
    }
}

/// Render an arbitrary span collection as one Chrome trace-event JSON
/// object — the shared exporter behind [`Tracer::to_chrome_json`], and
/// what a fleet uses to stitch several tracers' events (dispatcher +
/// every node) into a single trace file. Events render in slice order;
/// callers control that order for byte-stable output.
#[must_use]
pub fn render_chrome_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_escaped(&mut out, &e.name);
        out.push_str(",\"cat\":");
        write_escaped(&mut out, e.cat);
        out.push_str(",\"ph\":\"X\",\"ts\":");
        out.push_str(&e.ts_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&e.dur_us.to_string());
        out.push_str(",\"pid\":");
        out.push_str(&e.pid.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"args\":{\"trace\":");
        out.push_str(&e.ctx.trace.to_string());
        out.push_str(",\"span\":");
        out.push_str(&e.ctx.span.to_string());
        if let Some(parent) = e.ctx.parent {
            out.push_str(",\"parent\":");
            out.push_str(&parent.to_string());
        }
        for &(k, v) in &e.args {
            out.push(',');
            write_escaped(&mut out, k);
            out.push(':');
            // u64 args are written through the f64 path only when
            // needed; integers render exactly.
            if v <= (1u64 << 53) {
                out.push_str(&v.to_string());
            } else {
                write_f64(&mut out, v as f64);
            }
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":");
    out.push_str(&dropped.to_string());
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mzd_telemetry::json;

    #[test]
    fn span_ids_are_unique_and_causal() {
        let mut t = Tracer::new();
        let root = t.root(7);
        let child = t.child(&root);
        let grandchild = t.child(&child);
        assert_eq!(root.trace, 7);
        assert_eq!(child.trace, 7);
        assert_eq!(child.parent, Some(root.span));
        assert_eq!(grandchild.parent, Some(child.span));
        assert_ne!(root.span, child.span);
        assert_ne!(child.span, grandchild.span);
    }

    #[test]
    fn chrome_json_parses_and_carries_causality() {
        let mut t = Tracer::new();
        let root = t.root(42);
        t.record(
            "stream.round",
            "stream",
            1,
            42,
            1_000_000,
            800_000,
            root,
            &[("round", 1)],
        );
        let child = t.child(&root);
        t.record("disk.fetch", "disk", 1, 42, 1_000_000, 750_000, child, &[]);
        let parsed = json::parse(&t.to_chrome_json()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("pid").unwrap().as_f64().is_some());
            assert!(e.get("tid").unwrap().as_f64().is_some());
            assert_eq!(
                e.get("args").unwrap().get("trace").unwrap().as_f64(),
                Some(42.0)
            );
        }
        let fetch = &events[1];
        assert_eq!(
            fetch.get("args").unwrap().get("parent").unwrap().as_f64(),
            Some(root.span as f64)
        );
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5 {
            let ctx = t.root(i);
            t.record("s", "c", 1, i, 0, 1, ctx, &[]);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let parsed = json::parse(&t.to_chrome_json()).unwrap();
        assert_eq!(
            parsed
                .get("otherData")
                .unwrap()
                .get("dropped")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn span_base_partitions_id_ranges() {
        let mut fleet = Tracer::new();
        let mut node0 = Tracer::new();
        let mut node2 = Tracer::new();
        node0.set_span_base(1u64 << 40);
        node2.set_span_base(3u64 << 40);
        let root = fleet.root(9);
        let a = node0.child(&root);
        let b = node2.child(&root);
        assert_eq!(root.span, 1);
        assert_eq!(a.span, (1u64 << 40) + 1);
        assert_eq!(b.span, (3u64 << 40) + 1);
        assert_eq!(a.parent, Some(root.span));
        assert_eq!(b.parent, Some(root.span));
        // Rebasing never moves the counter backwards.
        node2.set_span_base(0);
        assert_eq!(node2.child(&root).span, (3u64 << 40) + 2);
    }

    #[test]
    fn merged_events_render_as_one_trace() {
        let mut fleet = Tracer::new();
        let mut node = Tracer::new();
        node.set_span_base(1u64 << 40);
        let root = fleet.root(5);
        fleet.record("fleet.submit", "cluster", 0, 5, 0, 1, root, &[]);
        let admit = node.child(&root);
        node.record("admit", "admission", 1, 5, 10, 1, admit, &[]);
        let mut merged: Vec<TraceEvent> = fleet.events().to_vec();
        merged.extend_from_slice(node.events());
        let text = render_chrome_json(&merged, fleet.dropped() + node.dropped());
        let parsed = json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        // Both spans carry the same trace id and a connected parent edge.
        for e in events {
            assert_eq!(
                e.get("args").unwrap().get("trace").unwrap().as_f64(),
                Some(5.0)
            );
        }
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("parent")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn zero_duration_clamped_to_one_microsecond() {
        let mut t = Tracer::new();
        let ctx = t.root(1);
        t.record("hit", "cache", 1, 1, 5, 0, ctx, &[]);
        assert_eq!(t.events()[0].dur_us, 1);
    }
}
