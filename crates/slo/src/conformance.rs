//! Online model-conformance checking via the probability integral
//! transform (PIT).
//!
//! If the §3 analytic model is right, then for each observed round
//! service time `T` the value `u = F_model(T)` — the model's predicted
//! CDF evaluated at the observation — is uniform on `[0, 1]`. The
//! checker maintains a sliding window of PIT values, a binned histogram
//! with a KS-style max deviation from uniformity (exported as a gauge),
//! and a one-sided *upper-tail exceedance* test that drives the drift
//! alarm.
//!
//! The alarm is deliberately one-sided. The model is conservative by
//! construction (the Oyang seek constant bounds any SCAN sweep from
//! above), so observed service times sit stochastically *below* the
//! prediction and the left half of the PIT histogram is always
//! overweighted — a two-sided uniformity test would condemn a perfectly
//! healthy server. What voids the guarantee is mass appearing *above*
//! the predicted quantiles: observations landing past the model's
//! `tail_quantile` more often than `(1 − tail_quantile)` predicts. The
//! checker raises drift only when the Wilson lower confidence bound on
//! that exceedance rate provably exceeds `tail_tolerance ×
//! (1 − tail_quantile)` — under a model that stochastically dominates
//! the truth this cannot happen by chance, so the unskewed control
//! never alarms, while a mid-run zone skew pushes service times past
//! the predicted quantiles almost every round and fires within a
//! window's worth of observations.

use crate::{wilson_lower_bound, SloError};
use std::collections::VecDeque;

/// Configuration of a [`ConformanceChecker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConformanceConfig {
    /// PIT histogram bins.
    pub bins: usize,
    /// Sliding window of retained PIT observations.
    pub window: usize,
    /// Minimum observations before the drift test is consulted.
    pub min_samples: usize,
    /// The predicted quantile whose exceedance is monitored (e.g. 0.95:
    /// watch how often observations land above the model's 95th
    /// percentile).
    pub tail_quantile: f64,
    /// Drift raises when the exceedance rate provably exceeds this
    /// multiple of the predicted `1 − tail_quantile`.
    pub tail_tolerance: f64,
    /// Consecutive in-tolerance observations required to clear drift.
    pub hysteresis: u64,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        Self {
            bins: 20,
            window: 512,
            min_samples: 64,
            tail_quantile: 0.95,
            tail_tolerance: 2.0,
            hysteresis: 64,
        }
    }
}

impl ConformanceConfig {
    fn validate(&self) -> Result<(), SloError> {
        if self.bins < 2 {
            return Err(SloError::Invalid(format!(
                "need at least 2 PIT bins, got {}",
                self.bins
            )));
        }
        if self.window == 0 || self.min_samples == 0 || self.min_samples > self.window {
            return Err(SloError::Invalid(format!(
                "need 0 < min_samples ({}) <= window ({})",
                self.min_samples, self.window
            )));
        }
        if !(self.tail_quantile > 0.0 && self.tail_quantile < 1.0) {
            return Err(SloError::Invalid(format!(
                "tail quantile must be in (0, 1), got {}",
                self.tail_quantile
            )));
        }
        if !(self.tail_tolerance >= 1.0) || !self.tail_tolerance.is_finite() {
            return Err(SloError::Invalid(format!(
                "tail tolerance must be >= 1, got {}",
                self.tail_tolerance
            )));
        }
        Ok(())
    }
}

/// A drift state change reported by [`ConformanceChecker::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftTransition {
    /// The observed tail departed the model: drift went active.
    Raised,
    /// Drift cleared after a full hysteresis period in tolerance.
    Cleared,
}

/// Online PIT-uniformity monitor with a one-sided drift alarm.
#[derive(Debug)]
pub struct ConformanceChecker {
    cfg: ConformanceConfig,
    ring: VecDeque<f64>,
    bin_counts: Vec<u64>,
    tail_count: u64,
    drift_active: bool,
    quiet: u64,
    observed: u64,
    drifts_raised: u64,
}

impl ConformanceChecker {
    /// Build a checker.
    ///
    /// # Errors
    /// [`SloError::Invalid`] for degenerate bins, windows or quantiles.
    pub fn new(cfg: ConformanceConfig) -> Result<Self, SloError> {
        cfg.validate()?;
        Ok(Self {
            ring: VecDeque::with_capacity(cfg.window + 1),
            bin_counts: vec![0; cfg.bins],
            tail_count: 0,
            cfg,
            drift_active: false,
            quiet: 0,
            observed: 0,
            drifts_raised: 0,
        })
    }

    fn bin_of(&self, u: f64) -> usize {
        ((u * self.cfg.bins as f64) as usize).min(self.cfg.bins - 1)
    }

    /// Whether the windowed evidence currently exceeds tolerance: the
    /// Wilson lower bound on the tail-exceedance rate is above
    /// `tail_tolerance × (1 − tail_quantile)`.
    fn out_of_tolerance(&self) -> bool {
        if self.ring.len() < self.cfg.min_samples {
            return false;
        }
        let lb = wilson_lower_bound(self.tail_count, self.ring.len() as u64);
        lb > self.cfg.tail_tolerance * (1.0 - self.cfg.tail_quantile)
    }

    /// Feed one PIT value `u = F_model(observed service time)`, clamped
    /// to `[0, 1]`. Returns a drift transition when the state changed.
    pub fn observe(&mut self, u: f64) -> Option<DriftTransition> {
        let u = if u.is_finite() {
            u.clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.ring.push_back(u);
        let bin = self.bin_of(u);
        self.bin_counts[bin] += 1;
        if u > self.cfg.tail_quantile {
            self.tail_count += 1;
        }
        if self.ring.len() > self.cfg.window {
            let old = self.ring.pop_front().expect("len > window >= 1");
            let old_bin = self.bin_of(old);
            self.bin_counts[old_bin] -= 1;
            if old > self.cfg.tail_quantile {
                self.tail_count -= 1;
            }
        }
        self.observed += 1;
        let out = self.out_of_tolerance();
        if self.drift_active {
            if out {
                self.quiet = 0;
            } else {
                self.quiet += 1;
                if self.quiet >= self.cfg.hysteresis {
                    self.drift_active = false;
                    self.quiet = 0;
                    return Some(DriftTransition::Cleared);
                }
            }
        } else if out {
            self.drift_active = true;
            self.quiet = 0;
            self.drifts_raised += 1;
            return Some(DriftTransition::Raised);
        }
        None
    }

    /// KS-style max deviation between the windowed empirical PIT CDF
    /// and the uniform CDF, evaluated at bin edges. 0 when empty.
    #[must_use]
    pub fn ks_statistic(&self) -> f64 {
        let n = self.ring.len();
        if n == 0 {
            return 0.0;
        }
        let mut cum = 0u64;
        let mut worst = 0.0f64;
        for (i, &c) in self.bin_counts.iter().enumerate() {
            cum += c;
            let emp = cum as f64 / n as f64;
            let uni = (i + 1) as f64 / self.cfg.bins as f64;
            worst = worst.max((emp - uni).abs());
        }
        worst
    }

    /// Fraction of windowed observations above the monitored quantile
    /// (healthy value ≈ `1 − tail_quantile`).
    #[must_use]
    pub fn tail_exceedance(&self) -> f64 {
        if self.ring.is_empty() {
            return 0.0;
        }
        self.tail_count as f64 / self.ring.len() as f64
    }

    /// Whether drift is currently active.
    #[must_use]
    pub fn drift_active(&self) -> bool {
        self.drift_active
    }

    /// Total PIT observations fed so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observed
    }

    /// Drift alarms raised so far.
    #[must_use]
    pub fn drifts_raised(&self) -> u64 {
        self.drifts_raised
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &ConformanceConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> ConformanceChecker {
        ConformanceChecker::new(ConformanceConfig {
            window: 64,
            min_samples: 16,
            hysteresis: 16,
            ..ConformanceConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = |f: fn(&mut ConformanceConfig)| {
            let mut c = ConformanceConfig::default();
            f(&mut c);
            ConformanceChecker::new(c).is_err()
        };
        assert!(bad(|c| c.bins = 1));
        assert!(bad(|c| c.window = 0));
        assert!(bad(|c| c.min_samples = c.window + 1));
        assert!(bad(|c| c.tail_quantile = 1.0));
        assert!(bad(|c| c.tail_tolerance = 0.5));
    }

    #[test]
    fn uniform_pit_stays_quiet_with_low_ks() {
        let mut c = checker();
        // A deterministic low-discrepancy permutation of the uniform
        // grid (stride 197, coprime with 512): every sliding window
        // stays representative of the whole distribution.
        for i in 0u32..512 {
            let u = (f64::from((i * 197) % 512) + 0.5) / 512.0;
            assert_eq!(c.observe(u), None, "observation {i}");
        }
        assert!(!c.drift_active());
        assert!(c.ks_statistic() < 0.1, "ks {}", c.ks_statistic());
        assert!((c.tail_exceedance() - 0.05).abs() < 0.03);
    }

    #[test]
    fn conservative_model_never_alarms() {
        // Observations stochastically below prediction: every PIT value
        // in the lower half. KS is huge but the one-sided tail test
        // stays silent -- exactly the conservative-model posture.
        let mut c = checker();
        for i in 0..512 {
            let u = 0.5 * (f64::from(i % 64) + 0.5) / 64.0;
            assert_eq!(c.observe(u), None);
        }
        assert!(!c.drift_active());
        assert!(c.ks_statistic() > 0.4);
        assert_eq!(c.tail_exceedance(), 0.0);
    }

    #[test]
    fn tail_mass_raises_then_clears_with_hysteresis() {
        let mut c = checker();
        let mut raised_at = None;
        for i in 0..64 {
            if c.observe(0.99).is_some() {
                raised_at = Some(i);
                break;
            }
        }
        let raised_at = raised_at.expect("persistent tail mass must raise");
        assert!(raised_at >= 15, "needs min_samples first, got {raised_at}");
        assert!(c.drift_active());
        assert_eq!(c.drifts_raised(), 1);
        // Return to in-tolerance observations: the stale tail mass ages
        // out of the window, then hysteresis must still elapse.
        let mut cleared_after = None;
        for i in 0..200 {
            if c.observe(0.3) == Some(DriftTransition::Cleared) {
                cleared_after = Some(i + 1);
                break;
            }
        }
        let cleared_after = cleared_after.expect("drift must clear");
        assert!(
            cleared_after >= 16,
            "cleared after only {cleared_after} quiet observations"
        );
        assert!(!c.drift_active());
    }

    #[test]
    fn non_finite_pit_counts_as_tail() {
        let mut c = checker();
        let mut raised = false;
        for _ in 0..64 {
            raised |= c.observe(f64::NAN).is_some();
        }
        assert!(raised, "NaN PIT values must be treated as exceedances");
    }

    #[test]
    fn window_slides() {
        let mut c = checker();
        for _ in 0..64 {
            c.observe(0.2);
        }
        for _ in 0..64 {
            c.observe(0.7);
        }
        // Window is entirely 0.7 now: bin mass concentrated there.
        assert_eq!(c.observations(), 128);
        assert_eq!(c.tail_exceedance(), 0.0);
        assert!(c.ks_statistic() > 0.5);
    }
}
