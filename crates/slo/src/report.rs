//! Self-contained HTML report of a run's SLO health.
//!
//! [`render_html`] consumes the JSONL event log (`--events-out`) and an
//! optional metrics snapshot (`--metrics-out`) a run produced and
//! renders one HTML page: inline-SVG sparklines of service time, glitch
//! counts and burn rates, a table of every `slo.alert` / `slo.drift`
//! transition, and the metric catalog. No scripts, no external assets —
//! the file opens offline in any browser.

use mzd_telemetry::json::{self, Value};
use std::fmt::Write as _;

/// A time series extracted from the event log.
#[derive(Debug, Default)]
struct Series {
    values: Vec<f64>,
}

impl Series {
    fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    fn last(&self) -> f64 {
        self.values.last().copied().unwrap_or(0.0)
    }

    fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0f64, f64::max)
    }
}

/// Render an inline SVG sparkline (polyline over the series, max 400
/// points after downsampling). Empty series render an empty frame.
fn sparkline(s: &Series, width: u32, height: u32) -> String {
    let mut svg = format!(
        "<svg viewBox=\"0 0 {width} {height}\" width=\"{width}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\
         <rect width=\"{width}\" height=\"{height}\" fill=\"#f7f7f9\"/>"
    );
    let n = s.values.len();
    if n >= 2 {
        // Downsample long series by striding; keeps the polyline light.
        let stride = n.div_ceil(400);
        let pts: Vec<f64> = s.values.iter().copied().step_by(stride).collect();
        let lo = pts.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = pts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = if (hi - lo).abs() < 1e-12 {
            1.0
        } else {
            hi - lo
        };
        let m = pts.len();
        let mut path = String::new();
        for (i, &v) in pts.iter().enumerate() {
            let x = f64::from(width) * i as f64 / (m - 1) as f64;
            let y = f64::from(height) * (1.0 - 0.08 - 0.84 * (v - lo) / span);
            let _ = write!(path, "{}{x:.1},{y:.1}", if i == 0 { "" } else { " " });
        }
        let _ = write!(
            svg,
            "<polyline points=\"{path}\" fill=\"none\" stroke=\"#2b6cb0\" stroke-width=\"1.5\"/>"
        );
    }
    svg.push_str("</svg>");
    svg
}

fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn f64_of(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// One alert/drift transition row.
#[derive(Debug)]
struct Transition {
    kind: &'static str,
    state: String,
    round: u64,
    detail: String,
}

/// Render the report.
///
/// `events_jsonl` is the full text of a JSONL event log; lines that are
/// empty are skipped, lines that fail to parse are an error (a corrupt
/// log should be loud, not silently half-rendered). `metrics_json` is
/// the optional metrics snapshot document.
///
/// # Errors
/// A human-readable message for unparseable input.
pub fn render_html(events_jsonl: &str, metrics_json: Option<&str>) -> Result<String, String> {
    let mut service_time = Series::default();
    let mut glitched = Series::default();
    let mut active = Series::default();
    let mut burn_fast = Series::default();
    let mut ks = Series::default();
    let mut transitions: Vec<Transition> = Vec::new();
    let mut event_count = 0u64;

    for (lineno, line) in events_jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("events line {}: {e}", lineno + 1))?;
        event_count += 1;
        let Some(name) = v.get("event").and_then(Value::as_str) else {
            continue;
        };
        match name {
            "sim.round" => {
                if let Some(t) = f64_of(&v, "service_time") {
                    service_time.push(t);
                }
            }
            "server.round" => {
                if let Some(list) = v.get("glitched").and_then(Value::as_array) {
                    glitched.push(list.len() as f64);
                }
                if let Some(a) = f64_of(&v, "active") {
                    active.push(a);
                }
            }
            "slo.round" => {
                if let Some(b) = f64_of(&v, "burn_fast") {
                    burn_fast.push(b);
                }
                if let Some(k) = f64_of(&v, "ks") {
                    ks.push(k);
                }
            }
            "slo.alert" | "slo.drift" => {
                let state = v
                    .get("state")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                let round = f64_of(&v, "round").unwrap_or(0.0) as u64;
                let detail = if name == "slo.alert" {
                    format!(
                        "burn fast {:.2}x / slow {:.2}x",
                        f64_of(&v, "burn_fast").unwrap_or(0.0),
                        f64_of(&v, "burn_slow").unwrap_or(0.0)
                    )
                } else {
                    format!(
                        "ks {:.3}, tail exceedance {:.3}",
                        f64_of(&v, "ks").unwrap_or(0.0),
                        f64_of(&v, "tail_exceedance").unwrap_or(0.0)
                    )
                };
                transitions.push(Transition {
                    kind: if name == "slo.alert" {
                        "alert"
                    } else {
                        "drift"
                    },
                    state,
                    round,
                    detail,
                });
            }
            _ => {}
        }
    }

    let metrics = match metrics_json {
        Some(text) => Some(json::parse(text).map_err(|e| format!("metrics snapshot: {e}"))?),
        None => None,
    };

    let mut html = String::with_capacity(16 * 1024);
    html.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>mzd SLO report</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;color:#1a202c}\n\
         h1,h2{font-weight:600}\n\
         table{border-collapse:collapse;width:100%;margin:0.5rem 0}\n\
         th,td{border:1px solid #cbd5e0;padding:0.25rem 0.5rem;text-align:left;\
         font-variant-numeric:tabular-nums}\n\
         th{background:#edf2f7}\n\
         .spark{display:flex;gap:2rem;flex-wrap:wrap;margin:1rem 0}\n\
         .spark figure{margin:0}\n\
         .spark figcaption{font-size:12px;color:#4a5568}\n\
         .raise{color:#c53030;font-weight:600}.clear{color:#2f855a}\n\
         </style>\n</head>\n<body>\n<h1>mzd SLO report</h1>\n",
    );
    let _ = writeln!(
        html,
        "<p>{event_count} events; {} server rounds, {} sim rounds, {} slo rounds observed.</p>",
        glitched.values.len(),
        service_time.values.len(),
        burn_fast.values.len()
    );

    html.push_str("<h2>Sparklines</h2>\n<div class=\"spark\">\n");
    for (title, series, unit) in [
        ("round service time", &service_time, "s"),
        ("glitched streams / round", &glitched, ""),
        ("active streams", &active, ""),
        ("burn rate (fast window)", &burn_fast, "x budget"),
        ("PIT KS deviation", &ks, ""),
    ] {
        let _ = writeln!(
            html,
            "<figure>{}<figcaption>{} — last {:.3}{}, max {:.3}{}</figcaption></figure>",
            sparkline(series, 220, 48),
            esc(title),
            series.last(),
            unit,
            series.max(),
            unit,
        );
    }
    html.push_str("</div>\n");

    html.push_str("<h2>SLO transitions</h2>\n");
    if transitions.is_empty() {
        html.push_str("<p>No <code>slo.alert</code> or <code>slo.drift</code> transitions — the run stayed inside its budget and the model held.</p>\n");
    } else {
        html.push_str(
            "<table><tr><th>round</th><th>signal</th><th>state</th><th>detail</th></tr>\n",
        );
        for t in &transitions {
            let class = if t.state == "raise" { "raise" } else { "clear" };
            let _ = writeln!(
                html,
                "<tr><td>{}</td><td>{}</td><td class=\"{class}\">{}</td><td>{}</td></tr>",
                t.round,
                esc(t.kind),
                esc(&t.state),
                esc(&t.detail)
            );
        }
        html.push_str("</table>\n");
    }

    if let Some(m) = &metrics {
        html.push_str("<h2>Metrics snapshot</h2>\n");
        for (section, header) in [("counters", "count"), ("gauges", "value")] {
            if let Some(map) = m.get(section).and_then(Value::as_object) {
                if map.is_empty() {
                    continue;
                }
                let _ = writeln!(
                    html,
                    "<h3>{section}</h3>\n<table><tr><th>name</th><th>{header}</th></tr>"
                );
                for (name, value) in map {
                    let _ = writeln!(
                        html,
                        "<tr><td>{}</td><td>{}</td></tr>",
                        esc(name),
                        value.as_f64().map_or_else(String::new, |x| format!("{x}"))
                    );
                }
                html.push_str("</table>\n");
            }
        }
        if let Some(map) = m.get("histograms").and_then(Value::as_object) {
            if !map.is_empty() {
                html.push_str(
                    "<h3>histograms</h3>\n<table><tr><th>name</th><th>count</th>\
                     <th>mean</th><th>p99</th><th>max</th></tr>\n",
                );
                for (name, h) in map {
                    let pick = |k: &str| h.get(k).and_then(Value::as_f64).unwrap_or(0.0);
                    let _ = writeln!(
                        html,
                        "<tr><td>{}</td><td>{}</td><td>{:.4}</td><td>{:.4}</td><td>{:.4}</td></tr>",
                        esc(name),
                        pick("count") as u64,
                        pick("mean"),
                        pick("p99"),
                        pick("max")
                    );
                }
                html.push_str("</table>\n");
            }
        }
    }

    html.push_str("</body>\n</html>\n");
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_from_minimal_event_log() {
        let events = concat!(
            "{\"event\":\"sim.round\",\"round\":0,\"service_time\":0.8}\n",
            "{\"event\":\"server.round\",\"round\":0,\"active\":28,\"glitched\":[1,2]}\n",
            "{\"event\":\"slo.round\",\"round\":0,\"burn_fast\":3.5,\"ks\":0.12}\n",
            "{\"event\":\"slo.alert\",\"state\":\"raise\",\"round\":7,\
             \"burn_fast\":9.0,\"burn_slow\":6.5}\n",
            "{\"event\":\"slo.drift\",\"state\":\"clear\",\"round\":40,\
             \"ks\":0.08,\"tail_exceedance\":0.04}\n",
        );
        let html = render_html(events, None).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert!(html.contains("<svg"));
        assert!(html.contains("slo"));
        assert!(html.contains("raise"));
        assert!(html.contains("burn fast 9.00x"));
        // No scripts, no external fetches: self-contained.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http-equiv"));
        assert!(!html.contains("src=\"http"));
    }

    #[test]
    fn includes_metrics_snapshot_tables() {
        let metrics = "{\"counters\": {\"sim.rounds\": 10},\
             \"gauges\": {\"slo.burn_rate.fast\": 1.5},\
             \"histograms\": {\"sim.round.service_time\": {\"count\": 10,\
             \"sum\": 8.0, \"mean\": 0.8, \"min\": 0.7, \"max\": 0.9,\
             \"p50\": 0.8, \"p95\": 0.88, \"p99\": 0.9, \"p999\": 0.9}}}";
        let html = render_html("", Some(metrics)).unwrap();
        assert!(html.contains("sim.rounds"));
        assert!(html.contains("slo.burn_rate.fast"));
        assert!(html.contains("sim.round.service_time"));
    }

    #[test]
    fn corrupt_lines_are_loud() {
        assert!(render_html("{not json", None).is_err());
        assert!(render_html("{}", Some("nope")).is_err());
        // Blank lines and eventless objects are fine.
        assert!(render_html("\n\n{\"x\": 1}\n", None).is_ok());
    }

    #[test]
    fn html_escapes_event_content() {
        let events = "{\"event\":\"slo.alert\",\"state\":\"<img>\",\"round\":1}\n";
        let html = render_html(events, None).unwrap();
        assert!(!html.contains("<img>"));
        assert!(html.contains("&lt;img&gt;"));
    }
}
