//! Property tests for the SLO state machines:
//!
//! 1. burn alerts never flap: transitions strictly alternate
//!    Raised → Cleared → Raised …, and every raise→clear pair is at
//!    least `hysteresis` rounds apart, for *any* glitch sequence;
//! 2. a stream with zero glitches never alerts, whatever the traffic;
//! 3. the fast window must be full before the first raise;
//! 4. drift transitions obey the same alternation/hysteresis contract,
//!    and PIT values below the monitored tail quantile never raise.

use mzd_slo::{
    AlertTransition, BurnConfig, BurnRateEngine, ConformanceChecker, ConformanceConfig,
    DriftTransition,
};
use proptest::prelude::*;

fn burn_engine(hysteresis: u64) -> BurnRateEngine {
    BurnRateEngine::new(BurnConfig {
        fast_window: 8,
        slow_window: 16,
        long_window: 32,
        hysteresis,
        ..BurnConfig::for_budget(0.01)
    })
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No flapping: under any load/glitch sequence the transition log
    /// alternates Raised, Cleared, Raised, … and consecutive Raised →
    /// Cleared transitions are at least `hysteresis` rounds apart.
    #[test]
    fn burn_transitions_alternate_and_respect_hysteresis(
        rounds in prop::collection::vec((1u64..40, 0u64..50), 1..400),
        hysteresis in 1u64..32,
    ) {
        let mut e = burn_engine(hysteresis);
        let mut transitions: Vec<(u64, AlertTransition)> = Vec::new();
        for (i, &(sr, g)) in rounds.iter().enumerate() {
            if let Some(t) = e.observe_round(sr, g.min(sr)) {
                transitions.push((i as u64, t));
            }
        }
        for (i, (_, t)) in transitions.iter().enumerate() {
            let expected = if i % 2 == 0 {
                AlertTransition::Raised
            } else {
                AlertTransition::Cleared
            };
            prop_assert_eq!(*t, expected, "transition {} out of order", i);
        }
        for pair in transitions.windows(2) {
            if pair[0].1 == AlertTransition::Raised {
                let gap = pair[1].0 - pair[0].0;
                prop_assert!(
                    gap >= hysteresis,
                    "raise at {} cleared {} rounds later (hysteresis {})",
                    pair[0].0, gap, hysteresis
                );
            }
        }
        // Bookkeeping agrees with the log.
        let raises = transitions
            .iter()
            .filter(|(_, t)| *t == AlertTransition::Raised)
            .count() as u64;
        prop_assert_eq!(e.alerts_raised(), raises);
    }

    /// A glitch-free stream never alerts, whatever the per-round load.
    #[test]
    fn zero_glitch_stream_never_alerts(
        loads in prop::collection::vec(0u64..100, 1..600),
        hysteresis in 1u64..32,
    ) {
        let mut e = burn_engine(hysteresis);
        for sr in loads {
            prop_assert_eq!(e.observe_round(sr, 0), None);
            prop_assert!(!e.alert_active());
            prop_assert_eq!(e.burn_fast(), 0.0);
        }
        prop_assert_eq!(e.alerts_raised(), 0);
    }

    /// The first raise can only happen once the fast window has filled:
    /// no alarm off a handful of rounds, however catastrophic.
    #[test]
    fn no_raise_before_fast_window_fills(
        rounds in prop::collection::vec((1u64..40, 0u64..50), 1..40),
    ) {
        let mut e = burn_engine(8);
        let fast_window = e.config().fast_window as u64;
        for (i, &(sr, g)) in rounds.iter().enumerate() {
            let t = e.observe_round(sr, g.min(sr));
            if (i as u64) < fast_window - 1 {
                prop_assert_eq!(t, None, "raised on round {} before window full", i);
            }
        }
    }

    /// Drift transitions alternate Raised/Cleared and raise→clear pairs
    /// are at least `hysteresis` observations apart.
    #[test]
    fn drift_transitions_alternate_and_respect_hysteresis(
        pits in prop::collection::vec(0.0f64..1.0, 1..400),
        hysteresis in 1u64..32,
    ) {
        let mut c = ConformanceChecker::new(ConformanceConfig {
            window: 32,
            min_samples: 8,
            hysteresis,
            ..ConformanceConfig::default()
        })
        .expect("valid config");
        let mut transitions: Vec<(u64, DriftTransition)> = Vec::new();
        for (i, &u) in pits.iter().enumerate() {
            if let Some(t) = c.observe(u) {
                transitions.push((i as u64, t));
            }
        }
        for (i, (_, t)) in transitions.iter().enumerate() {
            let expected = if i % 2 == 0 {
                DriftTransition::Raised
            } else {
                DriftTransition::Cleared
            };
            prop_assert_eq!(*t, expected, "transition {} out of order", i);
        }
        for pair in transitions.windows(2) {
            if pair[0].1 == DriftTransition::Raised {
                prop_assert!(pair[1].0 - pair[0].0 >= hysteresis);
            }
        }
    }

    /// PIT mass entirely below the monitored quantile never raises
    /// drift: the one-sided test ignores a conservatively-biased model.
    #[test]
    fn sub_tail_pit_never_drifts(
        pits in prop::collection::vec(0.0f64..0.95, 1..600),
    ) {
        let mut c = ConformanceChecker::new(ConformanceConfig {
            window: 64,
            min_samples: 16,
            hysteresis: 16,
            ..ConformanceConfig::default()
        })
        .expect("valid config");
        for u in pits {
            prop_assert_eq!(c.observe(u), None);
            prop_assert!(!c.drift_active());
        }
        prop_assert_eq!(c.drifts_raised(), 0);
    }
}
