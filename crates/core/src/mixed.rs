//! Mixed continuous/discrete workloads — the §6 outlook, built on the
//! \[NMW97\] line of models.
//!
//! The paper's future-work section advocates sharing disks between
//! continuous streams and conventional "discrete" requests (HTML pages,
//! images). Because the Chernoff machinery of §3 only needs the log-MGF
//! of the round total, it extends directly to a *multi-class* round: `N`
//! continuous requests plus `K` discrete requests served in the same SCAN
//! sweep have
//!
//! ```text
//! T = SEEK(N+K) + Σ_{N+K} T_rot,i + Σ_N T_trans,i + Σ_K T_disc,j
//! ```
//!
//! with each class's transfer times Gamma-modeled as in §3.1–3.2. The
//! resulting bound answers the provisioning question the paper poses: how
//! many discrete requests per round can be admitted alongside `N` streams
//! without eroding their glitch guarantee?

use crate::chernoff::ChernoffBound;
use crate::transfer::TransferTimeModel;
use crate::{transform, CoreError};
use mzd_numerics::minimize::brent_minimize;

/// A request class in a mixed round: a transfer-time law and a count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestClass {
    /// Moment-matched transfer-time Gamma for this class.
    pub transfer: TransferTimeModel,
    /// Number of requests of this class in the round.
    pub count: u32,
}

/// A round serving several request classes in one SCAN sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRoundModel {
    seek: f64,
    rot: f64,
    classes: Vec<RequestClass>,
}

impl MixedRoundModel {
    /// Build a mixed round model. `seek` must already account for the
    /// *total* request count (use the Oyang bound at `Σ count`).
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive rotation time or negative
    /// seek constant.
    pub fn new(seek: f64, rot: f64, classes: Vec<RequestClass>) -> Result<Self, CoreError> {
        if !(rot > 0.0) || !rot.is_finite() {
            return Err(CoreError::Invalid(format!(
                "rotation time must be positive, got {rot}"
            )));
        }
        if !(seek >= 0.0) || !seek.is_finite() {
            return Err(CoreError::Invalid(format!(
                "seek constant must be nonnegative, got {seek}"
            )));
        }
        Ok(Self { seek, rot, classes })
    }

    /// Total number of requests across classes.
    #[must_use]
    pub fn total_requests(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// `ln M(θ)` of the mixed round total; `+∞` beyond the smallest class
    /// rate.
    #[must_use]
    pub fn log_mgf(&self, theta: f64) -> f64 {
        let total = f64::from(self.total_requests());
        let mut acc = transform::log_mgf_constant(theta, self.seek)
            + total * transform::log_mgf_uniform(theta, self.rot);
        for c in &self.classes {
            acc += f64::from(c.count) * c.transfer.log_mgf(theta);
        }
        acc
    }

    /// Exact mean of the mixed round total.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total = f64::from(self.total_requests());
        self.seek
            + total * self.rot / 2.0
            + self
                .classes
                .iter()
                .map(|c| f64::from(c.count) * c.transfer.mean())
                .sum::<f64>()
    }

    /// Exact variance of the mixed round total.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let total = f64::from(self.total_requests());
        total * self.rot * self.rot / 12.0
            + self
                .classes
                .iter()
                .map(|c| f64::from(c.count) * c.transfer.variance())
                .sum::<f64>()
    }

    /// Chernoff bound on `P[T ≥ t]`, exactly as in the single-class case
    /// but with the multi-class MGF. The optimization interval ends at the
    /// smallest class α (the first MGF pole).
    #[must_use]
    pub fn p_late_bound(&self, t: f64) -> ChernoffBound {
        if self.total_requests() == 0 {
            return ChernoffBound {
                probability: if t > self.seek { 0.0 } else { 1.0 },
                theta: 0.0,
            };
        }
        if t <= self.mean() {
            return ChernoffBound {
                probability: 1.0,
                theta: 0.0,
            };
        }
        let alpha_min = self
            .classes
            .iter()
            .filter(|c| c.count > 0)
            .map(|c| c.transfer.alpha())
            .fold(f64::INFINITY, f64::min);
        let upper = if alpha_min.is_finite() {
            alpha_min * (1.0 - 1e-9)
        } else {
            // No transfer classes with requests: rotation-only round; any
            // large θ works, the uniform MGF is entire.
            1e9
        };
        let objective = |theta: f64| self.log_mgf(theta) - theta * t;
        let m = brent_minimize(objective, 0.0, upper, 1e-12)
            .expect("optimization interval is valid by construction");
        ChernoffBound {
            probability: m.value.min(0.0).exp().min(1.0),
            theta: m.x,
        }
    }
}

/// The provisioning question of §6: with `n` continuous streams admitted
/// on the disk, how many discrete requests per round keep the round-
/// overrun bound at or below `delta`?
///
/// `seek_for_total` must map a total request count to the round's SEEK
/// constant (normally the Oyang bound). Searches `k` upward; the bound is
/// monotone in `k`.
///
/// # Errors
/// [`CoreError::Invalid`] for invalid `t`, `delta`, or model parameters.
pub fn discrete_capacity<F: Fn(u32) -> f64>(
    continuous: TransferTimeModel,
    discrete: TransferTimeModel,
    n: u32,
    t: f64,
    delta: f64,
    rot: f64,
    seek_for_total: F,
) -> Result<u32, CoreError> {
    if !(t > 0.0) || !t.is_finite() {
        return Err(CoreError::Invalid(format!(
            "round length must be positive, got {t}"
        )));
    }
    if !(delta > 0.0) || delta > 1.0 {
        return Err(CoreError::Invalid(format!(
            "threshold must be in (0, 1], got {delta}"
        )));
    }
    let bound_for = |k: u32| -> Result<f64, CoreError> {
        let model = MixedRoundModel::new(
            seek_for_total(n + k),
            rot,
            vec![
                RequestClass {
                    transfer: continuous,
                    count: n,
                },
                RequestClass {
                    transfer: discrete,
                    count: k,
                },
            ],
        )?;
        Ok(model.p_late_bound(t).probability)
    };
    // The continuous load alone must satisfy the target.
    if bound_for(0)? > delta {
        return Ok(0);
    }
    let mut k = 0u32;
    while k < crate::admission::N_SEARCH_CAP && bound_for(k + 1)? <= delta {
        k += 1;
    }
    Ok(k)
}

/// A class in a heterogeneous stream population (e.g. "70% video at
/// 4 Mbit/s, 30% audio at 256 kbit/s").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamClass {
    /// Per-request transfer-time Gamma for this class.
    pub transfer: TransferTimeModel,
    /// Fraction of the stream population in this class (fractions should
    /// sum to 1).
    pub fraction: f64,
}

/// `N_max` for a heterogeneous stream population: the largest total `n`
/// such that a round serving `round(fraction_c · n)` streams of each
/// class keeps `p_late ≤ delta`. Uses the multi-class MGF, so classes
/// with different bandwidths are modeled exactly rather than pooled into
/// inflated Gamma moments.
///
/// `seek_for_total` maps the total request count to the round's SEEK
/// constant (normally the Oyang bound).
///
/// # Errors
/// [`CoreError::Invalid`] for invalid fractions, `t`, or `delta`.
pub fn n_max_heterogeneous<F: Fn(u32) -> f64 + Sync>(
    classes: &[StreamClass],
    t: f64,
    delta: f64,
    rot: f64,
    seek_for_total: F,
) -> Result<u32, CoreError> {
    if classes.is_empty() {
        return Err(CoreError::Invalid("need at least one stream class".into()));
    }
    let total_fraction: f64 = classes.iter().map(|c| c.fraction).sum();
    if classes.iter().any(|c| !(c.fraction >= 0.0)) || !((0.99..=1.01).contains(&total_fraction)) {
        return Err(CoreError::Invalid(format!(
            "class fractions must be nonnegative and sum to 1, got sum {total_fraction}"
        )));
    }
    if !(t > 0.0) || !t.is_finite() || !(delta > 0.0) || delta > 1.0 {
        return Err(CoreError::Invalid(format!(
            "require t > 0 and delta in (0, 1], got t = {t}, delta = {delta}"
        )));
    }
    let split = |n: u32| -> Vec<RequestClass> {
        // Largest-remainder apportionment so counts sum exactly to n.
        let nf = f64::from(n);
        let mut counts: Vec<u32> = classes
            .iter()
            .map(|c| (c.fraction * nf).floor() as u32)
            .collect();
        let mut remainder: Vec<(usize, f64)> = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.fraction * nf - (c.fraction * nf).floor()))
            .collect();
        remainder.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let assigned: u32 = counts.iter().sum();
        for &(i, _) in remainder.iter().take((n - assigned) as usize) {
            counts[i] += 1;
        }
        classes
            .iter()
            .zip(counts)
            .map(|(c, count)| RequestClass {
                transfer: c.transfer,
                count,
            })
            .collect()
    };
    let bound_for = |n: u32| -> f64 {
        MixedRoundModel::new(seek_for_total(n), rot, split(n))
            .map(|m| m.p_late_bound(t).probability)
            .unwrap_or(1.0)
    };
    Ok(crate::admission::n_max_par(bound_for, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mzd_disk::oyang;

    fn continuous_transfer() -> TransferTimeModel {
        // The paper's multi-zone 200 KB fragments.
        TransferTimeModel::from_moments(0.02165, 1.308e-4).unwrap()
    }

    fn discrete_transfer() -> TransferTimeModel {
        // Small discrete objects: mean 20 KB, sd 20 KB at ~9 MB/s.
        TransferTimeModel::from_moments(0.0022, 4.8e-6).unwrap()
    }

    fn viking_seek(total: u32) -> f64 {
        let curve =
            mzd_disk::SeekCurve::paper_form(1.867e-3, 1.315e-4, 3.8635e-3, 2.1e-6, 1344.0).unwrap();
        oyang::seek_bound(&curve, 6720, total)
    }

    #[test]
    fn single_class_reduces_to_round_service() {
        // A mixed model with one class must match RoundService exactly.
        let n = 26u32;
        let mixed = MixedRoundModel::new(
            viking_seek(n),
            0.00834,
            vec![RequestClass {
                transfer: continuous_transfer(),
                count: n,
            }],
        )
        .unwrap();
        let single =
            crate::chernoff::RoundService::new(viking_seek(n), 0.00834, continuous_transfer(), n)
                .unwrap();
        assert!((mixed.mean() - single.mean()).abs() < 1e-15);
        assert!((mixed.variance() - single.variance()).abs() < 1e-18);
        let bm = mixed.p_late_bound(1.0);
        let bs = single.p_late_bound(1.0);
        assert!((bm.probability - bs.probability).abs() < 1e-9);
    }

    #[test]
    fn discrete_requests_increase_the_bound() {
        let n = 24u32;
        let mut prev = 0.0;
        for k in [0u32, 10, 30, 60] {
            let m = MixedRoundModel::new(
                viking_seek(n + k),
                0.00834,
                vec![
                    RequestClass {
                        transfer: continuous_transfer(),
                        count: n,
                    },
                    RequestClass {
                        transfer: discrete_transfer(),
                        count: k,
                    },
                ],
            )
            .unwrap();
            let p = m.p_late_bound(1.0).probability;
            assert!(p >= prev - 1e-12, "k = {k}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn discrete_capacity_search() {
        // At N = 24 continuous streams (bound ~1e-4) there is room for a
        // healthy batch of small discrete requests before hitting 1%.
        let k = discrete_capacity(
            continuous_transfer(),
            discrete_transfer(),
            24,
            1.0,
            0.01,
            0.00834,
            viking_seek,
        )
        .unwrap();
        // Each discrete request costs ~10 ms (rotation + small transfer +
        // seek share); the headroom between N = 24 (bound ~1e-4) and the
        // 1% target buys high single digits of them.
        assert!(k >= 5, "discrete capacity {k} too small");
        assert!(k < 100, "discrete capacity {k} implausibly large");
        // And the bound at k is within target while k+1 is not.
        let at = MixedRoundModel::new(
            viking_seek(24 + k),
            0.00834,
            vec![
                RequestClass {
                    transfer: continuous_transfer(),
                    count: 24,
                },
                RequestClass {
                    transfer: discrete_transfer(),
                    count: k,
                },
            ],
        )
        .unwrap();
        assert!(at.p_late_bound(1.0).probability <= 0.01);
    }

    #[test]
    fn discrete_capacity_zero_when_continuous_saturates() {
        // At N = 30 the continuous bound alone exceeds 1%: no discrete room.
        let k = discrete_capacity(
            continuous_transfer(),
            discrete_transfer(),
            30,
            1.0,
            0.01,
            0.00834,
            viking_seek,
        )
        .unwrap();
        assert_eq!(k, 0);
    }

    #[test]
    fn discrete_capacity_grows_as_streams_shrink() {
        let cap = |n: u32| {
            discrete_capacity(
                continuous_transfer(),
                discrete_transfer(),
                n,
                1.0,
                0.01,
                0.00834,
                viking_seek,
            )
            .unwrap()
        };
        let k20 = cap(20);
        let k24 = cap(24);
        let k26 = cap(26);
        assert!(k20 > k24 && k24 > k26, "caps {k20}, {k24}, {k26}");
    }

    #[test]
    fn empty_round_edge_cases() {
        let m = MixedRoundModel::new(0.0, 0.00834, vec![]).unwrap();
        assert_eq!(m.total_requests(), 0);
        assert_eq!(m.p_late_bound(0.5).probability, 0.0);
        assert_eq!(m.p_late_bound(0.0).probability, 1.0);
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn rotation_only_class_handled() {
        // A class with zero-count transfer contributes nothing.
        let m = MixedRoundModel::new(
            0.05,
            0.00834,
            vec![RequestClass {
                transfer: discrete_transfer(),
                count: 0,
            }],
        )
        .unwrap();
        assert_eq!(m.total_requests(), 0);
        assert_eq!(m.p_late_bound(1.0).probability, 0.0);
    }

    #[test]
    fn heterogeneous_n_max_interpolates_between_pure_classes() {
        // Pure video, pure audio, and a 50/50 mix: the mixed N_max must
        // lie between the pure ones (audio is far cheaper).
        let video = continuous_transfer();
        let audio = TransferTimeModel::from_moments(0.0035, 2e-7).unwrap(); // ~32 KB
        let n_max_for = |classes: &[StreamClass]| {
            n_max_heterogeneous(classes, 1.0, 0.01, 0.00834, viking_seek).unwrap()
        };
        let pure_video = n_max_for(&[StreamClass {
            transfer: video,
            fraction: 1.0,
        }]);
        let pure_audio = n_max_for(&[StreamClass {
            transfer: audio,
            fraction: 1.0,
        }]);
        let mix = n_max_for(&[
            StreamClass {
                transfer: video,
                fraction: 0.5,
            },
            StreamClass {
                transfer: audio,
                fraction: 0.5,
            },
        ]);
        assert_eq!(pure_video, 26); // the paper's number
        assert!(pure_audio > 70, "pure audio N_max = {pure_audio}");
        assert!(
            mix > pure_video && mix < pure_audio,
            "mix {mix} not between {pure_video} and {pure_audio}"
        );
    }

    #[test]
    fn heterogeneous_beats_pooled_moments() {
        // Pooling a bimodal mix into one Gamma inflates the variance and
        // understates capacity; the multi-class model recovers streams.
        let video = continuous_transfer();
        let audio = TransferTimeModel::from_moments(0.0035, 2e-7).unwrap();
        let mix = n_max_heterogeneous(
            &[
                StreamClass {
                    transfer: video,
                    fraction: 0.5,
                },
                StreamClass {
                    transfer: audio,
                    fraction: 0.5,
                },
            ],
            1.0,
            0.01,
            0.00834,
            viking_seek,
        )
        .unwrap();
        // Pooled: mean/var of a 50/50 mixture of the two Gammas.
        let m = 0.5 * (0.02165 + 0.0035);
        let second = 0.5 * (1.308e-4 + 0.02165f64.powi(2)) + 0.5 * (2e-7 + 0.0035f64.powi(2));
        let pooled_tm = TransferTimeModel::from_moments(m, second - m * m).unwrap();
        let pooled = crate::admission::n_max(
            |n| {
                crate::chernoff::RoundService::new(viking_seek(n), 0.00834, pooled_tm, n)
                    .map(|r| r.p_late_bound(1.0).probability)
                    .unwrap_or(1.0)
            },
            0.01,
        );
        assert!(
            mix >= pooled,
            "multi-class {mix} below pooled-moment {pooled}"
        );
    }

    #[test]
    fn heterogeneous_validation() {
        let video = continuous_transfer();
        assert!(n_max_heterogeneous(&[], 1.0, 0.01, 0.00834, viking_seek).is_err());
        let bad_fraction = [StreamClass {
            transfer: video,
            fraction: 0.5,
        }];
        assert!(n_max_heterogeneous(&bad_fraction, 1.0, 0.01, 0.00834, viking_seek).is_err());
        let ok = [StreamClass {
            transfer: video,
            fraction: 1.0,
        }];
        assert!(n_max_heterogeneous(&ok, 0.0, 0.01, 0.00834, viking_seek).is_err());
        assert!(n_max_heterogeneous(&ok, 1.0, 0.0, 0.00834, viking_seek).is_err());
    }

    #[test]
    fn validation() {
        assert!(MixedRoundModel::new(0.0, 0.0, vec![]).is_err());
        assert!(MixedRoundModel::new(-1.0, 0.00834, vec![]).is_err());
        assert!(discrete_capacity(
            continuous_transfer(),
            discrete_transfer(),
            10,
            0.0,
            0.01,
            0.00834,
            viking_seek
        )
        .is_err());
        assert!(discrete_capacity(
            continuous_transfer(),
            discrete_transfer(),
            10,
            1.0,
            0.0,
            0.00834,
            viking_seek
        )
        .is_err());
    }
}
