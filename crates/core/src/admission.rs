//! Admission-control searches and lookup tables (eq. 3.1.7, eq. 3.3.6, §5).
//!
//! Both `N_max` definitions are maxima of a monotone predicate — the
//! quality bound degrades as `N` grows — so a linear upward scan with a
//! hard cap is exact, simple and fast (each probe costs one Chernoff
//! optimization, microseconds). §5 suggests precomputing a lookup table of
//! `N_max` per tolerance threshold so the run-time admission decision is a
//! table lookup; [`AdmissionTable`] is that table.

use crate::CoreError;

/// Hard cap on the admission search: no single disk round can hold more
/// requests than this in any configuration this model targets.
pub const N_SEARCH_CAP: u32 = 100_000;

/// Largest `n` with `quality(n) ≤ threshold`, where `quality` is
/// nondecreasing in `n` (e.g. `p_late(·, t)` or `p_error(·, t, M, g)`).
/// Returns 0 if even `n = 1` violates the threshold.
///
/// The scan is linear from 1 but exits as soon as the (monotone) bound
/// crosses the threshold; for realistic parameters that is < 100 probes.
pub fn n_max<F: FnMut(u32) -> f64>(mut quality: F, threshold: f64) -> u32 {
    let mut best = 0;
    for n in 1..=N_SEARCH_CAP {
        if quality(n) <= threshold {
            best = n;
        } else {
            break;
        }
    }
    best
}

/// Candidate block evaluated per parallel round of the admission scans:
/// wide enough to keep every worker busy past the ramp-up, narrow enough
/// that the overshoot past the first violation stays a handful of probes.
fn scan_block(jobs: usize) -> usize {
    (jobs * 8).max(32)
}

/// [`n_max`] with the candidate probes fanned out across the worker
/// pool. Returns exactly what the serial scan returns: candidates are
/// evaluated in fixed blocks and the answer is read off the *first*
/// violation in candidate order, so scheduling cannot change the result
/// — only non-monotone `quality` past the first violation is probed
/// differently, and those probes never influence the answer.
///
/// Worth it when one probe costs a Chernoff optimization (µs–ms);
/// pointless for trivially cheap bounds.
pub fn n_max_par<F: Fn(u32) -> f64 + Sync>(quality: F, threshold: f64) -> u32 {
    let mut from = 0u32;
    while from < N_SEARCH_CAP {
        let block = scan_block(mzd_par::jobs()).min((N_SEARCH_CAP - from) as usize);
        let probes = mzd_par::par_map_indexed(block, |k| quality(from + 1 + k as u32));
        // NaN counts as a violation, exactly like the serial scan's
        // `quality(n) <= threshold` failing.
        if let Some(k) = probes.iter().position(|&q| !(q <= threshold)) {
            return from + k as u32;
        }
        from += block as u32;
    }
    N_SEARCH_CAP
}

/// A precomputed tolerance → `N_max` lookup table (§5: "a lookup table
/// with precomputed values of N_max for different tolerance thresholds …
/// incurs almost no run-time overhead").
///
/// Thresholds are stored ascending; looking up a tolerance returns the
/// `N_max` of the largest table threshold that does not exceed it.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionTable {
    thresholds: Vec<f64>,
    n_max: Vec<u32>,
}

impl AdmissionTable {
    /// Build the table by evaluating the monotone `quality` bound once per
    /// threshold. `thresholds` must be strictly ascending and in `(0, 1]`.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for an empty, unsorted or out-of-range
    /// threshold list.
    pub fn build<F: FnMut(u32) -> f64>(
        thresholds: &[f64],
        mut quality: F,
    ) -> Result<Self, CoreError> {
        Self::validate(thresholds)?;
        // The quality bound is monotone in n, so N_max is nondecreasing in
        // the threshold: resume each search where the previous stopped.
        let mut n_max_col = Vec::with_capacity(thresholds.len());
        let mut n = 0u32;
        for &thr in thresholds {
            while n < N_SEARCH_CAP && quality(n + 1) <= thr {
                n += 1;
            }
            n_max_col.push(n);
        }
        Ok(Self {
            thresholds: thresholds.to_vec(),
            n_max: n_max_col,
        })
    }

    /// [`Self::build`] with the quality probes fanned out across the
    /// worker pool. Candidates are evaluated in blocks until one fails
    /// the *largest* threshold, caching every probe; the serial resumed
    /// scan then replays over the cache. Since the serial scan never
    /// probes past the largest threshold's first violation, the cache
    /// covers everything it reads and the resulting table is identical.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for an empty, unsorted or out-of-range
    /// threshold list.
    pub fn build_par<F: Fn(u32) -> f64 + Sync>(
        thresholds: &[f64],
        quality: F,
    ) -> Result<Self, CoreError> {
        Self::validate(thresholds)?;
        let thr_max = *thresholds.last().expect("validated non-empty");
        let mut cache: Vec<f64> = Vec::new();
        let mut crossed = false;
        while !crossed && (cache.len() as u32) < N_SEARCH_CAP {
            let from = cache.len() as u32;
            let block = scan_block(mzd_par::jobs()).min((N_SEARCH_CAP - from) as usize);
            let probes = mzd_par::par_map_indexed(block, |k| quality(from + 1 + k as u32));
            crossed = probes.iter().any(|&q| !(q <= thr_max));
            cache.extend(probes);
        }
        let mut n_max_col = Vec::with_capacity(thresholds.len());
        let mut n = 0u32;
        for &thr in thresholds {
            while n < N_SEARCH_CAP && cache.get(n as usize).is_some_and(|&q| q <= thr) {
                n += 1;
            }
            n_max_col.push(n);
        }
        Ok(Self {
            thresholds: thresholds.to_vec(),
            n_max: n_max_col,
        })
    }

    fn validate(thresholds: &[f64]) -> Result<(), CoreError> {
        if thresholds.is_empty() {
            return Err(CoreError::Invalid("threshold list is empty".into()));
        }
        let mut prev = 0.0;
        for &t in thresholds {
            if !(t > prev) || t > 1.0 {
                return Err(CoreError::Invalid(format!(
                    "thresholds must be strictly ascending in (0, 1], got {t} after {prev}"
                )));
            }
            prev = t;
        }
        Ok(())
    }

    /// The admission limit for the given tolerance: the `N_max` of the
    /// largest stored threshold `≤ tolerance` (0 if the tolerance is below
    /// every stored threshold — conservative by construction).
    #[must_use]
    pub fn lookup(&self, tolerance: f64) -> u32 {
        match self
            .thresholds
            .partition_point(|&t| t <= tolerance)
            .checked_sub(1)
        {
            Some(i) => self.n_max[i],
            None => 0,
        }
    }

    /// The stored (threshold, `N_max`) rows.
    pub fn rows(&self) -> impl Iterator<Item = (f64, u32)> + '_ {
        self.thresholds
            .iter()
            .copied()
            .zip(self.n_max.iter().copied())
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.thresholds.len()
    }

    /// Whether the table is empty (never after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.thresholds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_max_of_linear_quality() {
        // quality(n) = n/100 → N_max(0.25) = 25.
        assert_eq!(n_max(|n| f64::from(n) / 100.0, 0.25), 25);
        assert_eq!(n_max(|n| f64::from(n) / 100.0, 1.0), 100);
        // Threshold below quality(1).
        assert_eq!(n_max(|n| f64::from(n) / 100.0, 0.001), 0);
    }

    #[test]
    fn n_max_counts_evaluations_lazily() {
        let mut evals = 0;
        let _ = n_max(
            |n| {
                evals += 1;
                f64::from(n) / 10.0
            },
            0.3,
        );
        // Stops at the first violation: n = 1, 2, 3 pass, 4 fails.
        assert_eq!(evals, 4);
    }

    #[test]
    fn parallel_n_max_matches_serial() {
        let quality = |n: u32| f64::from(n) / 100.0;
        for thr in [0.001, 0.25, 0.573, 1.0] {
            assert_eq!(n_max_par(quality, thr), n_max(quality, thr), "thr {thr}");
        }
        // Unbounded quality: both scans hit the cap.
        assert_eq!(n_max_par(|_| 0.0, 0.5), n_max(|_| 0.0, 0.5));
        // NaN is a violation in both scans.
        let spiky = |n: u32| {
            if n == 7 {
                f64::NAN
            } else {
                f64::from(n) / 100.0
            }
        };
        assert_eq!(n_max_par(spiky, 0.5), 6);
        assert_eq!(n_max(spiky, 0.5), 6);
    }

    #[test]
    fn parallel_table_matches_serial() {
        let quality = |n: u32| (f64::from(n) / 37.0).powi(2);
        let thresholds = [0.01, 0.1, 0.5, 0.9];
        let serial = AdmissionTable::build(&thresholds, quality).unwrap();
        let parallel = AdmissionTable::build_par(&thresholds, quality).unwrap();
        assert_eq!(serial, parallel);
        assert!(AdmissionTable::build_par(&[], quality).is_err());
        assert!(AdmissionTable::build_par(&[0.5, 0.2], quality).is_err());
    }

    #[test]
    fn table_build_and_lookup() {
        let quality = |n: u32| f64::from(n) / 100.0;
        let t = AdmissionTable::build(&[0.01, 0.05, 0.10, 0.50], quality).unwrap();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.lookup(0.01), 1);
        assert_eq!(t.lookup(0.05), 5);
        assert_eq!(t.lookup(0.07), 5); // rounds down to the 0.05 row
        assert_eq!(t.lookup(0.5), 50);
        assert_eq!(t.lookup(0.99), 50); // beyond the last row: last row
        assert_eq!(t.lookup(0.001), 0); // below the first row: conservative 0
        let rows: Vec<_> = t.rows().collect();
        assert_eq!(rows[0], (0.01, 1));
        assert_eq!(rows[3], (0.50, 50));
    }

    #[test]
    fn table_resumed_search_matches_independent_search() {
        let quality = |n: u32| (f64::from(n) / 37.0).powi(2);
        let t = AdmissionTable::build(&[0.01, 0.1, 0.5, 0.9], quality).unwrap();
        for (thr, nm) in t.rows() {
            assert_eq!(nm, n_max(quality, thr), "threshold {thr}");
        }
    }

    #[test]
    fn table_rejects_bad_thresholds() {
        let q = |_: u32| 0.5;
        assert!(AdmissionTable::build(&[], q).is_err());
        assert!(AdmissionTable::build(&[0.5, 0.2], q).is_err());
        assert!(AdmissionTable::build(&[0.0, 0.5], q).is_err());
        assert!(AdmissionTable::build(&[0.5, 1.5], q).is_err());
        assert!(AdmissionTable::build(&[0.5, 0.5], q).is_err());
    }
}
