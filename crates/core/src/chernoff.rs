//! The round service-time model and its Chernoff tail bound
//! (§3.1, eq. 3.1.1–3.1.6; §3.2, eq. 3.2.11–3.2.12).
//!
//! The total service time of a round with `N` requests is
//!
//! ```text
//! T_N = SEEK + Σᵢ T_rot,i + Σᵢ T_trans,i            (eq. 3.1.1)
//! ```
//!
//! with `SEEK` the Oyang worst-case constant, `T_rot,i ~ U(0, ROT)` i.i.d.
//! and `T_trans,i` i.i.d. Gamma (the moment-matched transfer model). Its
//! log-MGF is the sum of the component log-MGFs, and Chernoff's bound
//!
//! ```text
//! P[T_N ≥ t] ≤ inf_{θ≥0} e^{−θt}·M(θ) = inf_{θ≥0} exp(ln M(θ) − θt)
//! ```
//!
//! is evaluated by minimizing the *exponent* with Brent's method over the
//! open interval `(0, α)` where the Gamma MGF exists. The exponent is
//! convex (log-MGFs are convex, the `−θt` term is linear), so the local
//! minimum Brent finds is the global infimum.

use crate::transfer::TransferTimeModel;
use crate::{transform, CoreError};
use mzd_numerics::minimize::brent_minimize;
use std::sync::OnceLock;

/// Cached global-registry handles for the minimizer hot path (one lock
/// per process instead of one per bound evaluation).
fn chernoff_metrics() -> &'static (mzd_telemetry::Histogram, mzd_telemetry::Counter) {
    static METRICS: OnceLock<(mzd_telemetry::Histogram, mzd_telemetry::Counter)> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = mzd_telemetry::global();
        // Execution-scoped: how many evaluations the minimizer spends
        // (and which candidate points get evaluated at all) depends on
        // parallel range splitting, not on the modeled system.
        (
            g.execution_histogram("core.chernoff.iterations"),
            g.execution_counter("core.chernoff.converge_fail"),
        )
    })
}

/// The distribution model of one round's total service time for a fixed
/// number of requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundService {
    /// Accumulated SCAN seek constant `SEEK` for this `n`, seconds.
    seek: f64,
    /// Revolution time `ROT`, seconds.
    rot: f64,
    /// Per-request transfer-time Gamma.
    transfer: TransferTimeModel,
    /// Number of requests `N` in the round.
    n: u32,
}

/// Result of a Chernoff tail evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChernoffBound {
    /// The bound on `P[T_N ≥ t]`, clamped into `[0, 1]`.
    pub probability: f64,
    /// The optimizing exponent `θ*` (0 when the bound is vacuous).
    pub theta: f64,
}

impl RoundService {
    /// Build the model.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for non-positive `rot` or negative `seek`.
    pub fn new(
        seek: f64,
        rot: f64,
        transfer: TransferTimeModel,
        n: u32,
    ) -> Result<Self, CoreError> {
        if !(rot > 0.0) || !rot.is_finite() {
            return Err(CoreError::Invalid(format!(
                "rotation time must be positive, got {rot}"
            )));
        }
        if !(seek >= 0.0) || !seek.is_finite() {
            return Err(CoreError::Invalid(format!(
                "seek constant must be nonnegative, got {seek}"
            )));
        }
        Ok(Self {
            seek,
            rot,
            transfer,
            n,
        })
    }

    /// Number of requests in the round.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The accumulated-seek constant `SEEK`, seconds.
    #[must_use]
    pub fn seek_constant(&self) -> f64 {
        self.seek
    }

    /// Revolution time `ROT`, seconds.
    #[must_use]
    pub fn rotation_time(&self) -> f64 {
        self.rot
    }

    /// The per-request transfer-time model.
    #[must_use]
    pub fn transfer(&self) -> &TransferTimeModel {
        &self.transfer
    }

    /// `ln M(θ)` of `T_N` (eq. 3.1.4 with `s = −θ`, in logs):
    /// `θ·SEEK + N·ln((e^{θROT}−1)/(θROT)) + N·β·ln(α/(α−θ))`.
    /// `+∞` for `θ ≥ α`.
    #[must_use]
    pub fn log_mgf(&self, theta: f64) -> f64 {
        let nf = f64::from(self.n);
        transform::log_mgf_constant(theta, self.seek)
            + nf * transform::log_mgf_uniform(theta, self.rot)
            + nf * self.transfer.log_mgf(theta)
    }

    /// Exact mean `E[T_N] = SEEK + N·(ROT/2 + E[T_trans])`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.seek + f64::from(self.n) * (self.rot / 2.0 + self.transfer.mean())
    }

    /// Exact variance `Var[T_N] = N·(ROT²/12 + Var[T_trans])`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        f64::from(self.n) * (self.rot * self.rot / 12.0 + self.transfer.variance())
    }

    /// The Chernoff bound on `P[T_N ≥ t]` (eq. 3.1.5–3.1.6 / 3.2.12).
    ///
    /// For `n == 0` the round is the deterministic `SEEK` (which is 0), so
    /// the tail is exactly 0 or 1. For `t ≤ E[T_N]` the infimum is at
    /// `θ = 0` and the bound is the vacuous 1.
    #[must_use]
    pub fn p_late_bound(&self, t: f64) -> ChernoffBound {
        if self.n == 0 {
            return ChernoffBound {
                probability: if t > self.seek { 0.0 } else { 1.0 },
                theta: 0.0,
            };
        }
        // The bound can only be nontrivial past the mean.
        if t <= self.mean() {
            return ChernoffBound {
                probability: 1.0,
                theta: 0.0,
            };
        }
        let alpha = self.transfer.alpha();
        let objective = |theta: f64| self.log_mgf(theta) - theta * t;
        let upper = alpha * (1.0 - 1e-9);
        let (iterations, converge_fail) = chernoff_metrics();
        let _span = mzd_telemetry::span!("core.chernoff.minimize");
        let m = brent_minimize(objective, 0.0, upper, 1e-12).unwrap_or_else(|e| {
            converge_fail.inc();
            panic!("interval (0, alpha) is valid by construction: {e}")
        });
        iterations.record(m.evaluations as f64);
        let exponent = m.value.min(0.0);
        ChernoffBound {
            probability: exponent.exp().min(1.0),
            theta: m.x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §3.1 worked example: single-zone disk, N = 27,
    /// SEEK = 0.10932 s, ROT = 8.34 ms, E[T_trans] = 0.02174 s,
    /// Var[T_trans] = 0.00011815 s².
    fn paper_31_model(n: u32) -> RoundService {
        let seek = mzd_disk::oyang::seek_bound(
            &mzd_disk::SeekCurve::paper_form(1.867e-3, 1.315e-4, 3.8635e-3, 2.1e-6, 1344.0)
                .unwrap(),
            6720,
            n,
        );
        let transfer = TransferTimeModel::from_moments(0.02174, 0.00011815).unwrap();
        RoundService::new(seek, 0.00834, transfer, n).unwrap()
    }

    #[test]
    fn reproduces_paper_31_example_n27() {
        // Paper: p_late ≈ 0.0103 for N = 27, t = 1 s.
        let b = paper_31_model(27).p_late_bound(1.0);
        assert!(
            (b.probability - 0.0103).abs() < 0.0015,
            "p_late(27) = {}",
            b.probability
        );
        assert!(b.theta > 0.0);
    }

    #[test]
    fn reproduces_paper_31_example_n26() {
        // Paper: p_late ≈ 0.00225 for N = 26.
        let b = paper_31_model(26).p_late_bound(1.0);
        assert!(
            (b.probability - 0.00225).abs() < 0.0006,
            "p_late(26) = {}",
            b.probability
        );
    }

    #[test]
    fn mean_and_variance_formulas() {
        let m = paper_31_model(27);
        let expected_mean = 0.109_317 + 27.0 * (0.00834 / 2.0 + 0.02174);
        assert!((m.mean() - expected_mean).abs() < 1e-4);
        let expected_var = 27.0 * (0.00834f64.powi(2) / 12.0 + 0.00011815);
        assert!((m.variance() - expected_var).abs() < 1e-9);
    }

    #[test]
    fn bound_is_monotone_decreasing_in_t() {
        let m = paper_31_model(27);
        let mut prev = 1.0;
        for i in 0..20 {
            let t = 0.85 + 0.025 * f64::from(i);
            let b = m.p_late_bound(t).probability;
            assert!(b <= prev + 1e-12, "t = {t}: {b} > {prev}");
            prev = b;
        }
    }

    #[test]
    fn bound_is_monotone_increasing_in_n() {
        let mut prev = 0.0;
        for n in 20..32 {
            let b = paper_31_model(n).p_late_bound(1.0).probability;
            assert!(b >= prev - 1e-12, "n = {n}: {b} < {prev}");
            prev = b;
        }
    }

    #[test]
    fn vacuous_below_the_mean() {
        let m = paper_31_model(27);
        let b = m.p_late_bound(m.mean() * 0.99);
        assert_eq!(b.probability, 1.0);
        assert_eq!(b.theta, 0.0);
    }

    #[test]
    fn empty_round_is_deterministic() {
        let transfer = TransferTimeModel::from_moments(0.02, 1e-4).unwrap();
        let m = RoundService::new(0.0, 0.00834, transfer, 0).unwrap();
        assert_eq!(m.p_late_bound(0.5).probability, 0.0);
        assert_eq!(m.p_late_bound(0.0).probability, 1.0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn markov_sanity_vs_exponential_tail() {
        // For a single exponential-ish Gamma the Chernoff bound must be at
        // least the exact tail: P[X ≥ t] for Gamma(rate α, shape β).
        let transfer = TransferTimeModel::from_moments(0.02, 0.0004).unwrap(); // β = 1: exponential
        let m = RoundService::new(0.0, 1e-9, transfer, 1).unwrap();
        for &t in &[0.05, 0.1, 0.2] {
            let exact = (-t / 0.02f64).exp(); // P[Exp(mean 0.02) ≥ t]
            let bound = m.p_late_bound(t).probability;
            assert!(
                bound >= exact * 0.99,
                "t = {t}: bound {bound} below exact {exact}"
            );
            // For an exponential the optimized Chernoff bound is exactly
            // (t/m)·e^{1−t/m} = exact · e·(t/m); allow a small slack for
            // the (negligible but nonzero) rotational term in the model.
            assert!(
                bound <= exact * (t / 0.02) * std::f64::consts::E * 1.02,
                "t = {t}: bound {bound} vs exact {exact}"
            );
        }
    }

    #[test]
    fn log_mgf_zero_is_zero() {
        let m = paper_31_model(10);
        assert_eq!(m.log_mgf(0.0), 0.0);
        assert!(m.log_mgf(1.0) > 0.0); // positive for θ > 0 (positive mean)
        assert_eq!(m.log_mgf(m.transfer.alpha() + 1.0), f64::INFINITY);
    }

    #[test]
    fn invalid_construction_rejected() {
        let transfer = TransferTimeModel::from_moments(0.02, 1e-4).unwrap();
        assert!(RoundService::new(0.0, 0.0, transfer, 1).is_err());
        assert!(RoundService::new(-1.0, 0.00834, transfer, 1).is_err());
        assert!(RoundService::new(f64::NAN, 0.00834, transfer, 1).is_err());
    }
}
