//! Stochastic service guarantees for continuous data on multi-zone disks.
//!
//! A production-oriented implementation of the analytic model of
//! **Nerjes, Muth & Weikum, "Stochastic Service Guarantees for Continuous
//! Data on Multi-Zone Disks", PODS 1997**: given a disk (crate
//! [`mzd_disk`]), a fragment-size workload (crate [`mzd_workload`]) and a
//! round length, the model bounds
//!
//! 1. `p_late(N, t)` — the probability that a SCAN round serving `N`
//!    requests overruns the round length `t` (§3.1–3.2, Chernoff bound on
//!    the Laplace–Stieltjes transform of the round service time);
//! 2. `p_glitch(N, t)` — the probability that a *particular* stream
//!    glitches in one round (§3.3, eq. 3.3.3);
//! 3. `p_error(N, t, M, g)` — the probability that a stream of `M` rounds
//!    suffers `g` or more glitches (§3.3, Hagerup–Rüb binomial tail);
//!
//! and derives the admission limits `N_max` (eq. 3.1.7, 3.3.6) plus the
//! deterministic worst-case baseline (eq. 4.1) for comparison.
//!
//! # Quick example
//!
//! ```
//! use mzd_core::GuaranteeModel;
//!
//! // The paper's reference configuration: Quantum Viking 2.1, Gamma
//! // fragments with mean 200 KB and standard deviation 100 KB.
//! let model = GuaranteeModel::paper_reference().unwrap();
//!
//! // How many concurrent streams keep the per-round overrun probability
//! // under 1% with 1-second rounds? (The paper's answer: 26.)
//! let n_max = model.n_max_late(1.0, 0.01).unwrap();
//! assert_eq!(n_max, 26);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod baselines;
pub mod cdf;
pub mod chernoff;
pub mod exact;
pub mod glitch;
pub mod mixed;
pub mod planning;
pub mod saddlepoint;
pub mod transfer;
pub mod transform;
pub mod worstcase;

pub use admission::AdmissionTable;
pub use baselines::{BaselineTail, SeekMoments, TailMethod};
pub use cdf::ServiceTimeCdf;
pub use chernoff::{ChernoffBound, RoundService};
pub use exact::p_late_exact;
pub use mixed::MixedRoundModel;
pub use planning::{disks_for_population, min_round_length, round_length_sweep, RoundLengthPlan};
pub use saddlepoint::{p_late_saddlepoint, SaddlepointTail};
pub use transfer::{TransferTimeDensity, TransferTimeModel, ZoneHandling};
pub use worstcase::{WorstCaseInputs, WorstCaseRate};

use mzd_disk::{oyang, Disk};

/// Errors from the analytic model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model parameter was invalid.
    Invalid(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Invalid(msg) => write!(f, "invalid model parameters: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<mzd_numerics::NumericsError> for CoreError {
    fn from(e: mzd_numerics::NumericsError) -> Self {
        CoreError::Invalid(e.to_string())
    }
}

/// The complete service-guarantee model for one disk and one fragment-size
/// workload: the crate's main entry point.
///
/// All probabilities returned are *upper bounds* (the model is
/// conservative by construction — Figure 1 of the paper); all `N` values
/// are per disk, with load assumed balanced across disks by round-robin
/// striping (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GuaranteeModel {
    disk: Disk,
    size_mean: f64,
    size_variance: f64,
    handling: ZoneHandling,
    transfer: TransferTimeModel,
}

impl GuaranteeModel {
    /// Build a model for `disk` and Gamma fragments with the given moments
    /// (bytes, bytes²), handling zones per `handling`.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for non-positive moments or a zone handling
    /// incompatible with the disk (continuous on a single-zone drive).
    pub fn new(
        disk: Disk,
        size_mean: f64,
        size_variance: f64,
        handling: ZoneHandling,
    ) -> Result<Self, CoreError> {
        let transfer = TransferTimeModel::multi_zone(&disk, size_mean, size_variance, handling)?;
        Ok(Self {
            disk,
            size_mean,
            size_variance,
            handling,
            transfer,
        })
    }

    /// The paper's reference configuration (Table 1): Quantum Viking 2.1
    /// with Gamma(mean 200 KB, sd 100 KB) fragments, exact discrete zone
    /// handling.
    ///
    /// # Errors
    /// Never in practice; propagated for uniformity.
    pub fn paper_reference() -> Result<Self, CoreError> {
        let disk = mzd_disk::profiles::quantum_viking_2_1()
            .build()
            .map_err(|e| CoreError::Invalid(e.to_string()))?;
        Self::new(disk, 200_000.0, 1e10, ZoneHandling::Discrete)
    }

    /// The same model with its transfer time inflated by a fault model
    /// (`mzd_fault::FaultModel`): media-error rereads, transient stalls
    /// and remap detours enter as the moment-matched mixture of
    /// [`TransferTimeModel::with_faults`], and every downstream guarantee
    /// — `p_late`, `n_max`, the admission tables, the service-time CDF —
    /// then prices the faults automatically. With a non-trivial fault
    /// model the admitted `n_max` shrinks relative to the clean model.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for an out-of-range fault model.
    pub fn with_faults(&self, faults: &mzd_fault::FaultModel) -> Result<Self, CoreError> {
        let full_seek = self.disk.seek_curve().max_seek_time(self.disk.cylinders());
        let transfer = self
            .transfer
            .with_faults(faults, self.disk.rotation_time(), full_seek)?;
        Ok(Self {
            transfer,
            ..self.clone()
        })
    }

    /// The disk this model describes.
    #[must_use]
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Fragment-size mean, bytes.
    #[must_use]
    pub fn size_mean(&self) -> f64 {
        self.size_mean
    }

    /// Fragment-size variance, bytes².
    #[must_use]
    pub fn size_variance(&self) -> f64 {
        self.size_variance
    }

    /// The zone handling in effect.
    #[must_use]
    pub fn zone_handling(&self) -> ZoneHandling {
        self.handling
    }

    /// The moment-matched per-request transfer-time Gamma.
    #[must_use]
    pub fn transfer_model(&self) -> &TransferTimeModel {
        &self.transfer
    }

    /// The Oyang `SEEK` constant for a round of `n` requests, seconds.
    #[must_use]
    pub fn seek_constant(&self, n: u32) -> f64 {
        oyang::seek_bound(self.disk.seek_curve(), self.disk.cylinders(), n)
    }

    /// The round service-time model for `n` requests.
    ///
    /// # Errors
    /// Never for a validly-constructed model; propagated for uniformity.
    pub fn round_service(&self, n: u32) -> Result<RoundService, CoreError> {
        RoundService::new(
            self.seek_constant(n),
            self.disk.rotation_time(),
            self.transfer,
            n,
        )
    }

    /// Bound on `P[round of n requests overruns t]` — `b_late(n, t)` of
    /// eq. 3.1.6 / 3.2.12.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive round length.
    pub fn p_late_bound(&self, n: u32, t: f64) -> Result<f64, CoreError> {
        validate_round_length(t)?;
        Ok(self.round_service(n)?.p_late_bound(t).probability)
    }

    /// Saddlepoint (Lugannani–Rice) *estimate* of `P[T_N ≥ t]` — near-
    /// exact, but not a bound; see [`saddlepoint`]. Use it for capacity
    /// studies; use [`Self::p_late_bound`] for guarantees.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive round length.
    pub fn p_late_estimate(&self, n: u32, t: f64) -> Result<f64, CoreError> {
        validate_round_length(t)?;
        Ok(saddlepoint::p_late_saddlepoint(&self.round_service(n)?, t)?.probability)
    }

    /// *Exact* `P[T_N ≥ t]` for the model, by Gil–Pelaez inversion of the
    /// characteristic function (see [`exact`]). The ground truth for the
    /// modeled distribution — slower than the bound, noise-free unlike a
    /// simulation.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive round length.
    pub fn p_late_exact(&self, n: u32, t: f64) -> Result<f64, CoreError> {
        validate_round_length(t)?;
        exact::p_late_exact(&self.round_service(n)?, t)
    }

    /// The predicted CDF `F_n(t) = P[T_n ≤ t]` at a single point, by the
    /// exact inversion — the complement of [`Self::p_late_exact`], with
    /// `t ≤ 0` mapping to 0. This is the probability-integral-transform
    /// primitive for online conformance checking; for repeated
    /// evaluation at a fixed `n` prefer the tabulated
    /// [`cdf::ServiceTimeCdf`].
    ///
    /// # Errors
    /// Numeric errors propagated from the exact inversion.
    pub fn service_time_cdf(&self, n: u32, t: f64) -> Result<f64, CoreError> {
        if !(t > 0.0) {
            return Ok(0.0);
        }
        Ok((1.0 - exact::p_late_exact(&self.round_service(n)?, t)?).clamp(0.0, 1.0))
    }

    /// Bound on the per-round glitch probability of one stream among `n` —
    /// `b_glitch(n, t)` of eq. 3.3.3.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive round length.
    pub fn p_glitch_bound(&self, n: u32, t: f64) -> Result<f64, CoreError> {
        validate_round_length(t)?;
        Ok(glitch::glitch_probability_bound(n, |k| {
            self.round_service(k)
                .map(|r| r.p_late_bound(t).probability)
                .unwrap_or(1.0)
        }))
    }

    /// Bound on `P[stream of m rounds suffers ≥ g glitches]` — `p_error`
    /// of eq. 3.3.5 (Hagerup–Rüb over the per-round glitch bound).
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive round length.
    pub fn p_error_bound(&self, n: u32, t: f64, m: u64, g: u64) -> Result<f64, CoreError> {
        let p_glitch = self.p_glitch_bound(n, t)?;
        Ok(glitch::stream_error_bound(p_glitch, m, g))
    }

    /// The fully *exact* model pipeline for `p_error`: exact per-round
    /// tails (Gil-Pelaez) through eq. 3.3.2 and the exact binomial tail -
    /// no Chernoff step anywhere. Ground truth for the modeled system;
    /// `O(n)` characteristic-function inversions per call.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive round length.
    pub fn p_error_exact(&self, n: u32, t: f64, m: u64, g: u64) -> Result<f64, CoreError> {
        validate_round_length(t)?;
        let mut err = None;
        let p_glitch = glitch::glitch_probability_bound(n, |k| {
            match self
                .round_service(k)
                .and_then(|r| exact::p_late_exact(&r, t))
            {
                Ok(p) => p,
                Err(e) => {
                    err = Some(e);
                    1.0
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        Ok(glitch::binomial_tail_exact(p_glitch, m, g))
    }

    /// `N_max` under the per-round overrun criterion (eq. 3.1.7):
    /// the largest `N` with `p_late(N, t) ≤ delta`.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive round length or a
    /// threshold outside `(0, 1]`.
    pub fn n_max_late(&self, t: f64, delta: f64) -> Result<u32, CoreError> {
        validate_threshold(delta)?;
        validate_round_length(t)?;
        Ok(admission::n_max_par(
            |n| {
                self.round_service(n)
                    .map(|r| r.p_late_bound(t).probability)
                    .unwrap_or(1.0)
            },
            delta,
        ))
    }

    /// `N_max` under the per-stream glitch-rate criterion (eq. 3.3.6):
    /// the largest `N` with `p_error(N, t, m, g) ≤ epsilon`.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for invalid `t` or `epsilon`.
    pub fn n_max_error(&self, t: f64, m: u64, g: u64, epsilon: f64) -> Result<u32, CoreError> {
        validate_threshold(epsilon)?;
        validate_round_length(t)?;
        Ok(admission::n_max_par(
            |n| {
                self.p_error_bound(n, t, m, g)
                    .expect("round length validated above")
            },
            epsilon,
        ))
    }

    /// Precompute the §5 admission lookup table over per-round overrun
    /// tolerances.
    ///
    /// # Errors
    /// Propagates threshold-validation errors.
    pub fn admission_table_late(
        &self,
        t: f64,
        thresholds: &[f64],
    ) -> Result<AdmissionTable, CoreError> {
        validate_round_length(t)?;
        AdmissionTable::build_par(thresholds, |n| {
            self.p_late_bound(n, t).expect("validated above")
        })
    }

    /// Precompute the §5 admission lookup table over per-stream `p_error`
    /// tolerances.
    ///
    /// # Errors
    /// Propagates threshold-validation errors.
    pub fn admission_table_error(
        &self,
        t: f64,
        m: u64,
        g: u64,
        thresholds: &[f64],
    ) -> Result<AdmissionTable, CoreError> {
        validate_round_length(t)?;
        AdmissionTable::build_par(thresholds, |n| {
            self.p_error_bound(n, t, m, g).expect("validated above")
        })
    }

    /// The deterministic worst-case admission limit (eq. 4.1) for this
    /// disk and workload, for contrast with the stochastic limits.
    ///
    /// # Errors
    /// Propagates input-derivation failures.
    pub fn n_max_worst_case(
        &self,
        t: f64,
        size_percentile: f64,
        rate: WorstCaseRate,
    ) -> Result<u32, CoreError> {
        let sizes = mzd_workload::SizeDistribution::gamma(self.size_mean, self.size_variance)
            .map_err(|e| CoreError::Invalid(e.to_string()))?;
        let inputs = worstcase::worst_case_inputs(&self.disk, &sizes, size_percentile, rate)?;
        worstcase::n_max_worst_case(t, &inputs)
    }
}

fn validate_threshold(x: f64) -> Result<(), CoreError> {
    if !(x > 0.0) || x > 1.0 {
        return Err(CoreError::Invalid(format!(
            "probability threshold must be in (0, 1], got {x}"
        )));
    }
    Ok(())
}

fn validate_round_length(t: f64) -> Result<(), CoreError> {
    if !(t > 0.0) || !t.is_finite() {
        return Err(CoreError::Invalid(format!(
            "round length must be positive, got {t}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GuaranteeModel {
        GuaranteeModel::paper_reference().unwrap()
    }

    #[test]
    fn paper_32_example_p_late() {
        // §3.2: on the Table 1 disk with t = 1 s, p_late(26) ≈ 0.00324 and
        // p_late(27) ≈ 0.0133.
        let m = model();
        let p26 = m.p_late_bound(26, 1.0).unwrap();
        let p27 = m.p_late_bound(27, 1.0).unwrap();
        assert!((p26 - 0.00324).abs() < 0.001, "p_late(26) = {p26}");
        assert!((p27 - 0.0133).abs() < 0.004, "p_late(27) = {p27}");
    }

    #[test]
    fn paper_32_n_max_under_one_percent() {
        // §3.2: "if the goal is to limit the probability of one round
        // being late by 1 percent, then N = 26 is the maximum".
        assert_eq!(model().n_max_late(1.0, 0.01).unwrap(), 26);
    }

    #[test]
    fn fault_inflation_shrinks_admission() {
        // A 1% media-error profile must strictly lower n_max: every
        // reread burns a rotation plus a full re-transfer, so the
        // inflated transfer law admits fewer streams at the same risk.
        let clean = model();
        let faults = mzd_fault::FaultModel {
            p_media: 0.01,
            ..mzd_fault::FaultModel::clean()
        };
        let faulty = clean.with_faults(&faults).unwrap();
        assert!(faulty.transfer_model().mean() > clean.transfer_model().mean());
        assert!(faulty.transfer_model().variance() > clean.transfer_model().variance());
        // Glitch-rate criterion (eq. 3.3.6): the paper's 28 drops to 27.
        let n_clean = clean.n_max_error(1.0, 1200, 12, 0.01).unwrap();
        let n_faulty = faulty.n_max_error(1.0, 1200, 12, 0.01).unwrap();
        assert_eq!(n_clean, 28);
        assert!(n_faulty < n_clean, "faulty n_max {n_faulty} ≥ {n_clean}");
        // Overrun criterion: 1% media errors eat most of the 0.01-margin
        // (p_late(26) roughly doubles) without crossing it; the `flaky`
        // preset's added stalls and remaps push it over.
        assert_eq!(clean.n_max_late(1.0, 0.01).unwrap(), 26);
        assert!(faulty.p_late_bound(26, 1.0).unwrap() > 2.0 * clean.p_late_bound(26, 1.0).unwrap());
        let flaky = mzd_fault::FaultModel::from_config(
            &mzd_fault::FaultConfig::preset("flaky").expect("known preset"),
        );
        let degraded = clean.with_faults(&flaky).unwrap();
        assert!(degraded.n_max_late(1.0, 0.01).unwrap() < 26);
        // A clean fault model is the identity.
        let same = clean.with_faults(&mzd_fault::FaultModel::clean()).unwrap();
        assert_eq!(same.n_max_error(1.0, 1200, 12, 0.01).unwrap(), n_clean);
    }

    #[test]
    fn paper_33_example_p_error() {
        // §3.3: N = 28, M = 1200, g = 12 → p_error ≤ 0.14e-3.
        let p = model().p_error_bound(28, 1.0, 1200, 12).unwrap();
        assert!(p < 1e-3, "p_error(28) = {p}");
        assert!(p > 1e-6, "p_error(28) = {p} suspiciously small");
    }

    #[test]
    fn paper_table_2_analytic_column() {
        // Table 2: p_error = 0.00014 at N=28, 0.318 at N=29, 1 at N=30+.
        let m = model();
        let p28 = m.p_error_bound(28, 1.0, 1200, 12).unwrap();
        let p29 = m.p_error_bound(29, 1.0, 1200, 12).unwrap();
        let p30 = m.p_error_bound(30, 1.0, 1200, 12).unwrap();
        assert!(
            (p28.log10() - (0.00014f64).log10()).abs() < 0.7,
            "p28 = {p28}"
        );
        #[allow(clippy::approx_constant)] // 0.318 is Table 2's value, not 1/pi
        let paper_p29 = 0.318;
        assert!((p29 - paper_p29).abs() < 0.15, "p29 = {p29}");
        assert!(p30 > 0.9, "p30 = {p30}");
    }

    #[test]
    fn paper_33_n_max_error() {
        // §4: "The analytic bound according to (3.3.6) would be 28".
        assert_eq!(model().n_max_error(1.0, 1200, 12, 0.01).unwrap(), 28);
    }

    #[test]
    fn worst_case_limits() {
        let m = model();
        assert_eq!(
            m.n_max_worst_case(1.0, 0.99, WorstCaseRate::Innermost)
                .unwrap(),
            10
        );
        assert_eq!(
            m.n_max_worst_case(1.0, 0.95, WorstCaseRate::MidRange)
                .unwrap(),
            14
        );
    }

    #[test]
    fn glitch_bound_below_late_bound() {
        // b_glitch averages b_late(k) over k ≤ N, so it is at most
        // b_late(N).
        let m = model();
        for n in [10u32, 20, 26, 30] {
            let g = m.p_glitch_bound(n, 1.0).unwrap();
            let l = m.p_late_bound(n, 1.0).unwrap();
            assert!(g <= l + 1e-12, "n = {n}: glitch {g} > late {l}");
        }
    }

    #[test]
    fn admission_tables_match_direct_searches() {
        let m = model();
        let table = m
            .admission_table_late(1.0, &[0.001, 0.01, 0.05, 0.2])
            .unwrap();
        for (thr, nm) in table.rows() {
            assert_eq!(nm, m.n_max_late(1.0, thr).unwrap(), "threshold {thr}");
        }
        let table = m
            .admission_table_error(1.0, 1200, 12, &[0.001, 0.01, 0.1])
            .unwrap();
        for (thr, nm) in table.rows() {
            assert_eq!(nm, m.n_max_error(1.0, 1200, 12, thr).unwrap());
        }
    }

    #[test]
    fn exact_p_error_pipeline_vs_table_2() {
        // The exact pipeline should land between the simulated Table 2
        // values and the Chernoff-bound column: near 0 at N = 28-29,
        // transitioning around N = 31.
        let m = model();
        let p28 = m.p_error_exact(28, 1.0, 1200, 12).unwrap();
        assert!(p28 < 1e-4, "exact p_error(28) = {p28}");
        let p31 = m.p_error_exact(31, 1.0, 1200, 12).unwrap();
        let p32 = m.p_error_exact(32, 1.0, 1200, 12).unwrap();
        assert!(p31 < p32, "monotone in N");
        assert!(p32 > 0.5, "exact p_error(32) = {p32} (paper sim: 0.454)");
        // Always dominated by the full Chernoff pipeline.
        for n in [28u32, 30, 32] {
            let exact = m.p_error_exact(n, 1.0, 1200, 12).unwrap();
            let bound = m.p_error_bound(n, 1.0, 1200, 12).unwrap();
            assert!(exact <= bound + 1e-9, "n = {n}: {exact} > {bound}");
        }
    }

    #[test]
    fn input_validation() {
        let m = model();
        assert!(m.p_late_bound(26, 0.0).is_err());
        assert!(m.p_glitch_bound(26, -1.0).is_err());
        assert!(m.n_max_late(1.0, 0.0).is_err());
        assert!(m.n_max_late(1.0, 1.5).is_err());
        assert!(m.n_max_late(0.0, 0.01).is_err());
        assert!(m.n_max_error(1.0, 1200, 12, 0.0).is_err());
        assert!(m.admission_table_late(0.0, &[0.01]).is_err());
        assert!(m.admission_table_error(-1.0, 1200, 12, &[0.01]).is_err());
    }

    #[test]
    fn accessors() {
        let m = model();
        assert_eq!(m.size_mean(), 200_000.0);
        assert_eq!(m.size_variance(), 1e10);
        assert_eq!(m.zone_handling(), ZoneHandling::Discrete);
        assert_eq!(m.disk().cylinders(), 6720);
        assert!(m.transfer_model().mean() > 0.0);
        assert!((m.seek_constant(27) - 0.10932).abs() < 5e-6);
    }

    #[test]
    fn zone_handling_changes_the_answer() {
        // The MeanRate flattening is optimistic: it admits at least as
        // many streams as the true multi-zone model.
        let disk = mzd_disk::profiles::quantum_viking_2_1().build().unwrap();
        let exact = GuaranteeModel::new(disk.clone(), 200_000.0, 1e10, ZoneHandling::Discrete)
            .unwrap()
            .n_max_late(1.0, 0.01)
            .unwrap();
        let flat = GuaranteeModel::new(disk, 200_000.0, 1e10, ZoneHandling::MeanRate)
            .unwrap()
            .n_max_late(1.0, 0.01)
            .unwrap();
        assert!(flat >= exact, "flat {flat} < exact {exact}");
    }

    #[test]
    fn longer_rounds_admit_more_streams() {
        let m = model();
        let n1 = m.n_max_late(1.0, 0.01).unwrap();
        let n2 = m.n_max_late(2.0, 0.01).unwrap();
        // Rotational and transfer demand scale linearly with N while the
        // per-round SEEK constant is amortized over more requests, and a
        // longer horizon also averages out variance — so doubling t more
        // than doubles N_max.
        assert!(n2 >= 2 * n1, "t=2s admits {n2} < 2x t=1s {n1}");
    }
}
