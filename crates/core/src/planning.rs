//! Provisioning helpers: the inverse problems of the guarantee model.
//!
//! The forward question (§3) is "given a configuration, how many streams?"
//! Operators just as often ask the inverses:
//!
//! * [`min_round_length`] — the shortest round that sustains `n` streams
//!   at a target overrun probability (shorter rounds mean lower startup
//!   latency and smaller client buffers, §2/§6);
//! * [`disks_for_population`] — how many disks a target stream population
//!   needs under a quality target;
//! * [`RoundLengthPlan`] — the full latency/buffer/capacity trade-off
//!   sweep behind choosing `t` (the round length is a configuration
//!   parameter "changing it would require all data to be re-fragmented",
//!   §2.3 — so it is chosen once, with care).

use crate::{CoreError, GuaranteeModel};

/// One row of a round-length trade-off sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundLengthPlan {
    /// Round length `t`, seconds.
    pub round_length: f64,
    /// Streams per disk sustainable at the target.
    pub n_max: u32,
    /// Worst-case startup delay (one round), seconds.
    pub startup_delay: f64,
    /// Expected client buffer (double-buffered mean fragment), bytes.
    pub client_buffer: f64,
    /// Per-disk guaranteed bandwidth, bytes/second.
    pub bandwidth: f64,
}

/// The smallest round length that sustains `n` streams per disk with
/// `p_late ≤ delta`, found by bisection over `t ∈ [t_lo, t_hi]`
/// (`p_late` is monotone decreasing in `t`).
///
/// Returns `None` if even `t_hi` cannot sustain `n` streams. Fragment
/// sizes are assumed to scale linearly with the round length around the
/// model's configured moments at 1 s (fixed display time per fragment:
/// doubling `t` doubles the mean and — for the variance of a sum of
/// independent sub-second pieces — doubles the variance).
///
/// # Errors
/// [`CoreError::Invalid`] for an invalid bracket or threshold.
pub fn min_round_length(
    model: &GuaranteeModel,
    n: u32,
    delta: f64,
    t_lo: f64,
    t_hi: f64,
) -> Result<Option<f64>, CoreError> {
    if !(t_lo > 0.0) || !(t_hi > t_lo) || !t_hi.is_finite() {
        return Err(CoreError::Invalid(format!(
            "require 0 < t_lo < t_hi finite, got [{t_lo}, {t_hi}]"
        )));
    }
    if !(delta > 0.0) || delta > 1.0 {
        return Err(CoreError::Invalid(format!(
            "threshold must be in (0, 1], got {delta}"
        )));
    }
    let p_late_at = |t: f64| -> Result<f64, CoreError> {
        let scaled = GuaranteeModel::new(
            model.disk().clone(),
            model.size_mean() * t,
            model.size_variance() * t,
            model.zone_handling(),
        )?;
        scaled.p_late_bound(n, t)
    };
    if p_late_at(t_hi)? > delta {
        return Ok(None);
    }
    if p_late_at(t_lo)? <= delta {
        return Ok(Some(t_lo));
    }
    let mut lo = t_lo;
    let mut hi = t_hi;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if p_late_at(mid)? <= delta {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-6 * hi {
            break;
        }
    }
    Ok(Some(hi))
}

/// Number of disks needed to guarantee `population` concurrent streams
/// under the per-stream glitch-rate target (`m`, `g`, `epsilon`).
///
/// # Errors
/// Propagates model-evaluation errors; errors if the target admits zero
/// streams per disk (no finite disk count works).
pub fn disks_for_population(
    model: &GuaranteeModel,
    t: f64,
    m: u64,
    g: u64,
    epsilon: f64,
    population: u32,
) -> Result<u32, CoreError> {
    let per_disk = model.n_max_error(t, m, g, epsilon)?;
    if per_disk == 0 {
        return Err(CoreError::Invalid(
            "the quality target admits zero streams per disk".into(),
        ));
    }
    Ok(population.div_ceil(per_disk))
}

/// Sweep round lengths and report the latency/buffer/capacity trade-off
/// for each (fragment moments scaled linearly with `t` as in
/// [`min_round_length`]).
///
/// # Errors
/// Propagates model-evaluation errors.
pub fn round_length_sweep(
    model: &GuaranteeModel,
    round_lengths: &[f64],
    delta: f64,
) -> Result<Vec<RoundLengthPlan>, CoreError> {
    let mut plans = Vec::with_capacity(round_lengths.len());
    for &t in round_lengths {
        let scaled = GuaranteeModel::new(
            model.disk().clone(),
            model.size_mean() * t,
            model.size_variance() * t,
            model.zone_handling(),
        )?;
        let n_max = scaled.n_max_late(t, delta)?;
        plans.push(RoundLengthPlan {
            round_length: t,
            n_max,
            startup_delay: t,
            client_buffer: 2.0 * model.size_mean() * t,
            bandwidth: f64::from(n_max) * model.size_mean(),
        });
    }
    Ok(plans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GuaranteeModel {
        GuaranteeModel::paper_reference().unwrap()
    }

    #[test]
    fn min_round_length_brackets_the_answer() {
        let m = model();
        // 26 streams fit at t = 1 s (paper); the minimum must be <= 1 s
        // and the bound at the found t must satisfy the target while a
        // slightly smaller t must not.
        let t = min_round_length(&m, 26, 0.01, 0.05, 4.0).unwrap().unwrap();
        assert!(t <= 1.0, "min t = {t}");
        let check = |tt: f64| {
            GuaranteeModel::new(
                m.disk().clone(),
                m.size_mean() * tt,
                m.size_variance() * tt,
                m.zone_handling(),
            )
            .unwrap()
            .p_late_bound(26, tt)
            .unwrap()
        };
        assert!(check(t) <= 0.01);
        assert!(check(t * 0.98) > 0.01, "t not minimal: {t}");
    }

    #[test]
    fn min_round_length_monotone_in_n() {
        let m = model();
        let t20 = min_round_length(&m, 20, 0.01, 0.05, 8.0).unwrap().unwrap();
        let t26 = min_round_length(&m, 26, 0.01, 0.05, 8.0).unwrap().unwrap();
        let t30 = min_round_length(&m, 30, 0.01, 0.05, 8.0).unwrap().unwrap();
        assert!(t20 < t26 && t26 < t30, "t = {t20}, {t26}, {t30}");
    }

    #[test]
    fn min_round_length_unreachable_targets() {
        let m = model();
        // Far more streams than the disk's bandwidth supports: even long
        // rounds fail (utilization > 1: demand per second exceeds rate).
        let r = min_round_length(&m, 60, 0.01, 0.1, 16.0).unwrap();
        assert_eq!(r, None);
        // t_lo already sufficient.
        let r = min_round_length(&m, 5, 0.01, 1.0, 4.0).unwrap();
        assert_eq!(r, Some(1.0));
    }

    #[test]
    fn min_round_length_validation() {
        let m = model();
        assert!(min_round_length(&m, 26, 0.01, 1.0, 0.5).is_err());
        assert!(min_round_length(&m, 26, 0.0, 0.5, 1.0).is_err());
        assert!(min_round_length(&m, 26, 1.5, 0.5, 1.0).is_err());
    }

    #[test]
    fn disks_for_population_rounds_up() {
        let m = model();
        // 28 per disk under the paper's target.
        assert_eq!(
            disks_for_population(&m, 1.0, 1200, 12, 0.01, 28).unwrap(),
            1
        );
        assert_eq!(
            disks_for_population(&m, 1.0, 1200, 12, 0.01, 29).unwrap(),
            2
        );
        assert_eq!(
            disks_for_population(&m, 1.0, 1200, 12, 0.01, 500).unwrap(),
            18
        );
    }

    #[test]
    fn disks_for_population_zero_per_disk_errors() {
        // An absurd workload: 100 MB fragments every second.
        let m = GuaranteeModel::new(
            model().disk().clone(),
            1e8,
            1e14,
            crate::ZoneHandling::Discrete,
        )
        .unwrap();
        assert!(disks_for_population(&m, 1.0, 1200, 12, 0.01, 10).is_err());
    }

    #[test]
    fn sweep_shows_the_expected_trade_off() {
        let m = model();
        let plans = round_length_sweep(&m, &[0.5, 1.0, 2.0, 4.0], 0.01).unwrap();
        assert_eq!(plans.len(), 4);
        for w in plans.windows(2) {
            // Longer rounds: more streams, more bandwidth, bigger buffers,
            // longer startup.
            assert!(w[1].n_max >= w[0].n_max);
            assert!(w[1].bandwidth >= w[0].bandwidth);
            assert!(w[1].client_buffer > w[0].client_buffer);
            assert!(w[1].startup_delay > w[0].startup_delay);
        }
        // The t = 1 plan reproduces the paper's 26.
        assert_eq!(plans[1].n_max, 26);
    }
}
