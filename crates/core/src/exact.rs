//! Exact tail of the round service time by characteristic-function
//! inversion (Gil–Pelaez).
//!
//! The model of eq. 3.1.1 has a known characteristic function — the same
//! product as the Laplace–Stieltjes transform of eq. 3.1.4 evaluated at
//! `s = −iω`:
//!
//! ```text
//! φ(ω) = e^{iω·SEEK} · ((e^{iω·ROT} − 1)/(iω·ROT))^N · (α/(α − iω))^{βN}
//! ```
//!
//! Gil–Pelaez inverts it directly:
//!
//! ```text
//! P[T ≤ t] = 1/2 − (1/π) ∫₀^∞ Im(e^{−iωt}·φ(ω)) / ω dω
//! ```
//!
//! The Gamma factor decays like `(1 + ω²/α²)^{−βN/2}` — brutally fast for
//! the paper's `βN ≈ 100` — so a panel Gauss–Legendre rule over a finite
//! `[0, ω_max]` gives 10+ digits. This is the model's **exact** answer
//! (up to quadrature), against which both the Chernoff bound and the
//! saddlepoint estimate can be judged without simulation noise.
//!
//! Cost: a few thousand complex evaluations (~tens of microseconds) —
//! fine for studies, heavier than the closed-form bound the admission
//! path uses.

use crate::chernoff::RoundService;
use crate::CoreError;
use mzd_numerics::complex::Complex;
use mzd_numerics::integrate::GaussLegendre;

/// Characteristic function `φ(ω)` of the round total.
fn round_cf(model: &RoundService, omega: f64) -> Complex {
    let n = f64::from(model.n());
    let rot = model.rotation_time();
    let seek = model.seek_constant();
    let alpha = model.transfer().alpha();
    let beta = model.transfer().beta();

    // e^{iω·SEEK}
    let seek_f = Complex::from_polar(1.0, omega * seek);

    // ((e^{iωROT} − 1)/(iωROT))^N, with the ω→0 limit handled upstream.
    let x = omega * rot;
    let rot_base = if x.abs() < 1e-8 {
        // Series: 1 + ix/2 − x²/6 + …
        Complex::new(1.0 - x * x / 6.0, x / 2.0)
    } else {
        (Complex::from_polar(1.0, x) - Complex::ONE) / Complex::new(0.0, x)
    };
    let rot_f = rot_base.powf(n);

    // (α/(α − iω))^{βN}
    let gamma_f = (Complex::from(alpha) / Complex::new(alpha, -omega)).powf(beta * n);

    seek_f * rot_f * gamma_f
}

/// Exact `P[T_N ≥ t]` by Gil–Pelaez inversion.
///
/// Absolute accuracy ~1e-10 for the parameter ranges this workspace uses
/// (validated against closed forms and quadrature refinement); returned
/// values below ~1e-12 are quadrature noise floor, not resolved
/// probabilities. Clamped to `[0, 1]`.
///
/// # Errors
/// [`CoreError::Invalid`] for a non-positive `t`.
pub fn p_late_exact(model: &RoundService, t: f64) -> Result<f64, CoreError> {
    if !(t > 0.0) || !t.is_finite() {
        return Err(CoreError::Invalid(format!(
            "round length must be positive, got {t}"
        )));
    }
    if model.n() == 0 {
        return Ok(f64::from(u8::from(t <= model.seek_constant())));
    }

    // Integration extent: |φ(ω)| decays algebraically with combined power
    // N (rotation factor, |·| ≈ 2/(ωROT) per request) + βN (Gamma factor)
    // — find the truncation point by doubling until |φ(ω)|/ω is far below
    // target accuracy (checked on the actual CF, robust for any N).
    let sigma = model.variance().sqrt().max(1e-9);
    let mut omega_max = (40.0 / sigma).max(model.transfer().alpha());
    while round_cf(model, omega_max).abs() / omega_max > 1e-15 && omega_max < 1e9 {
        omega_max *= 2.0;
    }

    // Panel width: resolve the e^{−iωt} oscillation (period 2π/t) and the
    // mean-scale phase of φ (period 2π/E[T]): several points per period
    // of the faster one.
    let period =
        (2.0 * std::f64::consts::PI / t).min(2.0 * std::f64::consts::PI / model.mean().max(1e-9));
    let panels = ((omega_max / period) * 4.0).ceil().clamp(64.0, 400_000.0) as usize;

    let rule = GaussLegendre::new(16)?;
    let integrand = |omega: f64| {
        if omega <= 0.0 {
            // limit ω→0: Im(e^{−iωt}φ(ω))/ω → E[T] − t
            return model.mean() - t;
        }
        let phi = round_cf(model, omega);
        let rotated = Complex::from_polar(1.0, -omega * t) * phi;
        rotated.im / omega
    };
    let integral = rule.integrate_panels(integrand, 0.0, omega_max, panels);
    let cdf = 0.5 - integral / std::f64::consts::PI;
    Ok((1.0 - cdf).clamp(0.0, 1.0))
}

/// Nodes per chunk when the CF table is filled in parallel: coarse
/// enough that per-task overhead vanishes against ~100 ns CF
/// evaluations, fine enough to split across any sane worker count.
const CF_CHUNK: usize = 512;

/// A characteristic-function table shared across many inversion points.
///
/// [`p_late_exact`] re-evaluates `φ(ω)` over the whole quadrature grid
/// for every `t` — but `φ` does not depend on `t` at all; only the
/// cheap rotation `e^{−iωt}` does. When one model is inverted at many
/// points (the [`crate::ServiceTimeCdf`] grid), evaluating `φ` once per
/// node and reusing it turns each additional grid point into a
/// multiply-accumulate sweep: ~20× cheaper per point than the
/// from-scratch inversion (see the `slo_overhead` bench notes).
///
/// The quadrature is sized for the largest `t` the caller will query
/// (`t_max` sets the fastest `e^{−iωt}` oscillation), so accuracy at
/// any `t ∈ (0, t_max]` matches or exceeds the per-point rule. The
/// node set is fixed at construction: [`Self::p_late`] is a pure
/// function of `t`, byte-identical for any worker count.
#[derive(Debug, Clone)]
pub struct CfQuadrature {
    /// `(ω_k, w_k)` in evaluation order.
    points: Vec<(f64, f64)>,
    /// `φ(ω_k)`, the expensive `t`-independent factor.
    phi: Vec<Complex>,
}

impl CfQuadrature {
    /// Tabulate `φ(ω)` for inverting `model`'s CDF at points up to
    /// `t_max`. Node evaluation fans out over the global worker pool.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive `t_max` or an empty
    /// round (`n == 0` has a degenerate, deterministic distribution).
    pub fn new(model: &RoundService, t_max: f64) -> Result<Self, CoreError> {
        if !(t_max > 0.0) || !t_max.is_finite() {
            return Err(CoreError::Invalid(format!(
                "CF table needs a positive largest inversion point, got {t_max}"
            )));
        }
        if model.n() == 0 {
            return Err(CoreError::Invalid(
                "CF table needs at least one request per round".into(),
            ));
        }
        // Same truncation and resolution rules as `p_late_exact`, sized
        // for the fastest oscillation the caller can ask for (t_max).
        let sigma = model.variance().sqrt().max(1e-9);
        let mut omega_max = (40.0 / sigma).max(model.transfer().alpha());
        while round_cf(model, omega_max).abs() / omega_max > 1e-15 && omega_max < 1e9 {
            omega_max *= 2.0;
        }
        let period = (2.0 * std::f64::consts::PI / t_max)
            .min(2.0 * std::f64::consts::PI / model.mean().max(1e-9));
        let panels = ((omega_max / period) * 4.0).ceil().clamp(64.0, 400_000.0) as usize;
        let rule = GaussLegendre::new(16)?;
        let points = rule.panel_points(0.0, omega_max, panels);
        // Gauss–Legendre nodes are strictly interior, so ω > 0 for every
        // point and the ω → 0 limit never arises.
        let chunks = points.len().div_ceil(CF_CHUNK);
        let phi: Vec<Complex> = mzd_par::par_map_indexed(chunks, |c| {
            let lo = c * CF_CHUNK;
            let hi = ((c + 1) * CF_CHUNK).min(points.len());
            points[lo..hi]
                .iter()
                .map(|&(omega, _)| round_cf(model, omega))
                .collect::<Vec<Complex>>()
        })
        .into_iter()
        .flatten()
        .collect();
        Ok(Self { points, phi })
    }

    /// `P[T ≥ t]` by Gil–Pelaez inversion over the shared node set.
    /// Valid for `t ∈ (0, t_max]`; clamped to `[0, 1]`.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for a non-positive `t`.
    pub fn p_late(&self, t: f64) -> Result<f64, CoreError> {
        if !(t > 0.0) || !t.is_finite() {
            return Err(CoreError::Invalid(format!(
                "round length must be positive, got {t}"
            )));
        }
        let mut integral = 0.0;
        for (&(omega, w), phi) in self.points.iter().zip(&self.phi) {
            let rotated = Complex::from_polar(1.0, -omega * t) * *phi;
            integral += w * rotated.im / omega;
        }
        let cdf = 0.5 - integral / std::f64::consts::PI;
        Ok((1.0 - cdf).clamp(0.0, 1.0))
    }

    /// Number of quadrature nodes (diagnostic; sizes the build cost).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::TransferTimeModel;
    use crate::GuaranteeModel;

    fn paper_round(n: u32) -> RoundService {
        GuaranteeModel::paper_reference()
            .unwrap()
            .round_service(n)
            .unwrap()
    }

    #[test]
    fn matches_gamma_closed_form_without_seek_or_rotation() {
        // With negligible rotation and zero SEEK, T_N ~ Gamma(Nβ, α).
        let transfer = TransferTimeModel::from_moments(0.02, 2e-4).unwrap();
        let m = RoundService::new(0.0, 1e-9, transfer, 20).unwrap();
        let shape = 20.0 * transfer.beta();
        let rate = transfer.alpha();
        for &t in &[0.3, 0.45, 0.6, 0.8] {
            let exact_gamma = 1.0 - mzd_numerics::special::gamma_p(shape, rate * t).unwrap();
            let inverted = p_late_exact(&m, t).unwrap();
            assert!(
                (inverted - exact_gamma).abs() < 1e-7,
                "t = {t}: inversion {inverted} vs closed form {exact_gamma}"
            );
        }
    }

    #[test]
    fn bracketed_by_saddlepoint_intuition_and_chernoff() {
        // exact <= chernoff always; saddlepoint within ~15% of exact in
        // the moderate tail.
        for n in [26u32, 28, 30] {
            let m = paper_round(n);
            let exact = p_late_exact(&m, 1.0).unwrap();
            let chernoff = m.p_late_bound(1.0).probability;
            let saddle = crate::saddlepoint::p_late_saddlepoint(&m, 1.0)
                .unwrap()
                .probability;
            assert!(exact <= chernoff + 1e-12, "n = {n}");
            assert!(
                (saddle / exact - 1.0).abs() < 0.15,
                "n = {n}: saddlepoint {saddle} vs exact {exact}"
            );
        }
    }

    #[test]
    fn median_is_near_the_mean_for_mild_skew() {
        // At t = E[T_N] the tail should be close to (slightly above) 1/2
        // for the mildly right-skewed round total.
        let m = paper_round(27);
        let p = p_late_exact(&m, m.mean()).unwrap();
        assert!((p - 0.5).abs() < 0.05, "P[T >= mean] = {p}");
    }

    #[test]
    fn cdf_is_monotone_in_t() {
        let m = paper_round(28);
        let mut prev = 1.0;
        for i in 0..10 {
            let t = 0.7 + 0.05 * f64::from(i);
            let p = p_late_exact(&m, t).unwrap();
            assert!(p <= prev + 1e-9, "t = {t}: {p} > {prev}");
            prev = p;
        }
    }

    #[test]
    fn probabilities_in_range_and_edges() {
        let m = paper_round(26);
        for &t in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            let p = p_late_exact(&m, t).unwrap();
            assert!((0.0..=1.0).contains(&p), "t = {t}: {p}");
        }
        // Far left: certainly late. Far right: certainly on time.
        assert!(p_late_exact(&m, 0.05).unwrap() > 0.999_99);
        assert!(p_late_exact(&m, 3.0).unwrap() < 1e-6);
        assert!(p_late_exact(&m, 0.0).is_err());
        let empty = RoundService::new(
            0.0,
            0.00834,
            TransferTimeModel::from_moments(0.02, 1e-4).unwrap(),
            0,
        )
        .unwrap();
        assert_eq!(p_late_exact(&empty, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn tracks_simulation_closely_at_paper_settings() {
        // EXPERIMENTS.md E1 (20k rounds): sim p_late(29) = 0.0149
        // [0.0133, 0.0167], p_late(31) = 0.0885 [0.0846, 0.0925]. The
        // exact model tail should sit inside or just above those CIs (the
        // model's SEEK is worst-case, so "exact" is still slightly
        // conservative vs the simulated system).
        let p29 = p_late_exact(&paper_round(29), 1.0).unwrap();
        assert!((0.012..0.030).contains(&p29), "exact p_late(29) = {p29}");
        let p31 = p_late_exact(&paper_round(31), 1.0).unwrap();
        assert!((0.08..0.16).contains(&p31), "exact p_late(31) = {p31}");
    }
}
