//! Log moment-generating functions of the round's service-time components.
//!
//! The paper works with Laplace–Stieltjes transforms `X*(s) = E[e^{-sX}]`
//! (eq. 3.1.3) and uses the moment generating function `M(θ) = X*(-θ)` in
//! the Chernoff bound. We evaluate everything in the *log* domain: the
//! round transform is a product of `2N + 1` factors (eq. 3.1.4) whose
//! values overflow long before `N = 30`, while their logs sum harmlessly.
//!
//! All functions return `ln E[e^{θX}]` for `θ ≥ 0` within the domain of
//! existence, and `+∞` outside it.

/// Log-MGF of a constant `c ≥ 0` (the accumulated SCAN seek time `SEEK`):
/// `ln E[e^{θ·c}] = θ·c` (from `T*_seek(s) = e^{-s·SEEK}`, eq. 3.1.3).
#[must_use]
pub fn log_mgf_constant(theta: f64, c: f64) -> f64 {
    theta * c
}

/// Log-MGF of a rotational delay uniform on `[0, ROT]`:
/// `ln((e^{θ·ROT} − 1)/(θ·ROT))` (from `T*_rot(s) = (1 − e^{-s·ROT})/(s·ROT)`,
/// eq. 3.1.3).
///
/// Evaluated via `exp_m1` with a series fallback for tiny arguments so the
/// `θ → 0` limit (value 0) is exact to machine precision.
#[must_use]
pub fn log_mgf_uniform(theta: f64, rot: f64) -> f64 {
    let x = theta * rot;
    if x == 0.0 {
        return 0.0;
    }
    if x.abs() < 1e-8 {
        // ln((e^x−1)/x) = x/2 + x²/24 − x⁴/2880 + …
        return 0.5 * x + x * x / 24.0;
    }
    (x.exp_m1() / x).ln()
}

/// Log-MGF of a Gamma variable with rate `alpha` and shape `beta` (the
/// paper's convention, eq. 3.1.2): `β·ln(α/(α−θ))` for `θ < α`
/// (from `T*(s) = (α/(α+s))^β`, eq. 3.1.3). Returns `+∞` for `θ ≥ α`.
#[must_use]
pub fn log_mgf_gamma(theta: f64, alpha: f64, beta: f64) -> f64 {
    if theta >= alpha {
        return f64::INFINITY;
    }
    // −β·ln(1 − θ/α), stable for small θ/α via ln_1p.
    -beta * (-theta / alpha).ln_1p()
}

/// First derivative of [`log_mgf_uniform`] in θ:
/// `d/dθ ln((e^{θROT}−1)/(θROT)) = ROT·(e^x/(e^x−1) − 1/x)` with
/// `x = θ·ROT`; equals `ROT/2` at θ = 0 (the mean).
#[must_use]
pub fn d_log_mgf_uniform(theta: f64, rot: f64) -> f64 {
    let x = theta * rot;
    if x.abs() < 1e-5 {
        // Series: ROT·(1/2 + x/12 − x³/720 + …)
        return rot * (0.5 + x / 12.0);
    }
    let em1 = x.exp_m1();
    rot * ((em1 + 1.0) / em1 - 1.0 / x)
}

/// Second derivative of [`log_mgf_uniform`] in θ:
/// `ROT²·(1/x² − e^x/(e^x−1)²)`; equals `ROT²/12` at θ = 0 (the
/// variance).
#[must_use]
pub fn d2_log_mgf_uniform(theta: f64, rot: f64) -> f64 {
    let x = theta * rot;
    if x.abs() < 1e-4 {
        // Series: ROT²·(1/12 − x²/240 + …)
        return rot * rot * (1.0 / 12.0 - x * x / 240.0);
    }
    let em1 = x.exp_m1();
    rot * rot * (1.0 / (x * x) - (em1 + 1.0) / (em1 * em1))
}

/// First derivative of [`log_mgf_gamma`] in θ: `β/(α−θ)` for `θ < α`.
#[must_use]
pub fn d_log_mgf_gamma(theta: f64, alpha: f64, beta: f64) -> f64 {
    if theta >= alpha {
        return f64::INFINITY;
    }
    beta / (alpha - theta)
}

/// Second derivative of [`log_mgf_gamma`] in θ: `β/(α−θ)²` for `θ < α`.
#[must_use]
pub fn d2_log_mgf_gamma(theta: f64, alpha: f64, beta: f64) -> f64 {
    if theta >= alpha {
        return f64::INFINITY;
    }
    let d = alpha - theta;
    beta / (d * d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_derivative<F: Fn(f64) -> f64>(f: F, x: f64) -> f64 {
        let h = 1e-6 * x.abs().max(1e-3);
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn uniform_derivatives_match_numeric() {
        let rot = 0.00834;
        for &theta in &[1e-6, 0.5, 10.0, 120.0, 500.0] {
            let d1 = d_log_mgf_uniform(theta, rot);
            let n1 = numeric_derivative(|t| log_mgf_uniform(t, rot), theta);
            assert!(
                (d1 - n1).abs() < 1e-8 + 1e-5 * n1.abs(),
                "theta {theta}: d1 {d1} vs numeric {n1}"
            );
            let d2 = d2_log_mgf_uniform(theta, rot);
            let n2 = numeric_derivative(|t| d_log_mgf_uniform(t, rot), theta);
            assert!(
                (d2 - n2).abs() < 1e-10 + 1e-4 * n2.abs(),
                "theta {theta}: d2 {d2} vs numeric {n2}"
            );
        }
    }

    #[test]
    fn uniform_derivatives_at_zero_are_moments() {
        let rot = 0.00834;
        assert!((d_log_mgf_uniform(0.0, rot) - rot / 2.0).abs() < 1e-15);
        assert!((d2_log_mgf_uniform(0.0, rot) - rot * rot / 12.0).abs() < 1e-18);
    }

    #[test]
    fn gamma_derivatives_match_closed_forms() {
        let (alpha, beta) = (165.0, 3.6);
        for &theta in &[0.0, 50.0, 120.0, 160.0] {
            assert!((d_log_mgf_gamma(theta, alpha, beta) - beta / (alpha - theta)).abs() < 1e-12);
            let n1 = numeric_derivative(|t| log_mgf_gamma(t, alpha, beta), theta.max(1.0));
            let d1 = d_log_mgf_gamma(theta.max(1.0), alpha, beta);
            assert!((d1 - n1).abs() < 1e-5 * d1, "theta {theta}");
        }
        assert_eq!(d_log_mgf_gamma(165.0, alpha, beta), f64::INFINITY);
        assert_eq!(d2_log_mgf_gamma(200.0, alpha, beta), f64::INFINITY);
    }

    #[test]
    fn constant_log_mgf_is_linear() {
        assert_eq!(log_mgf_constant(0.0, 5.0), 0.0);
        assert_eq!(log_mgf_constant(2.0, 5.0), 10.0);
    }

    #[test]
    fn uniform_log_mgf_limits_and_values() {
        // θ = 0 → exactly 0 (MGF = 1).
        assert_eq!(log_mgf_uniform(0.0, 0.00834), 0.0);
        // Tiny θ: the series branch must agree with a cancellation-free
        // direct evaluation (exp_m1 — a naive e^x − 1 loses everything
        // at x ~ 1e-12).
        let rot = 0.00834;
        for &theta in &[1e-10f64, 1e-6, 1e-3, 1e-1] {
            let x: f64 = theta * rot;
            let direct = (x.exp_m1() / x).ln();
            let ours = log_mgf_uniform(theta, rot);
            assert!(
                (ours - direct).abs() < 1e-15 + 1e-9 * direct.abs(),
                "theta = {theta}: {ours} vs {direct}"
            );
        }
        // Moderate θ: ln((e−1)/1) at θ·ROT = 1.
        let v = log_mgf_uniform(1.0 / 0.00834, 0.00834);
        assert!((v - (std::f64::consts::E - 1.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn uniform_log_mgf_derivative_at_zero_is_mean() {
        // d/dθ ln E[e^{θX}] at 0 = E[X] = ROT/2.
        let rot = 0.00834;
        let h = 1e-6;
        let d = (log_mgf_uniform(h, rot) - log_mgf_uniform(0.0, rot)) / h;
        assert!((d - rot / 2.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_log_mgf_matches_closed_form() {
        let (alpha, beta) = (184.0f64, 4.0f64);
        for &theta in &[0.0f64, 10.0, 100.0, 183.0] {
            let expected = beta * (alpha / (alpha - theta)).ln();
            assert!((log_mgf_gamma(theta, alpha, beta) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_log_mgf_diverges_at_rate() {
        assert_eq!(log_mgf_gamma(184.0, 184.0, 4.0), f64::INFINITY);
        assert_eq!(log_mgf_gamma(200.0, 184.0, 4.0), f64::INFINITY);
        // Approaching the pole it blows up.
        assert!(log_mgf_gamma(183.999_999, 184.0, 4.0) > 60.0);
    }

    #[test]
    fn gamma_log_mgf_derivative_at_zero_is_mean() {
        let (alpha, beta) = (46.0, 4.0); // mean = β/α
        let h = 1e-7;
        let d = (log_mgf_gamma(h, alpha, beta) - log_mgf_gamma(0.0, alpha, beta)) / h;
        assert!((d - beta / alpha).abs() < 1e-6);
    }
}
