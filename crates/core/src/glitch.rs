//! Per-stream glitch probability (§3.3).
//!
//! When a round overruns, only the requests served after the deadline are
//! late. With fragments allocated at uncorrelated sweep positions across
//! rounds, the late streams are a uniformly random subset, so
//!
//! ```text
//! P[stream i glitches in one round] = (1/N) Σ_{k=1..N} p_late(k, t)   (eq. 3.3.2)
//! ```
//!
//! Over a stream of `M` rounds the glitch count is Binomial(M, p_glitch)
//! (eq. 3.3.4); its tail is bounded by the Hagerup–Rüb form of the
//! Chernoff bound (eq. 3.3.5), with the exact tail also provided for
//! validation.

use mzd_numerics::special::ln_choose;

/// The per-round, per-stream glitch probability bound
/// `b_glitch(N, t) = (1/N) Σ_{k=1..N} b_late(k, t)` (eq. 3.3.3).
///
/// `p_late(k)` must return the (bound on the) probability that a round of
/// `k` requests misses the deadline; it is evaluated for `k = 1..=n`.
/// Returns 0 for `n == 0`.
pub fn glitch_probability_bound<F: FnMut(u32) -> f64>(n: u32, mut p_late: F) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = (1..=n).map(|k| p_late(k).clamp(0.0, 1.0)).sum();
    (sum / f64::from(n)).min(1.0)
}

/// The Hagerup–Rüb Chernoff bound on the upper binomial tail
/// `P[Bin(m, p) ≥ g]` (eq. 3.3.5):
///
/// ```text
/// (mp/g)^g · ((m − mp)/(m − g))^(m−g)      for g/m > p
/// ```
///
/// Evaluated in the log domain. Returns 1 when `g/m ≤ p` (the bound is
/// only valid — and only useful — above the mean), 1 for `g == 0`, and
/// `p^m` for `g == m` (the formula's continuous limit, which equals the
/// exact tail there).
#[must_use]
pub fn binomial_tail_chernoff(p: f64, m: u64, g: u64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    if g == 0 || m == 0 {
        return 1.0;
    }
    if g > m {
        return 0.0;
    }
    let mf = m as f64;
    let gf = g as f64;
    if gf / mf <= p {
        return 1.0;
    }
    if p == 0.0 {
        return 0.0;
    }
    let mut ln_bound = gf * (mf * p / gf).ln();
    if g < m {
        ln_bound += (mf - gf) * ((mf - mf * p) / (mf - gf)).ln();
    }
    ln_bound.exp().min(1.0)
}

/// Exact upper binomial tail `P[Bin(m, p) ≥ g]`, summed in the log domain
/// with a max shift for numerical stability. `O(m − g)` terms; fine for
/// the paper's `M = 1200`.
#[must_use]
pub fn binomial_tail_exact(p: f64, m: u64, g: u64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    if g == 0 {
        return 1.0;
    }
    if g > m {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let ln_p = p.ln();
    let ln_q = (-p).ln_1p(); // ln(1 − p) without cancellation for small p
    let terms: Vec<f64> = (g..=m)
        .map(|k| ln_choose(m, k) + k as f64 * ln_p + (m - k) as f64 * ln_q)
        .collect();
    let max = terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return 0.0;
    }
    let sum: f64 = terms.iter().map(|&t| (t - max).exp()).sum();
    (max + sum.ln()).exp().min(1.0)
}

/// The probability that a stream of `m` rounds suffers `g` or more
/// glitches, given the per-round glitch probability bound — the paper's
/// `p_error` (eq. 3.3.5). Uses Hagerup–Rüb by default.
#[must_use]
pub fn stream_error_bound(p_glitch: f64, m: u64, g: u64) -> f64 {
    binomial_tail_chernoff(p_glitch, m, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glitch_bound_averages_p_late() {
        // p_late(k) = k/10 → average over k=1..4 is (1+2+3+4)/(10·4) = 0.25.
        let b = glitch_probability_bound(4, |k| f64::from(k) / 10.0);
        assert!((b - 0.25).abs() < 1e-12);
    }

    #[test]
    fn glitch_bound_edge_cases() {
        assert_eq!(glitch_probability_bound(0, |_| 0.5), 0.0);
        // Clamped to 1 even if the per-round bounds are vacuous.
        assert_eq!(glitch_probability_bound(5, |_| 2.0), 1.0);
        // All-zero late probabilities → zero glitch probability.
        assert_eq!(glitch_probability_bound(5, |_| 0.0), 0.0);
    }

    #[test]
    fn glitch_bound_evaluates_every_k_once() {
        let mut calls = Vec::new();
        let _ = glitch_probability_bound(6, |k| {
            calls.push(k);
            0.0
        });
        assert_eq!(calls, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn chernoff_tail_dominates_exact_tail() {
        for &p in &[0.001, 0.005, 0.02, 0.1] {
            for &(m, g) in &[(1200u64, 12u64), (1200, 24), (100, 5), (50, 50)] {
                let exact = binomial_tail_exact(p, m, g);
                let bound = binomial_tail_chernoff(p, m, g);
                assert!(
                    bound >= exact - 1e-12,
                    "p={p}, m={m}, g={g}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn chernoff_tail_paper_example() {
        // §3.3: N = 28 gives p_glitch such that P[≥ 12 glitches in 1200
        // rounds] ≤ 0.14e-3. With p_glitch ≈ 2.4e-3 the bound is ≈ 1.4e-4;
        // check the formula's value for a representative p.
        let b = binomial_tail_chernoff(0.0024, 1200, 12);
        assert!(b < 1e-3 && b > 1e-6, "bound = {b}");
    }

    #[test]
    fn tails_handle_edges() {
        // g = 0: trivially 1.
        assert_eq!(binomial_tail_chernoff(0.5, 100, 0), 1.0);
        assert_eq!(binomial_tail_exact(0.5, 100, 0), 1.0);
        // g > m: impossible.
        assert_eq!(binomial_tail_chernoff(0.5, 10, 11), 0.0);
        assert_eq!(binomial_tail_exact(0.5, 10, 11), 0.0);
        // g = m: both equal p^m.
        let p = 0.3f64;
        assert!((binomial_tail_chernoff(p, 10, 10) - p.powi(10)).abs() < 1e-15);
        assert!((binomial_tail_exact(p, 10, 10) - p.powi(10)).abs() < 1e-15);
        // Below-mean g: the bound is vacuous.
        assert_eq!(binomial_tail_chernoff(0.5, 100, 40), 1.0);
        // p = 0 / p = 1.
        assert_eq!(binomial_tail_chernoff(0.0, 100, 5), 0.0);
        assert_eq!(binomial_tail_exact(0.0, 100, 5), 0.0);
        assert_eq!(binomial_tail_exact(1.0, 100, 5), 1.0);
        // m = 0 with g = 0.
        assert_eq!(binomial_tail_exact(0.5, 0, 0), 1.0);
    }

    #[test]
    fn exact_tail_matches_direct_small_case() {
        // Bin(4, 0.5): P[X ≥ 3] = (4 + 1)/16 = 0.3125.
        let t = binomial_tail_exact(0.5, 4, 3);
        assert!((t - 0.3125).abs() < 1e-12);
        // Bin(3, 0.2): P[X ≥ 1] = 1 − 0.8³ = 0.488.
        let t = binomial_tail_exact(0.2, 3, 1);
        assert!((t - 0.488).abs() < 1e-12);
    }

    #[test]
    fn exact_tail_extreme_small_probability() {
        // P[Bin(1200, 1e-5) ≥ 12] is astronomically small but must not
        // underflow to garbage.
        let t = binomial_tail_exact(1e-5, 1200, 12);
        assert!(t > 0.0 && t < 1e-20);
        let b = binomial_tail_chernoff(1e-5, 1200, 12);
        assert!(b >= t);
    }

    #[test]
    fn chernoff_tail_is_monotone_in_p() {
        let mut prev = 0.0;
        for i in 1..40 {
            let p = f64::from(i) * 0.0002;
            let b = binomial_tail_chernoff(p, 1200, 12);
            assert!(b >= prev - 1e-15, "p = {p}");
            prev = b;
        }
    }

    #[test]
    fn stream_error_bound_is_hagerup_rub() {
        assert_eq!(
            stream_error_bound(0.002, 1200, 12),
            binomial_tail_chernoff(0.002, 1200, 12)
        );
    }
}
