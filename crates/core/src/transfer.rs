//! Transfer-time modeling (§3.1 single-zone, §3.2 multi-zone).
//!
//! The transfer time of one request is `T = S / R`: fragment size over the
//! transfer rate of the zone the fragment landed in. On a conventional
//! disk `R` is constant and `T` inherits the (Gamma) size distribution
//! directly. On a multi-zone disk `R` is random; the paper derives the
//! density of `T` (eq. 3.2.7), finds its Laplace–Stieltjes transform
//! intractable, and **approximates `T` by a Gamma distribution matched on
//! the first two moments** (eq. 3.2.10), validating that the approximation
//! is within 2% over the relevant range.
//!
//! [`TransferTimeModel`] is that moment-matched Gamma (what the Chernoff
//! machinery consumes). [`TransferTimeDensity`] is the *exact* density,
//! kept to quantify the approximation error (experiment E7 in DESIGN.md).
//! For independent `S` and `R` the moments are exact:
//! `E[T^k] = E[S^k] · E[R^{-k}]` — no quadrature needed for the matching
//! itself.

use crate::CoreError;
use mzd_disk::zones::ContinuousRateDistribution;
use mzd_disk::Disk;
use mzd_numerics::integrate::GaussLegendre;
use mzd_numerics::rng::{Gamma, Sample as _};

/// How the zone structure enters the transfer-time moments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZoneHandling {
    /// Exact discrete capacity-weighted mixture over the zone table
    /// (eq. 3.2.1). The default: it is exact for any zone table.
    #[default]
    Discrete,
    /// The paper's continuous-rate idealization with density
    /// `f(r) ∝ r` on `[C_min/ROT, C_max/ROT]` (eq. 3.2.5–3.2.6).
    Continuous,
    /// Ignore zoning: a single effective rate equal to the capacity-
    /// weighted mean rate (the §3.1 model applied to a multi-zone drive —
    /// the ablation baseline).
    MeanRate,
}

/// The moment-matched Gamma transfer-time law `f_apptrans` (eq. 3.2.10),
/// in the paper's rate/shape convention: pdf
/// `α(αt)^{β−1} e^{−αt} / Γ(β)` with `α = E[T]/Var[T]`, `β = E[T]²/Var[T]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferTimeModel {
    mean: f64,
    variance: f64,
    alpha: f64,
    beta: f64,
}

impl TransferTimeModel {
    /// Match a Gamma to the given transfer-time mean and variance
    /// (seconds, seconds²) — e.g. the values quoted in the paper's §3.1
    /// worked example (`E = 0.02174 s`, `Var = 0.00011815 s²`).
    ///
    /// # Errors
    /// [`CoreError::Invalid`] unless both are positive and finite.
    pub fn from_moments(mean: f64, variance: f64) -> Result<Self, CoreError> {
        if !(mean > 0.0) || !(variance > 0.0) || !mean.is_finite() || !variance.is_finite() {
            return Err(CoreError::Invalid(format!(
                "transfer-time moments must be positive, got mean {mean}, variance {variance}"
            )));
        }
        Ok(Self {
            mean,
            variance,
            alpha: mean / variance,
            beta: mean * mean / variance,
        })
    }

    /// Single-zone disk (§3.1): `T = S / rate` with a constant `rate`
    /// (bytes/second), so the size Gamma maps to the time Gamma directly.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for non-positive inputs.
    pub fn single_zone(size_mean: f64, size_variance: f64, rate: f64) -> Result<Self, CoreError> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(CoreError::Invalid(format!(
                "transfer rate must be positive, got {rate}"
            )));
        }
        Self::from_moments(size_mean / rate, size_variance / (rate * rate))
    }

    /// Multi-zone disk (§3.2): moments via `E[T^k] = E[S^k]·E[R^{-k}]`
    /// with the zone law chosen by `handling`.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for non-positive size moments, or
    /// [`ZoneHandling::Continuous`] on a single-zone disk.
    pub fn multi_zone(
        disk: &Disk,
        size_mean: f64,
        size_variance: f64,
        handling: ZoneHandling,
    ) -> Result<Self, CoreError> {
        if !(size_mean > 0.0) || !(size_variance >= 0.0) {
            return Err(CoreError::Invalid(format!(
                "size moments must be positive, got mean {size_mean}, variance {size_variance}"
            )));
        }
        let size_m2 = size_variance + size_mean * size_mean;
        let (inv1, inv2) = match handling {
            ZoneHandling::Discrete => (disk.inverse_rate_moment(1), disk.inverse_rate_moment(2)),
            ZoneHandling::Continuous => {
                let c = disk
                    .zones()
                    .continuous_rate_distribution(disk.rotation_time())
                    .map_err(|e| CoreError::Invalid(e.to_string()))?;
                (c.rate_moment(-1), c.rate_moment(-2))
            }
            ZoneHandling::MeanRate => {
                let r = disk.mean_rate();
                (1.0 / r, 1.0 / (r * r))
            }
        };
        let mean = size_mean * inv1;
        let m2 = size_m2 * inv2;
        let variance = m2 - mean * mean;
        if variance <= 0.0 {
            // Constant sizes on a single-rate reading: degenerate — give
            // the Chernoff machinery a tiny but positive variance.
            return Self::from_moments(mean, (mean * 1e-9).powi(2).max(1e-300));
        }
        Self::from_moments(mean, variance)
    }

    /// Transfer-time model under an explicit placement policy: the zone
    /// mix comes from [`mzd_disk::PlacementPolicy::zone_weights`] instead
    /// of the uniform-by-capacity default — the analytic side of the
    /// placement ablation (DESIGN.md A4).
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for invalid moments or a placement that does
    /// not fit the disk.
    pub fn with_placement(
        disk: &Disk,
        placement: mzd_disk::PlacementPolicy,
        size_mean: f64,
        size_variance: f64,
    ) -> Result<Self, CoreError> {
        if !(size_mean > 0.0) || !(size_variance > 0.0) {
            return Err(CoreError::Invalid(format!(
                "size moments must be positive, got mean {size_mean}, variance {size_variance}"
            )));
        }
        let inv1 = placement
            .inverse_rate_moment(disk, 1)
            .map_err(|e| CoreError::Invalid(e.to_string()))?;
        let inv2 = placement
            .inverse_rate_moment(disk, 2)
            .map_err(|e| CoreError::Invalid(e.to_string()))?;
        let mean = size_mean * inv1;
        let m2 = (size_variance + size_mean * size_mean) * inv2;
        Self::from_moments(mean, m2 - mean * mean)
    }

    /// The retry-inflated transfer law: this Gamma's moments pushed
    /// through `faults` (the mixture
    /// `(1 − p_err)·L_trans(θ) + p_err·L_trans(θ)·L_retry(θ)` plus
    /// independent stall and remap terms, evaluated at the moment level
    /// by [`mzd_fault::FaultModel::inflate`]) and re-matched to a Gamma.
    /// `rotation_time` prices each reread; `full_seek` prices remap
    /// detours.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for an out-of-range fault model or
    /// degenerate inflated moments.
    pub fn with_faults(
        &self,
        faults: &mzd_fault::FaultModel,
        rotation_time: f64,
        full_seek: f64,
    ) -> Result<Self, CoreError> {
        let (mean, variance) = faults
            .inflate(self.mean, self.variance, rotation_time, full_seek)
            .map_err(|e| CoreError::Invalid(e.to_string()))?;
        Self::from_moments(mean, variance)
    }

    /// Mean transfer time `E[T]`, seconds.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Transfer-time variance `Var[T]`, seconds².
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Gamma rate `α = E/Var` (the paper's eq. 3.1.2 convention).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Gamma shape `β = E²/Var`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The matched Gamma's pdf at `t` — `f_apptrans(t)` of eq. 3.2.10.
    #[must_use]
    pub fn pdf(&self, t: f64) -> f64 {
        Gamma::from_rate_shape(self.alpha, self.beta)
            .map(|g| g.pdf(t))
            .unwrap_or(0.0)
    }

    /// Log-MGF of the matched Gamma at `θ` (finite only for `θ < α`).
    #[must_use]
    pub fn log_mgf(&self, theta: f64) -> f64 {
        crate::transform::log_mgf_gamma(theta, self.alpha, self.beta)
    }
}

/// The exact transfer-time density on a multi-zone disk for
/// Gamma-distributed sizes — eq. 3.2.7:
/// `f_trans(t) = ∫ f_rate(r) · r · f_size(t·r) dr`
/// (or the exact finite-`Z` mixture `Σ_i p_i · R_i · f_size(t·R_i)`).
///
/// Used to validate the 2%-error claim for the Gamma approximation and by
/// the density benchmarks; not on the admission-control fast path.
#[derive(Debug, Clone)]
pub struct TransferTimeDensity {
    size: Gamma,
    law: RateLaw,
}

#[derive(Debug, Clone)]
enum RateLaw {
    /// (probability, rate) per zone.
    Discrete(Vec<(f64, f64)>),
    Continuous(ContinuousRateDistribution, GaussLegendre),
}

impl TransferTimeDensity {
    /// Exact finite-`Z` mixture for `disk` and Gamma sizes with the given
    /// moments.
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for non-positive size moments.
    pub fn discrete(disk: &Disk, size_mean: f64, size_variance: f64) -> Result<Self, CoreError> {
        let size = Gamma::from_mean_variance(size_mean, size_variance)
            .map_err(|e| CoreError::Invalid(e.to_string()))?;
        let zones = disk.zones();
        let law = (0..zones.zone_count())
            .map(|i| (zones.zone_probability(i), disk.zone_rate(i)))
            .collect();
        Ok(Self {
            size,
            law: RateLaw::Discrete(law),
        })
    }

    /// The paper's continuous-rate form (eq. 3.2.7), integrated with a
    /// 64-point Gauss–Legendre rule (the integrand is analytic in `r`).
    ///
    /// # Errors
    /// [`CoreError::Invalid`] for non-positive size moments or a
    /// single-zone disk.
    pub fn continuous(disk: &Disk, size_mean: f64, size_variance: f64) -> Result<Self, CoreError> {
        let size = Gamma::from_mean_variance(size_mean, size_variance)
            .map_err(|e| CoreError::Invalid(e.to_string()))?;
        let rate = disk
            .zones()
            .continuous_rate_distribution(disk.rotation_time())
            .map_err(|e| CoreError::Invalid(e.to_string()))?;
        let rule = GaussLegendre::new(64).map_err(|e| CoreError::Invalid(e.to_string()))?;
        Ok(Self {
            size,
            law: RateLaw::Continuous(rate, rule),
        })
    }

    /// The exact density `f_trans(t)`.
    #[must_use]
    pub fn pdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match &self.law {
            RateLaw::Discrete(zones) => zones
                .iter()
                .map(|&(p, r)| p * r * self.size.pdf(t * r))
                .sum(),
            RateLaw::Continuous(rate, rule) => rule.integrate(
                |r| rate.pdf(r) * r * self.size.pdf(t * r),
                rate.r_min(),
                rate.r_max(),
            ),
        }
    }

    /// First two moments `(E[T], E[T²])` of the exact density, computed in
    /// closed form from the independence `E[T^k] = E[S^k]·E[R^{-k}]`.
    #[must_use]
    pub fn moments(&self) -> (f64, f64) {
        let s1 = self.size.mean();
        let s2 = self.size.variance() + s1 * s1;
        let (inv1, inv2) = match &self.law {
            RateLaw::Discrete(zones) => (
                zones.iter().map(|&(p, r)| p / r).sum::<f64>(),
                zones.iter().map(|&(p, r)| p / (r * r)).sum::<f64>(),
            ),
            RateLaw::Continuous(rate, _) => (rate.rate_moment(-1), rate.rate_moment(-2)),
        };
        (s1 * inv1, s2 * inv2)
    }

    /// The moment-matched Gamma approximation of this density (what the
    /// Chernoff bound uses).
    ///
    /// # Errors
    /// [`CoreError::Invalid`] if the matched variance degenerates.
    pub fn gamma_approximation(&self) -> Result<TransferTimeModel, CoreError> {
        let (m1, m2) = self.moments();
        TransferTimeModel::from_moments(m1, m2 - m1 * m1)
    }

    /// Maximum pointwise relative error `|f_apptrans − f_trans| / f_trans`
    /// over a uniform grid of `points` in `[t_lo, t_hi]` — the paper's
    /// §3.2 validation metric (claimed < 2% for `t ∈ [5 ms, 100 ms]`).
    ///
    /// In our reproduction the pointwise error is ~1–4% over the central
    /// ~98% of the probability mass but grows without bound in the deep
    /// right tail, where the density itself is below 0.1% of its peak
    /// (the matched Gamma has a lighter tail than the true mixture). The
    /// paper's claim is reproduced on the bulk; see EXPERIMENTS.md (E7)
    /// for the measured profile. Use [`Self::total_variation_error`] for a
    /// tail-robust summary.
    ///
    /// # Errors
    /// Propagates approximation-construction failures.
    pub fn max_relative_error(
        &self,
        t_lo: f64,
        t_hi: f64,
        points: usize,
    ) -> Result<f64, CoreError> {
        let approx = self.gamma_approximation()?;
        let points = points.max(2);
        let mut worst: f64 = 0.0;
        for i in 0..points {
            let t = t_lo + (t_hi - t_lo) * i as f64 / (points - 1) as f64;
            let exact = self.pdf(t);
            if exact <= 1e-12 {
                continue;
            }
            worst = worst.max((approx.pdf(t) - exact).abs() / exact);
        }
        Ok(worst)
    }

    /// Total-variation distance `½ ∫ |f_apptrans − f_trans| dt` between
    /// the exact transfer-time density and its Gamma approximation,
    /// integrated over `[0, t_hi]` (pick `t_hi` ≳ 10× the mean transfer
    /// time; both densities are negligible beyond). A mass-weighted error
    /// summary that is insensitive to relative error in the far tail.
    ///
    /// # Errors
    /// Propagates approximation-construction and quadrature failures.
    pub fn total_variation_error(&self, t_hi: f64) -> Result<f64, CoreError> {
        let approx = self.gamma_approximation()?;
        let rule = GaussLegendre::new(64).map_err(CoreError::from)?;
        let integral =
            rule.integrate_panels(|t| (approx.pdf(t) - self.pdf(t)).abs(), 0.0, t_hi, 24);
        Ok(0.5 * integral)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mzd_disk::profiles;
    use mzd_numerics::integrate::adaptive_simpson;

    fn viking() -> Disk {
        profiles::quantum_viking_2_1().build().unwrap()
    }

    const MEAN: f64 = 200_000.0;
    const VAR: f64 = 1e10;

    #[test]
    fn from_moments_matches_paper_convention() {
        // §3.1 example values.
        let m = TransferTimeModel::from_moments(0.02174, 0.00011815).unwrap();
        assert!((m.alpha() - 0.02174 / 0.00011815).abs() < 1e-9);
        assert!((m.beta() - 0.02174 * 0.02174 / 0.00011815).abs() < 1e-9);
        assert!(TransferTimeModel::from_moments(0.0, 1.0).is_err());
        assert!(TransferTimeModel::from_moments(1.0, -1.0).is_err());
    }

    #[test]
    fn single_zone_scales_size_moments() {
        let rate = 75_000.0 / 0.00834;
        let m = TransferTimeModel::single_zone(MEAN, VAR, rate).unwrap();
        assert!((m.mean() - MEAN / rate).abs() < 1e-12);
        assert!((m.variance() - VAR / (rate * rate)).abs() < 1e-15);
        assert!(TransferTimeModel::single_zone(MEAN, VAR, 0.0).is_err());
    }

    #[test]
    fn multi_zone_discrete_moments_exact() {
        let d = viking();
        let m = TransferTimeModel::multi_zone(&d, MEAN, VAR, ZoneHandling::Discrete).unwrap();
        // Exact identity: E[T] = E[S]·E[1/R].
        assert!((m.mean() - MEAN * d.inverse_rate_moment(1)).abs() < 1e-15);
        // The Viking's mean transfer time is ≈ 21.6 ms for 200 KB fragments.
        assert!((m.mean() - 0.0216).abs() < 5e-4, "mean = {}", m.mean());
    }

    #[test]
    fn zone_handling_variants_are_ordered() {
        // Ignoring zoning (MeanRate) must understate the variance relative
        // to the true mixture, and slightly understate the mean (Jensen).
        let d = viking();
        let disc = TransferTimeModel::multi_zone(&d, MEAN, VAR, ZoneHandling::Discrete).unwrap();
        let cont = TransferTimeModel::multi_zone(&d, MEAN, VAR, ZoneHandling::Continuous).unwrap();
        let flat = TransferTimeModel::multi_zone(&d, MEAN, VAR, ZoneHandling::MeanRate).unwrap();
        assert!(flat.mean() < disc.mean());
        assert!(flat.variance() < disc.variance());
        // Continuous and discrete agree to ~1% on a 15-zone drive.
        assert!((cont.mean() / disc.mean() - 1.0).abs() < 0.01);
        assert!((cont.variance() / disc.variance() - 1.0).abs() < 0.05);
    }

    #[test]
    fn discrete_density_integrates_to_one() {
        let d = viking();
        let f = TransferTimeDensity::discrete(&d, MEAN, VAR).unwrap();
        let total = adaptive_simpson(|t| f.pdf(t), 0.0, 0.5, 1e-10).unwrap();
        assert!((total - 1.0).abs() < 1e-6, "mass = {total}");
    }

    #[test]
    fn continuous_density_integrates_to_one() {
        let d = viking();
        let f = TransferTimeDensity::continuous(&d, MEAN, VAR).unwrap();
        let total = adaptive_simpson(|t| f.pdf(t), 0.0, 0.5, 1e-10).unwrap();
        assert!((total - 1.0).abs() < 1e-6, "mass = {total}");
    }

    #[test]
    fn density_moments_match_quadrature() {
        let d = viking();
        for f in [
            TransferTimeDensity::discrete(&d, MEAN, VAR).unwrap(),
            TransferTimeDensity::continuous(&d, MEAN, VAR).unwrap(),
        ] {
            let (m1, m2) = f.moments();
            let q1 = adaptive_simpson(|t| t * f.pdf(t), 0.0, 0.5, 1e-12).unwrap();
            let q2 = adaptive_simpson(|t| t * t * f.pdf(t), 0.0, 0.5, 1e-13).unwrap();
            assert!((m1 / q1 - 1.0).abs() < 1e-6, "m1 {m1} vs quadrature {q1}");
            assert!((m2 / q2 - 1.0).abs() < 1e-6, "m2 {m2} vs quadrature {q2}");
        }
    }

    #[test]
    fn gamma_approximation_error_small_on_the_bulk() {
        // §3.2 claims < 2% relative error on [5 ms, 100 ms]. In our
        // reproduction that holds on the central mass (≲ 3% pointwise on
        // [10 ms, 55 ms], which carries ~97% of the probability) while the
        // deep right tail — density < 0.1% of peak — diverges relatively.
        // See EXPERIMENTS.md E7.
        let d = viking();
        let f = TransferTimeDensity::continuous(&d, MEAN, VAR).unwrap();
        let bulk = f.max_relative_error(0.010, 0.055, 64).unwrap();
        assert!(bulk < 0.04, "bulk max relative error {bulk}");
    }

    #[test]
    fn gamma_approximation_total_variation_within_two_percent() {
        // Mass-weighted, the paper's 2% figure is comfortably reproduced:
        // the TV distance between exact and matched-Gamma densities is
        // well under 0.02 for both zone laws.
        let d = viking();
        for f in [
            TransferTimeDensity::continuous(&d, MEAN, VAR).unwrap(),
            TransferTimeDensity::discrete(&d, MEAN, VAR).unwrap(),
        ] {
            let tv = f.total_variation_error(0.25).unwrap();
            assert!((0.0..0.02).contains(&tv), "TV distance {tv}");
        }
    }

    #[test]
    fn discrete_and_continuous_densities_agree_on_bulk() {
        // The 15-zone mixture and its continuum limit agree to a few
        // percent where the density is non-negligible (tails differ more:
        // the discrete law has atoms at the extreme rates).
        let d = viking();
        let fd = TransferTimeDensity::discrete(&d, MEAN, VAR).unwrap();
        let fc = TransferTimeDensity::continuous(&d, MEAN, VAR).unwrap();
        for &t in &[0.01, 0.02, 0.03, 0.04, 0.05] {
            let a = fd.pdf(t);
            let b = fc.pdf(t);
            assert!((a / b - 1.0).abs() < 0.05, "t = {t}: {a} vs {b}");
        }
    }

    #[test]
    fn pdf_zero_for_nonpositive_t() {
        let d = viking();
        let f = TransferTimeDensity::discrete(&d, MEAN, VAR).unwrap();
        assert_eq!(f.pdf(0.0), 0.0);
        assert_eq!(f.pdf(-1.0), 0.0);
        let m = TransferTimeModel::from_moments(0.02, 1e-4).unwrap();
        assert_eq!(m.pdf(0.0), 0.0);
    }

    #[test]
    fn placement_aware_transfer_models() {
        use mzd_disk::PlacementPolicy;
        let d = viking();
        let uniform =
            TransferTimeModel::with_placement(&d, PlacementPolicy::UniformByCapacity, MEAN, VAR)
                .unwrap();
        let reference =
            TransferTimeModel::multi_zone(&d, MEAN, VAR, ZoneHandling::Discrete).unwrap();
        assert!((uniform.mean() - reference.mean()).abs() < 1e-15);
        let outer = TransferTimeModel::with_placement(
            &d,
            PlacementPolicy::OuterZones { zones: 5 },
            MEAN,
            VAR,
        )
        .unwrap();
        let inner = TransferTimeModel::with_placement(
            &d,
            PlacementPolicy::InnerZones { zones: 5 },
            MEAN,
            VAR,
        )
        .unwrap();
        assert!(outer.mean() < uniform.mean());
        assert!(inner.mean() > uniform.mean());
        // Narrower rate mix on the restricted bands → less extra variance
        // from the rate mixture (relative to its own mean).
        assert!(
            outer.variance() / (outer.mean() * outer.mean())
                < uniform.variance() / (uniform.mean() * uniform.mean())
        );
        assert!(TransferTimeModel::with_placement(
            &d,
            PlacementPolicy::OuterZones { zones: 99 },
            MEAN,
            VAR
        )
        .is_err());
    }

    #[test]
    fn continuous_rejects_single_zone() {
        let d = profiles::single_zone_75kb().build().unwrap();
        assert!(TransferTimeDensity::continuous(&d, MEAN, VAR).is_err());
        assert!(TransferTimeModel::multi_zone(&d, MEAN, VAR, ZoneHandling::Continuous).is_err());
        // Discrete handles single-zone fine.
        assert!(TransferTimeModel::multi_zone(&d, MEAN, VAR, ZoneHandling::Discrete).is_ok());
    }
}
